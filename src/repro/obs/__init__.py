"""Lightweight, zero-dependency observability for the reproduction.

Hierarchical **spans**, named **counters/gauges/histograms**, and
exporters to JSON, a terminal table, and the Chrome ``trace_event``
format (viewable in Perfetto) — see ``docs/OBSERVABILITY.md``.

The module-level functions are the instrumentation API; they delegate to
a process-global recorder that defaults to a no-op
(:data:`~repro.obs.recorder.NULL_RECORDER`), so instrumented hot paths
cost one dynamic dispatch when profiling is off:

>>> from repro import obs
>>> with obs.span("engine.evaluate_many", cat="engine", tasks=448):
...     obs.count("engine.cache.memory_hits", 440)
>>> obs.observe("serving.latency_s", 0.012)

Enable collection with :func:`enable` (the ``repro-experiments
--profile`` flag does this), then export:

>>> recorder = obs.enable()
>>> ...
>>> from repro.obs.export import render_table, write_chrome_trace
>>> print(render_table(recorder))
>>> write_chrome_trace(recorder, "trace.json")
"""

from __future__ import annotations

import functools
from typing import Any, Callable, TypeVar

from repro.obs.export import (
    chrome_trace,
    render_table,
    to_dict,
    to_json,
    write_chrome_trace,
)
from repro.obs.metrics import (
    CounterStore,
    GaugeStore,
    Histogram,
    HistogramStore,
    HistogramSummary,
    percentile,
)
from repro.obs.recorder import (
    NOOP_SPAN,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SpanRecord,
)

__all__ = [
    "NOOP_SPAN",
    "NULL_RECORDER",
    "CounterStore",
    "GaugeStore",
    "Histogram",
    "HistogramStore",
    "HistogramSummary",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "chrome_trace",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_recorder",
    "instrument",
    "observe",
    "percentile",
    "render_table",
    "span",
    "to_dict",
    "to_json",
    "write_chrome_trace",
]

_recorder: NullRecorder | Recorder = NULL_RECORDER


def enable(recorder: Recorder | None = None) -> Recorder:
    """Install ``recorder`` (or a fresh one) as the global collector."""
    global _recorder
    _recorder = recorder if recorder is not None else Recorder()
    return _recorder


def disable() -> None:
    """Restore the no-op recorder (instrumentation cost drops to ~nothing)."""
    global _recorder
    _recorder = NULL_RECORDER


def enabled() -> bool:
    """True when a real recorder is installed."""
    return _recorder.enabled


def get_recorder() -> NullRecorder | Recorder:
    """The currently installed recorder (null or real)."""
    return _recorder


# --------------------------------------------------------------------- #
# instrumentation API — safe to call unconditionally from hot paths
# --------------------------------------------------------------------- #
def span(name: str, cat: str = "", **attrs: Any):
    """A context manager timing one hierarchical span.

    Nesting is tracked per thread; ``attrs`` become Chrome-trace ``args``.
    When profiling is disabled this returns a shared no-op singleton.
    """
    return _recorder.span(name, cat, attrs or None)


def count(name: str, n: float = 1.0) -> None:
    """Add ``n`` to the named counter."""
    _recorder.count(name, n)


def gauge(name: str, value: float) -> None:
    """Sample the named gauge (tracks last/min/mean/max)."""
    _recorder.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one observation into the named histogram (p50/p95/p99)."""
    _recorder.observe(name, value)


_F = TypeVar("_F", bound=Callable[..., Any])


def instrument(name: str | None = None, cat: str = "") -> Callable[[_F], _F]:
    """Decorator form of :func:`span` (span name defaults to the function's
    qualified name)."""

    def deco(fn: _F) -> _F:
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with _recorder.span(span_name, cat, None):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
