"""Exporters for recorded observability data.

Three output formats:

* :func:`to_dict` / :func:`to_json` — a plain-data dump (span list,
  counter values, gauge stats, histogram summaries) for programmatic
  consumption;
* :func:`render_table` — a terminal span tree (aggregated by call path:
  count, total, self time, share of wall time) followed by the metric
  tables;
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (``"ph": "X"`` complete events plus
  ``"ph": "C"`` counter samples), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.recorder import Recorder, SpanRecord

#: Aggregated span-tree node: (count, total_ns, child_ns).
_Node = dict[str, Any]


# --------------------------------------------------------------------- #
# plain data
# --------------------------------------------------------------------- #
def to_dict(recorder: Recorder) -> dict[str, Any]:
    """Everything the recorder collected, as JSON-ready plain data."""
    return {
        "elapsed_s": recorder.elapsed_s(),
        "spans": [
            {
                "id": s.span_id,
                "parent": s.parent_id,
                "name": s.name,
                "cat": s.cat,
                "start_ns": s.start_ns,
                "dur_ns": s.dur_ns,
                "pid": s.pid,
                "tid": s.tid,
                "attrs": dict(s.attrs) if s.attrs else None,
            }
            for s in recorder.iter_spans()
        ],
        "counters": recorder.counters.as_dict(),
        "gauges": recorder.gauges.as_dict(),
        "histograms": {
            name: summary.as_dict()
            for name, summary in recorder.histograms.summaries().items()
        },
    }


def to_json(recorder: Recorder, indent: int | None = None) -> str:
    return json.dumps(to_dict(recorder), indent=indent, sort_keys=False)


# --------------------------------------------------------------------- #
# span-tree aggregation + terminal table
# --------------------------------------------------------------------- #
def aggregate_spans(spans: list[SpanRecord]) -> dict[tuple[str, ...], _Node]:
    """Aggregate spans by call path (the chain of span names to the root).

    Returns ``path -> {"count", "total_ns", "self_ns", "cat"}`` where
    ``self_ns`` is total time minus the time of direct children.
    """
    by_id = {s.span_id: s for s in spans}

    def path_of(span: SpanRecord) -> tuple[str, ...]:
        names: list[str] = []
        cur: SpanRecord | None = span
        while cur is not None:
            names.append(cur.name)
            cur = by_id.get(cur.parent_id)
        return tuple(reversed(names))

    nodes: dict[tuple[str, ...], _Node] = {}
    paths = {s.span_id: path_of(s) for s in spans}
    for s in spans:
        path = paths[s.span_id]
        node = nodes.setdefault(
            path, {"count": 0, "total_ns": 0, "self_ns": 0, "cat": s.cat}
        )
        node["count"] += 1
        node["total_ns"] += s.dur_ns
        node["self_ns"] += s.dur_ns
    for s in spans:  # subtract child time from the parent's self time
        parent = by_id.get(s.parent_id)
        if parent is not None:
            nodes[paths[parent.span_id]]["self_ns"] -= s.dur_ns
    return nodes


def render_table(recorder: Recorder, wall_s: float | None = None) -> str:
    """Aggregated span tree + counter/gauge/histogram tables as text."""
    wall = wall_s if wall_s is not None else recorder.elapsed_s()
    spans = list(recorder.iter_spans())
    lines: list[str] = []
    header = f"{'span':<52} {'count':>8} {'total s':>10} {'self s':>10} {'%wall':>7}"
    lines.append("== spans " + "=" * max(0, len(header) - 9))
    lines.append(header)
    nodes = aggregate_spans(spans)
    for path in sorted(nodes, key=lambda p: (p[:-1], -nodes[p]["total_ns"])):
        node = nodes[path]
        indent = "  " * (len(path) - 1)
        label = f"{indent}{path[-1]}"
        share = 100.0 * node["total_ns"] / 1e9 / wall if wall > 0 else 0.0
        lines.append(
            f"{label:<52} {node['count']:>8} {node['total_ns'] / 1e9:>10.4f} "
            f"{node['self_ns'] / 1e9:>10.4f} {share:>6.1f}%"
        )
    top_ns = sum(n["total_ns"] for p, n in nodes.items() if len(p) == 1)
    lines.append(
        f"{'(total / wall)':<52} {'':>8} {top_ns / 1e9:>10.4f} "
        f"{'':>10} {100.0 * top_ns / 1e9 / wall if wall > 0 else 0.0:>6.1f}%"
    )

    counters = recorder.counters.as_dict()
    if counters:
        lines.append("")
        lines.append("== counters")
        for name in sorted(counters):
            lines.append(f"{name:<52} {counters[name]:>16,.0f}")

    gauges = recorder.gauges.as_dict()
    if gauges:
        lines.append("")
        lines.append("== gauges")
        lines.append(f"{'gauge':<52} {'last':>10} {'min':>10} {'mean':>10} {'max':>10}")
        for name in sorted(gauges):
            g = gauges[name]
            lines.append(
                f"{name:<52} {g['last']:>10.3f} {g['min']:>10.3f} "
                f"{g['mean']:>10.3f} {g['max']:>10.3f}"
            )

    summaries = recorder.histograms.summaries()
    if summaries:
        lines.append("")
        lines.append("== histograms")
        lines.append(
            f"{'histogram':<40} {'count':>8} {'mean':>10} {'p50':>10} "
            f"{'p95':>10} {'p99':>10} {'max':>10}"
        )
        for name in sorted(summaries):
            s = summaries[name]
            lines.append(
                f"{name:<40} {s.count:>8} {s.mean:>10.4g} {s.p50:>10.4g} "
                f"{s.p95:>10.4g} {s.p99:>10.4g} {s.max:>10.4g}"
            )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Chrome trace_event format
# --------------------------------------------------------------------- #
def chrome_trace(recorder: Recorder) -> dict[str, Any]:
    """The recorder's data in Chrome ``trace_event`` JSON object form.

    Spans become ``"ph": "X"`` (complete) events with microsecond
    timestamps relative to the recorder's start; counters and gauges
    become ``"ph": "C"`` counter samples; histogram summaries ride along
    in ``otherData``.  The object form (``{"traceEvents": [...]}``) is
    what Perfetto and ``chrome://tracing`` both accept.
    """
    start = recorder.start_ns
    events: list[dict[str, Any]] = []
    max_ts = 0.0
    for s in recorder.iter_spans():
        ts = (s.start_ns - start) / 1e3
        dur = s.dur_ns / 1e3
        max_ts = max(max_ts, ts + dur)
        event: dict[str, Any] = {
            "name": s.name,
            "cat": s.cat or "span",
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": s.pid,
            "tid": s.tid,
        }
        if s.attrs:
            event["args"] = {k: _jsonable(v) for k, v in s.attrs.items()}
        events.append(event)
    pid = events[0]["pid"] if events else 0
    for name, value in sorted(recorder.counters.as_dict().items()):
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": max_ts,
                "pid": pid,
                "args": {"value": value},
            }
        )
    for name, gauge in sorted(recorder.gauges.as_dict().items()):
        events.append(
            {
                "name": name,
                "cat": "gauge",
                "ph": "C",
                "ts": max_ts,
                "pid": pid,
                "args": {"last": gauge["last"], "max": gauge["max"]},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "histograms": {
                name: summary.as_dict()
                for name, summary in recorder.histograms.summaries().items()
            },
            "counters": recorder.counters.as_dict(),
        },
    }


def write_chrome_trace(recorder: Recorder, path: str) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder), fh)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
