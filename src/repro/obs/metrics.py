"""Named metric stores: counters, gauges and histograms.

All three are plain dict-backed stores; locking lives in the
:class:`~repro.obs.recorder.Recorder` that owns them, so the stores stay
trivially picklable for cross-process snapshots.  Histogram summaries
(p50/p95/p99) are computed on demand from the raw observations — exact
percentiles, not sketch approximations, which is the right trade-off for
the ~10^3-10^5 observations a profiling run produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping


class CounterStore:
    """Monotonically accumulating named counters."""

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def add(self, name: str, n: float = 1.0) -> None:
        self._values[name] = self._values.get(name, 0.0) + n

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)

    def merge(self, other: Mapping[str, float]) -> None:
        for name, n in other.items():
            self.add(name, n)

    def __len__(self) -> int:
        return len(self._values)


@dataclass
class GaugeValue:
    """Last/min/max/mean of a sampled quantity."""

    last: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    total: float = 0.0
    n: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def update(self, value: float) -> None:
        self.last = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.total += value
        self.n += 1

    def as_dict(self) -> dict[str, float]:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "n": float(self.n),
        }


class GaugeStore:
    """Named gauges: point-in-time samples with min/max/mean tracking."""

    def __init__(self) -> None:
        self._values: dict[str, GaugeValue] = {}

    def set(self, name: str, value: float) -> None:
        gauge = self._values.get(name)
        if gauge is None:
            gauge = self._values[name] = GaugeValue()
        gauge.update(value)

    def get(self, name: str) -> GaugeValue | None:
        return self._values.get(name)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {name: g.as_dict() for name, g in self._values.items()}

    def snapshot(self) -> dict[str, dict[str, float]]:
        return self.as_dict()

    def merge(self, other: Mapping[str, Mapping[str, float]]) -> None:
        for name, dump in other.items():
            gauge = self._values.get(name)
            if gauge is None:
                gauge = self._values[name] = GaugeValue()
            gauge.min = min(gauge.min, dump["min"])
            gauge.max = max(gauge.max, dump["max"])
            gauge.total += dump["mean"] * dump["n"]
            gauge.n += int(dump["n"])
            gauge.last = dump["last"]  # merge order defines "last"

    def __len__(self) -> int:
        return len(self._values)


@dataclass
class HistogramSummary:
    """Exact summary statistics of one histogram's observations."""

    count: int
    mean: float
    min: float
    max: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile (``numpy.percentile`` default) of a
    pre-sorted list; ``q`` in [0, 100]."""
    n = len(sorted_values)
    if n == 0:
        raise ValueError("percentile of empty histogram")
    if n == 1:
        return sorted_values[0]
    pos = (q / 100.0) * (n - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class Histogram:
    """Raw observations of one named quantity."""

    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(value)

    def summary(self) -> HistogramSummary:
        ordered = sorted(self.values)
        n = len(ordered)
        if n == 0:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return HistogramSummary(
            count=n,
            mean=sum(ordered) / n,
            min=ordered[0],
            max=ordered[-1],
            p50=percentile(ordered, 50.0),
            p95=percentile(ordered, 95.0),
            p99=percentile(ordered, 99.0),
        )


class HistogramStore:
    """Named histograms of raw float observations."""

    def __init__(self) -> None:
        self._values: dict[str, Histogram] = {}

    def observe(self, name: str, value: float) -> None:
        hist = self._values.get(name)
        if hist is None:
            hist = self._values[name] = Histogram()
        hist.observe(value)

    def get(self, name: str) -> Histogram | None:
        return self._values.get(name)

    def summaries(self) -> dict[str, HistogramSummary]:
        return {name: h.summary() for name, h in self._values.items()}

    def snapshot(self) -> dict[str, list[float]]:
        return {name: list(h.values) for name, h in self._values.items()}

    def merge(self, other: Mapping[str, Any]) -> None:
        for name, values in other.items():
            hist = self._values.get(name)
            if hist is None:
                hist = self._values[name] = Histogram()
            hist.values.extend(values)

    def __len__(self) -> int:
        return len(self._values)
