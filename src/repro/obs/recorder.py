"""Span/metric recorders behind the :mod:`repro.obs` facade.

Two implementations share one duck-typed interface:

* :class:`NullRecorder` — the default.  Every operation is a no-op that
  returns a shared singleton, so instrumented hot paths pay one dynamic
  dispatch and nothing else (no allocation, no clock read, no locking).
* :class:`Recorder` — the real collector.  Spans nest through a
  per-thread stack (``threading.local``), finished spans and metric
  updates are appended under a lock, and :meth:`Recorder.snapshot` /
  :meth:`Recorder.merge` move data across process boundaries (the
  evaluation engine profiles its pool workers this way: each worker
  records into a private recorder and ships the snapshot back with its
  results).

Timestamps come from :func:`time.perf_counter_ns` — monotonic, and on
Linux shared between forked processes, so merged worker spans line up
with the parent timeline in the Chrome trace.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.obs.metrics import CounterStore, GaugeStore, HistogramStore


@dataclass
class SpanRecord:
    """One finished span (times in nanoseconds, perf_counter origin)."""

    span_id: int
    parent_id: int  # -1 for roots
    name: str
    cat: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int
    attrs: Mapping[str, Any] | None = None

    @property
    def dur_s(self) -> float:
        return self.dur_ns / 1e9


class _NoopSpan:
    """Context manager that does nothing; one shared instance per process."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class NullRecorder:
    """The disabled-mode recorder: every call is a constant-time no-op."""

    enabled = False

    def span(
        self, name: str, cat: str = "", attrs: Mapping[str, Any] | None = None
    ) -> _NoopSpan:
        return NOOP_SPAN

    def count(self, name: str, n: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


NULL_RECORDER = NullRecorder()


class _Span:
    """A live span: context manager created by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "name", "cat", "attrs", "span_id", "parent_id", "_start")

    def __init__(
        self,
        recorder: "Recorder",
        name: str,
        cat: str,
        attrs: Mapping[str, Any] | None,
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.span_id = -1
        self.parent_id = -1
        self._start = 0

    def __enter__(self) -> "_Span":
        rec = self._recorder
        stack = rec._stack()
        self.span_id = next(rec._ids)
        self.parent_id = stack[-1] if stack else -1
        stack.append(self.span_id)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        end = time.perf_counter_ns()
        rec = self._recorder
        stack = rec._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            cat=self.cat,
            start_ns=self._start,
            dur_ns=end - self._start,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=self.attrs,
        )
        with rec._lock:
            rec.spans.append(record)


@dataclass
class Recorder:
    """Collects spans, counters, gauges and histograms (thread-safe)."""

    spans: list[SpanRecord] = field(default_factory=list)
    counters: CounterStore = field(default_factory=CounterStore)
    gauges: GaugeStore = field(default_factory=GaugeStore)
    histograms: HistogramStore = field(default_factory=HistogramStore)

    enabled = True

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count()
        self.start_ns = time.perf_counter_ns()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------ #
    # recording API (mirrors the repro.obs module-level functions)
    # ------------------------------------------------------------------ #
    def span(
        self, name: str, cat: str = "", attrs: Mapping[str, Any] | None = None
    ) -> _Span:
        return _Span(self, name, cat, attrs)

    def count(self, name: str, n: float = 1.0) -> None:
        with self._lock:
            self.counters.add(name, n)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges.set(name, value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.histograms.observe(name, value)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def elapsed_s(self) -> float:
        """Wall time since the recorder was created."""
        return (time.perf_counter_ns() - self.start_ns) / 1e9

    def iter_spans(self) -> Iterator[SpanRecord]:
        with self._lock:
            yield from list(self.spans)

    # ------------------------------------------------------------------ #
    # cross-process aggregation
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """A picklable dump of everything recorded so far."""
        with self._lock:
            return {
                "start_ns": self.start_ns,
                "spans": [
                    (
                        s.span_id,
                        s.parent_id,
                        s.name,
                        s.cat,
                        s.start_ns,
                        s.dur_ns,
                        s.pid,
                        s.tid,
                        dict(s.attrs) if s.attrs else None,
                    )
                    for s in self.spans
                ],
                "counters": self.counters.as_dict(),
                "gauges": self.gauges.snapshot(),
                "histograms": self.histograms.snapshot(),
            }

    def merge(self, snapshot: Mapping[str, Any], parent_id: int = -1) -> None:
        """Fold a :meth:`snapshot` from another recorder into this one.

        Span ids are remapped onto this recorder's id space; roots of the
        merged snapshot are re-parented under ``parent_id`` (pass a live
        span's id to nest a worker's timeline under the dispatch span).
        """
        with self._lock:
            remap: dict[int, int] = {}
            for sid, _pid, *_rest in snapshot["spans"]:
                remap[sid] = next(self._ids)
            for sid, par, name, cat, start_ns, dur_ns, pid, tid, attrs in snapshot[
                "spans"
            ]:
                self.spans.append(
                    SpanRecord(
                        span_id=remap[sid],
                        parent_id=remap.get(par, parent_id),
                        name=name,
                        cat=cat,
                        start_ns=start_ns,
                        dur_ns=dur_ns,
                        pid=pid,
                        tid=tid,
                        attrs=attrs,
                    )
                )
            self.counters.merge(snapshot["counters"])
            self.gauges.merge(snapshot["gauges"])
            self.histograms.merge(snapshot["histograms"])
