"""Design recommendation: the co-design loop as an API.

The papers' closing message is that CPU designers should tune vector length
and cache capacity *jointly with* the algorithm policy.  This module packages
that loop: given a workload and an area budget (optionally a latency floor),
search the design space — vector lengths x L2 sizes x core counts x policy —
and return the throughput-optimal serving design that fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, ExperimentError
from repro.nn.layer import ConvSpec
from repro.serving.colocation import ColocationScenario, evaluate_colocation

#: Default search space (the papers' simulated ranges).
VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096)
L2_SIZES_MIB: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0, 256.0)
CORE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class DesignRecommendation:
    """The chosen serving design and its predicted operating point."""

    cores: int
    vlen_bits: int
    shared_l2_mib: float
    policy: str
    area_mm2: float
    images_per_second: float
    latency_s: float

    def describe(self) -> str:
        return (
            f"{self.cores} cores x {self.vlen_bits}b vectors, "
            f"{self.shared_l2_mib:g}MB shared L2, policy={self.policy}: "
            f"{self.area_mm2:.1f}mm^2, {self.images_per_second:.1f} img/s, "
            f"{self.latency_s * 1e3:.0f}ms/image"
        )


def recommend_design(
    specs: list[ConvSpec],
    area_budget_mm2: float,
    max_latency_s: float | None = None,
    policy: str = "optimal",
    freq_ghz: float = 2.0,
) -> DesignRecommendation:
    """Throughput-optimal serving design within an area budget.

    Searches the full (cores, VL, L2) grid with one replica per core,
    discards designs over the budget or the latency floor, and returns the
    highest-throughput survivor (ties break toward the smaller area).
    """
    if area_budget_mm2 <= 0:
        raise ConfigError("area_budget_mm2 must be positive")
    best: DesignRecommendation | None = None
    for cores in CORE_COUNTS:
        for vl in VECTOR_LENGTHS:
            for l2 in L2_SIZES_MIB:
                try:
                    scenario = ColocationScenario(
                        cores=cores, vlen_bits=vl, shared_l2_mib=l2,
                        instances=cores, policy=policy,
                    )
                except ConfigError:
                    continue
                result = evaluate_colocation(scenario, specs)
                if result.area_mm2 > area_budget_mm2:
                    continue
                latency = result.cycles_per_image / (freq_ghz * 1e9)
                if max_latency_s is not None and latency > max_latency_s:
                    continue
                candidate = DesignRecommendation(
                    cores=cores, vlen_bits=vl, shared_l2_mib=l2, policy=policy,
                    area_mm2=result.area_mm2,
                    images_per_second=result.images_per_second(freq_ghz),
                    latency_s=latency,
                )
                if (
                    best is None
                    or candidate.images_per_second > best.images_per_second
                    or (
                        candidate.images_per_second == best.images_per_second
                        and candidate.area_mm2 < best.area_mm2
                    )
                ):
                    best = candidate
    if best is None:
        raise ExperimentError(
            f"no design fits area budget {area_budget_mm2} mm^2 "
            f"(and latency floor {max_latency_s})"
        )
    return best
