"""Model serving: co-located instances, cache partitioning, throughput, Pareto.

Paper II §4.4's serving scenario: a multi-core RVV chip hosts 1-64 identical
model replicas, one per core, with the shared L2 statically partitioned
(Intel-CAT-style) so each instance owns ``L2/instances``.  Throughput is
instances / per-image cycles; the Pareto analyses trade throughput (or
single-instance latency) against 7 nm chip area.
"""

from repro.serving.pareto import ParetoPoint, pareto_frontier, is_dominated
from repro.serving.throughput import network_cycles, NetworkTime
from repro.serving.colocation import ColocationScenario, ColocationResult, evaluate_colocation
from repro.serving.simulator import ServingSimulator, ServingStats
from repro.serving.recommend import DesignRecommendation, recommend_design
from repro.serving.mixed import ModelGroup, MixedServingResult, evaluate_mixed
from repro.serving.simulator import (
    ContentionAwareSimulator,
    ResilientServingSimulator,
    md1_mean_wait,
)

__all__ = [
    "ParetoPoint",
    "pareto_frontier",
    "is_dominated",
    "network_cycles",
    "NetworkTime",
    "ColocationScenario",
    "ColocationResult",
    "evaluate_colocation",
    "ServingSimulator",
    "ServingStats",
    "DesignRecommendation",
    "recommend_design",
    "ModelGroup",
    "MixedServingResult",
    "evaluate_mixed",
    "ContentionAwareSimulator",
    "ResilientServingSimulator",
    "md1_mean_wait",
]
