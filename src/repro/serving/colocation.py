"""Co-located model serving on a multi-core RVV chip.

Paper II §4.4: configurations of 1/4/16/64 cores with vector lengths of
512-4096 bits share an L2 of 1-256 MB; 1-64 identical model instances run
one-per-core with the L2 statically partitioned (an Intel-CAT-style
mechanism grants isolated ways per instance), and external memory bandwidth
is assumed not to bottleneck (the paper's HBM-class assumption).
Throughput is reported in images per cycle, area at 7 nm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.nn.layer import ConvSpec
from repro.serving.throughput import network_cycles
from repro.simulator.area.chip import multicore_area_mm2
from repro.simulator.hwconfig import HardwareConfig


@dataclass(frozen=True)
class ColocationScenario:
    """One serving design point."""

    cores: int
    vlen_bits: int
    shared_l2_mib: float
    instances: int
    policy: str = "optimal"

    def __post_init__(self) -> None:
        if self.cores < 1 or self.instances < 1:
            raise ConfigError("cores and instances must be >= 1")
        if self.instances > self.cores:
            raise ConfigError(
                f"{self.instances} instances need {self.instances} cores, "
                f"only {self.cores} available (one instance per core)"
            )
        if self.shared_l2_mib < self.instances * 0.25:
            raise ConfigError(
                "cache partitioning floor: each instance needs >= 0.25 MiB"
            )

    @property
    def l2_per_instance_mib(self) -> float:
        return self.shared_l2_mib / self.instances


@dataclass
class ColocationResult:
    """Throughput/area evaluation of a scenario."""

    scenario: ColocationScenario
    cycles_per_image: float
    area_mm2: float

    @property
    def throughput_images_per_cycle(self) -> float:
        return self.scenario.instances / self.cycles_per_image

    @property
    def throughput_per_area(self) -> float:
        return self.throughput_images_per_cycle / self.area_mm2

    def images_per_second(self, freq_ghz: float = 2.0) -> float:
        return self.throughput_images_per_cycle * freq_ghz * 1e9


def evaluate_colocation(
    scenario: ColocationScenario,
    specs: list[ConvSpec],
    selector=None,
    area_model: str = "paper2",
) -> ColocationResult:
    """Evaluate one serving design point for one network.

    Each instance sees a private core at ``vlen_bits`` and an L2 slice of
    ``shared_l2_mib / instances``; per-image time comes from the analytical
    model under the scenario's algorithm policy.
    """
    hw = HardwareConfig.paper2_rvv(scenario.vlen_bits, scenario.l2_per_instance_mib)
    time = network_cycles(specs, hw, policy=scenario.policy, selector=selector)
    area = multicore_area_mm2(
        scenario.cores, scenario.vlen_bits, scenario.shared_l2_mib, model=area_model
    )
    return ColocationResult(
        scenario=scenario,
        cycles_per_image=time.total_cycles,
        area_mm2=area,
    )
