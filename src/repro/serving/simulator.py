"""Request-level model-serving simulation.

Paper II's context is model serving: replicas of a CNN handle a stream of
inference requests behind a load balancer (§1, §2.2).  This discrete-event
simulator closes that loop above the co-location model: requests arrive as
a (seeded) Poisson process, a FCFS dispatcher feeds the first free replica,
and each replica serves at the deterministic per-image time the analytical
model predicts for its core/cache slice.  It reports the latency
distribution and achieved throughput — which is how the benefit of
per-layer algorithm selection shows up operationally: lower service time →
lower tail latency at the same offered load, and a higher saturation point.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import ConfigError
from repro.serving.colocation import ColocationResult
from repro.utils.prng import make_rng


def _record_serving_obs(
    records: list["RequestRecord"], arrivals: np.ndarray
) -> None:
    """Feed a finished run into the observability layer (profiling only).

    Emits request latency / queue-wait histograms and samples the
    ``serving.queue_depth`` gauge at every arrival instant (the number of
    earlier requests that had arrived but not yet started service —
    starts are nondecreasing under FCFS, so one sorted search gives the
    depth).
    """
    if not obs.enabled():
        return
    starts = np.array([r.start for r in records])
    depths = np.arange(len(records)) - np.searchsorted(
        starts, arrivals, side="right"
    )
    for depth in depths:
        obs.gauge("serving.queue_depth", float(max(0, int(depth))))
    for r in records:
        obs.observe("serving.latency_s", r.latency)
        obs.observe("serving.queue_wait_s", r.queue_wait)
    obs.count("serving.requests", len(records))


@dataclass(frozen=True)
class RequestRecord:
    """One served request's timeline (seconds)."""

    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival


@dataclass
class ServingStats:
    """Aggregate results of a simulation run."""

    records: list[RequestRecord]
    horizon: float  # last finish time (s)
    servers: int
    service_time: float

    def __post_init__(self) -> None:
        self._latencies = np.array([r.latency for r in self.records])

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.horizon if self.horizon else 0.0

    def latency_percentile(self, q: float) -> float:
        return float(np.percentile(self._latencies, q))

    @property
    def mean_latency(self) -> float:
        return float(self._latencies.mean())

    @property
    def p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99)

    @property
    def utilization(self) -> float:
        """Fraction of server-seconds spent serving."""
        busy = sum(r.finish - r.start for r in self.records)
        return busy / (self.servers * self.horizon) if self.horizon else 0.0

    def mean_queue_length(self) -> float:
        """Time-averaged number of queued+in-service requests (Little)."""
        return self.throughput_rps * self.mean_latency


def md1_mean_wait(arrival_rate_rps: float, service_time_s: float) -> float:
    """Exact mean queue wait of an M/D/1 queue (Pollaczek-Khinchine).

    ``W_q = rho * s / (2 * (1 - rho))`` for deterministic service — the
    closed form the single-replica simulator must converge to
    (``tests/test_serving_simulator.py`` checks it).
    """
    rho = arrival_rate_rps * service_time_s
    if not 0.0 < rho < 1.0:
        raise ConfigError(f"M/D/1 requires 0 < rho < 1, got {rho:.3f}")
    return rho * service_time_s / (2.0 * (1.0 - rho))


class ServingSimulator:
    """M/D/c queue over the co-location model's replicas."""

    def __init__(
        self,
        servers: int,
        service_time_s: float,
        seed: int | None = None,
    ) -> None:
        if servers < 1:
            raise ConfigError(f"servers must be >= 1, got {servers}")
        if service_time_s <= 0:
            raise ConfigError("service_time_s must be positive")
        self.servers = servers
        self.service_time = service_time_s
        self.seed = seed

    @staticmethod
    def from_colocation(result: ColocationResult, freq_ghz: float = 2.0,
                        seed: int | None = None) -> "ServingSimulator":
        """Build a simulator from an evaluated co-location scenario."""
        service = result.cycles_per_image / (freq_ghz * 1e9)
        return ServingSimulator(
            servers=result.scenario.instances, service_time_s=service, seed=seed
        )

    @property
    def capacity_rps(self) -> float:
        """Saturation throughput: servers / service time."""
        return self.servers / self.service_time

    def run(self, arrival_rate_rps: float, n_requests: int = 2000) -> ServingStats:
        """Simulate ``n_requests`` Poisson arrivals at the given rate."""
        if arrival_rate_rps <= 0:
            raise ConfigError("arrival_rate_rps must be positive")
        if n_requests < 1:
            raise ConfigError("n_requests must be >= 1")
        with obs.span(
            "serving.run", cat="serving",
            servers=self.servers, n_requests=n_requests,
        ):
            rng = make_rng(self.seed)
            arrivals = np.cumsum(
                rng.exponential(1.0 / arrival_rate_rps, n_requests)
            )
            # min-heap of server-free times
            free_at = [0.0] * self.servers
            heapq.heapify(free_at)
            records: list[RequestRecord] = []
            for arrival in arrivals:
                earliest = heapq.heappop(free_at)
                start = max(float(arrival), earliest)
                finish = start + self.service_time
                heapq.heappush(free_at, finish)
                records.append(RequestRecord(float(arrival), start, finish))
            horizon = max(r.finish for r in records)
            _record_serving_obs(records, arrivals)
            return ServingStats(
                records=records, horizon=horizon, servers=self.servers,
                service_time=self.service_time,
            )

    def load_sweep(
        self, fractions: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9),
        n_requests: int = 2000,
    ) -> dict[float, ServingStats]:
        """Simulate at several fractions of the saturation throughput."""
        return {
            f: self.run(f * self.capacity_rps, n_requests) for f in fractions
        }


class ContentionAwareSimulator(ServingSimulator):
    """M/D/c with occupancy-dependent service times (shared-cache effects).

    Static L2 partitioning (the paper's Intel-CAT assumption) makes service
    time load-independent; on an *unpartitioned* shared cache, a request
    served while ``k`` other replicas are busy effectively owns ``L2/(k+1)``
    and runs slower.  This variant interpolates the service time between the
    solo time and the fully-contended time by the instantaneous occupancy —
    quantifying what cache partitioning buys at the tail.
    """

    def __init__(
        self,
        servers: int,
        service_time_alone_s: float,
        service_time_contended_s: float,
        seed: int | None = None,
    ) -> None:
        if service_time_contended_s < service_time_alone_s:
            raise ConfigError(
                "contended service time must be >= the solo service time"
            )
        super().__init__(servers, service_time_alone_s, seed=seed)
        self.service_contended = service_time_contended_s

    def _service_for_occupancy(self, busy_others: int) -> float:
        if self.servers == 1:
            return self.service_time
        frac = busy_others / (self.servers - 1)
        return self.service_time + frac * (
            self.service_contended - self.service_time
        )

    def run(self, arrival_rate_rps: float, n_requests: int = 2000) -> ServingStats:
        if arrival_rate_rps <= 0:
            raise ConfigError("arrival_rate_rps must be positive")
        if n_requests < 1:
            raise ConfigError("n_requests must be >= 1")
        with obs.span(
            "serving.run_contended", cat="serving",
            servers=self.servers, n_requests=n_requests,
        ):
            rng = make_rng(self.seed)
            arrivals = np.cumsum(
                rng.exponential(1.0 / arrival_rate_rps, n_requests)
            )
            free_at = [0.0] * self.servers
            heapq.heapify(free_at)
            records: list[RequestRecord] = []
            for arrival in arrivals:
                earliest = heapq.heappop(free_at)
                start = max(float(arrival), earliest)
                busy_others = sum(1 for t in free_at if t > start)
                finish = start + self._service_for_occupancy(busy_others)
                heapq.heappush(free_at, finish)
                records.append(RequestRecord(float(arrival), start, finish))
            horizon = max(r.finish for r in records)
            _record_serving_obs(records, arrivals)
            return ServingStats(
                records=records, horizon=horizon, servers=self.servers,
                service_time=self.service_time,
            )
