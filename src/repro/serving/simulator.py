"""Request-level model-serving simulation.

Paper II's context is model serving: replicas of a CNN handle a stream of
inference requests behind a load balancer (§1, §2.2).  This discrete-event
simulator closes that loop above the co-location model: requests arrive as
a (seeded) Poisson process, a FCFS dispatcher feeds the first free replica,
and each replica serves at the deterministic per-image time the analytical
model predicts for its core/cache slice.  It reports the latency
distribution and achieved throughput — which is how the benefit of
per-layer algorithm selection shows up operationally: lower service time →
lower tail latency at the same offered load, and a higher saturation point.

Beyond the paper's steady-state load, the simulator also models *overload*
(see ``docs/ROBUSTNESS.md``):

* **admission control** — with ``queue_limit`` set, a request arriving to a
  full queue is shed instead of admitted, keeping the latency of admitted
  requests bounded under any offered load;
* **degraded mode** — :class:`ResilientServingSimulator` draws per-request
  service times from a selection predictor and falls back to a configurable
  safe algorithm's service time when the predictor raises or is
  unavailable, opening a circuit breaker after repeated failures;
* **fault hooks** — an active :mod:`repro.faults` plan can inject arrival
  bursts (``serving.burst``) and predictor failures
  (``serving.predictor_error``).

Shed, fallback and SLO-breach counts are reported in :class:`ServingStats`
and mirrored into the ``serving.*`` observability counters.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import faults, obs
from repro.errors import ConfigError, InjectedFaultError
from repro.serving.colocation import ColocationResult
from repro.utils.prng import make_rng


def _record_serving_obs(stats: "ServingStats") -> None:
    """Feed a finished run into the observability layer (profiling only).

    Emits request latency / queue-wait histograms, shed / SLO-breach
    counters, and samples the ``serving.queue_depth`` gauge at every
    admitted arrival instant (the number of earlier requests that had
    arrived but not yet started service — starts are nondecreasing under
    FCFS, so one sorted search gives the depth).
    """
    if not obs.enabled():
        return
    records = stats.records
    starts = np.array([r.start for r in records])
    arrivals = np.array([r.arrival for r in records])
    depths = np.arange(len(records)) - np.searchsorted(
        starts, arrivals, side="right"
    )
    for depth in depths:
        obs.gauge("serving.queue_depth", float(max(0, int(depth))))
    for r in records:
        obs.observe("serving.latency_s", r.latency)
        obs.observe("serving.queue_wait_s", r.queue_wait)
    obs.count("serving.requests", len(records))
    if stats.shed:
        obs.count("serving.shed", stats.shed)
    if stats.slo_s is not None:
        obs.count("serving.slo_breaches", stats.slo_breaches)


@dataclass(frozen=True)
class RequestRecord:
    """One served request's timeline (seconds)."""

    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival


@dataclass
class ServingStats:
    """Aggregate results of a simulation run.

    ``records`` holds *admitted* requests only; overload accounting lives
    in ``shed_arrivals`` (arrival instants of rejected requests),
    ``fallbacks`` (requests served in degraded mode) and, when an SLO was
    configured, :attr:`slo_breaches`.
    """

    records: list[RequestRecord]
    horizon: float  # last finish time (s)
    servers: int
    service_time: float
    shed_arrivals: list[float] = field(default_factory=list)
    fallbacks: int = 0
    slo_s: float | None = None

    def __post_init__(self) -> None:
        self._latencies = np.array([r.latency for r in self.records])

    @classmethod
    def collect(
        cls,
        records: list[RequestRecord],
        servers: int,
        shed_arrivals: list[float] | None = None,
        fallbacks: int = 0,
        slo_s: float | None = None,
    ) -> "ServingStats":
        """Build stats from already-collected request timelines.

        The real serving layer (:mod:`repro.serve`) measures per-request
        timelines itself — service times vary per request there — so the
        horizon is the last finish and ``service_time`` is the mean
        busy time over the run.
        """
        records = list(records)
        horizon = max((r.finish for r in records), default=0.0)
        busy = [r.finish - r.start for r in records]
        service = float(np.mean(busy)) if busy else 0.0
        return cls(
            records=records, horizon=horizon, servers=servers,
            service_time=service,
            shed_arrivals=list(shed_arrivals or []),
            fallbacks=fallbacks, slo_s=slo_s,
        )

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def shed(self) -> int:
        """Requests rejected by admission control (never served)."""
        return len(self.shed_arrivals)

    @property
    def offered(self) -> int:
        """Total offered load: admitted + shed."""
        return self.n_requests + self.shed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def slo_breaches(self) -> int:
        """Admitted requests whose latency exceeded the configured SLO."""
        if self.slo_s is None or not len(self._latencies):
            return 0
        return int((self._latencies > self.slo_s).sum())

    @property
    def slo_breach_rate(self) -> float:
        return self.slo_breaches / self.n_requests if self.n_requests else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.horizon if self.horizon else 0.0

    def latency_percentile(self, q: float) -> float:
        if not len(self._latencies):
            return 0.0
        return float(np.percentile(self._latencies, q))

    @property
    def mean_latency(self) -> float:
        if not len(self._latencies):
            return 0.0
        return float(self._latencies.mean())

    @property
    def p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99)

    @property
    def utilization(self) -> float:
        """Fraction of server-seconds spent serving."""
        busy = sum(r.finish - r.start for r in self.records)
        return busy / (self.servers * self.horizon) if self.horizon else 0.0

    def mean_queue_length(self) -> float:
        """Time-averaged number of queued+in-service requests (Little)."""
        return self.throughput_rps * self.mean_latency


def md1_mean_wait(arrival_rate_rps: float, service_time_s: float) -> float:
    """Exact mean queue wait of an M/D/1 queue (Pollaczek-Khinchine).

    ``W_q = rho * s / (2 * (1 - rho))`` for deterministic service — the
    closed form the single-replica simulator must converge to
    (``tests/test_serving_simulator.py`` checks it).
    """
    rho = arrival_rate_rps * service_time_s
    if not 0.0 < rho < 1.0:
        raise ConfigError(f"M/D/1 requires 0 < rho < 1, got {rho:.3f}")
    return rho * service_time_s / (2.0 * (1.0 - rho))


class ServingSimulator:
    """M/D/c queue over the co-location model's replicas.

    With ``queue_limit`` set, at most that many admitted requests may be
    waiting (not yet in service) at any arrival instant; excess arrivals
    are shed.  ``slo_s`` attaches a latency SLO to the run's accounting
    (it does not change scheduling).
    """

    def __init__(
        self,
        servers: int,
        service_time_s: float,
        seed: int | None = None,
        queue_limit: int | None = None,
        slo_s: float | None = None,
    ) -> None:
        if servers < 1:
            raise ConfigError(f"servers must be >= 1, got {servers}")
        if service_time_s <= 0:
            raise ConfigError("service_time_s must be positive")
        if queue_limit is not None and queue_limit < 0:
            raise ConfigError(f"queue_limit must be >= 0, got {queue_limit}")
        if slo_s is not None and slo_s <= 0:
            raise ConfigError("slo_s must be positive")
        self.servers = servers
        self.service_time = service_time_s
        self.seed = seed
        self.queue_limit = queue_limit
        self.slo_s = slo_s
        self._run_fallbacks = 0

    @staticmethod
    def from_colocation(result: ColocationResult, freq_ghz: float = 2.0,
                        seed: int | None = None) -> "ServingSimulator":
        """Build a simulator from an evaluated co-location scenario."""
        service = result.cycles_per_image / (freq_ghz * 1e9)
        return ServingSimulator(
            servers=result.scenario.instances, service_time_s=service, seed=seed
        )

    @property
    def capacity_rps(self) -> float:
        """Saturation throughput: servers / service time."""
        return self.servers / self.service_time

    # ------------------------------------------------------------------ #
    # per-run hooks (subclasses refine; the event loop is shared)
    # ------------------------------------------------------------------ #
    def _begin_run(self) -> None:
        """Reset per-run state before the event loop starts."""
        self._run_fallbacks = 0

    def _service_time_for(self, index: int, busy_others: int) -> float:
        """Service time of request ``index`` given current occupancy."""
        return self.service_time

    def _arrivals(
        self, rng: np.random.Generator, arrival_rate_rps: float, n_requests: int
    ) -> np.ndarray:
        """Poisson arrival instants, reshaped by an injected burst if any."""
        gaps = rng.exponential(1.0 / arrival_rate_rps, n_requests)
        plan = faults.active_plan()
        if plan is not None:
            start, stop, factor = plan.burst_window(n_requests)
            if factor > 1.0:
                gaps[start:stop] /= factor
                faults.mark_injected("serving.burst")
        return np.cumsum(gaps)

    # ------------------------------------------------------------------ #
    # the event loop
    # ------------------------------------------------------------------ #
    def run(self, arrival_rate_rps: float, n_requests: int = 2000) -> ServingStats:
        """Simulate ``n_requests`` Poisson arrivals at the given rate."""
        if arrival_rate_rps <= 0:
            raise ConfigError("arrival_rate_rps must be positive")
        if n_requests < 1:
            raise ConfigError("n_requests must be >= 1")
        with obs.span(
            "serving.run", cat="serving",
            servers=self.servers, n_requests=n_requests,
        ):
            rng = make_rng(self.seed)
            arrivals = self._arrivals(rng, arrival_rate_rps, n_requests)
            self._begin_run()
            # min-heap of server-free times
            free_at = [0.0] * self.servers
            heapq.heapify(free_at)
            records: list[RequestRecord] = []
            shed: list[float] = []
            starts: list[float] = []  # nondecreasing under FCFS
            for i, arrival in enumerate(arrivals):
                arrival = float(arrival)
                if self.queue_limit is not None:
                    waiting = len(starts) - bisect_right(starts, arrival)
                    if waiting >= self.queue_limit:
                        shed.append(arrival)
                        continue
                earliest = heapq.heappop(free_at)
                start = max(arrival, earliest)
                busy_others = sum(1 for t in free_at if t > start)
                finish = start + self._service_time_for(i, busy_others)
                heapq.heappush(free_at, finish)
                starts.append(start)
                records.append(RequestRecord(arrival, start, finish))
            horizon = max((r.finish for r in records), default=0.0)
            stats = ServingStats(
                records=records, horizon=horizon, servers=self.servers,
                service_time=self.service_time, shed_arrivals=shed,
                fallbacks=self._run_fallbacks, slo_s=self.slo_s,
            )
            _record_serving_obs(stats)
            return stats

    def load_sweep(
        self, fractions: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9),
        n_requests: int = 2000,
    ) -> dict[float, ServingStats]:
        """Simulate at several fractions of the saturation throughput."""
        return {
            f: self.run(f * self.capacity_rps, n_requests) for f in fractions
        }


class ContentionAwareSimulator(ServingSimulator):
    """M/D/c with occupancy-dependent service times (shared-cache effects).

    Static L2 partitioning (the paper's Intel-CAT assumption) makes service
    time load-independent; on an *unpartitioned* shared cache, a request
    served while ``k`` other replicas are busy effectively owns ``L2/(k+1)``
    and runs slower.  This variant interpolates the service time between the
    solo time and the fully-contended time by the instantaneous occupancy —
    quantifying what cache partitioning buys at the tail.
    """

    def __init__(
        self,
        servers: int,
        service_time_alone_s: float,
        service_time_contended_s: float,
        seed: int | None = None,
        queue_limit: int | None = None,
        slo_s: float | None = None,
    ) -> None:
        if service_time_contended_s < service_time_alone_s:
            raise ConfigError(
                "contended service time must be >= the solo service time"
            )
        super().__init__(
            servers, service_time_alone_s, seed=seed,
            queue_limit=queue_limit, slo_s=slo_s,
        )
        self.service_contended = service_time_contended_s

    def _service_for_occupancy(self, busy_others: int) -> float:
        if self.servers == 1:
            return self.service_time
        frac = busy_others / (self.servers - 1)
        return self.service_time + frac * (
            self.service_contended - self.service_time
        )

    def _service_time_for(self, index: int, busy_others: int) -> float:
        return self._service_for_occupancy(busy_others)


class ResilientServingSimulator(ServingSimulator):
    """Admission control + predictor-driven service with a safe fallback.

    Models a replica whose per-request service time comes from the
    algorithm-selection predictor (``selector(i) -> seconds``).  When the
    selector raises — or is absent — the request is served in **degraded
    mode** at ``fallback_service_time_s``, the service time of a
    configurable safe algorithm (e.g. ``im2col_gemm6``, applicable to
    every layer).  After ``max_selector_failures`` *consecutive* failures
    the circuit breaker opens and the rest of the run stays degraded
    (counted once under ``serving.circuit_opened``).

    An active :mod:`repro.faults` plan with ``serving.predictor_error``
    injects deterministic per-request selector failures.
    """

    def __init__(
        self,
        servers: int,
        service_time_s: float,
        seed: int | None = None,
        queue_limit: int | None = None,
        slo_s: float | None = None,
        selector: Callable[[int], float] | None = None,
        fallback_service_time_s: float | None = None,
        max_selector_failures: int = 3,
    ) -> None:
        super().__init__(
            servers, service_time_s, seed=seed,
            queue_limit=queue_limit, slo_s=slo_s,
        )
        fallback = (
            service_time_s if fallback_service_time_s is None
            else fallback_service_time_s
        )
        if fallback <= 0:
            raise ConfigError("fallback_service_time_s must be positive")
        if max_selector_failures < 1:
            raise ConfigError(
                f"max_selector_failures must be >= 1, got {max_selector_failures}"
            )
        self.selector = selector
        self.fallback_service_time = fallback
        self.max_selector_failures = max_selector_failures
        self._consecutive_failures = 0
        self._circuit_open = False

    def _begin_run(self) -> None:
        super()._begin_run()
        self._consecutive_failures = 0
        self._circuit_open = False

    def _fallback(self) -> float:
        self._run_fallbacks += 1
        obs.count("serving.fallbacks")
        return self.fallback_service_time

    def _service_time_for(self, index: int, busy_others: int) -> float:
        if self.selector is None or self._circuit_open:
            return self._fallback()
        plan = faults.active_plan()
        try:
            if plan is not None and plan.predictor_fails(index):
                faults.mark_injected("serving.predictor_error")
                raise InjectedFaultError(
                    f"injected predictor failure for request {index}"
                )
            service = float(self.selector(index))
            if service <= 0:
                raise ConfigError(
                    f"selector returned non-positive service time {service}"
                )
        except Exception:
            self._consecutive_failures += 1
            if (self._consecutive_failures >= self.max_selector_failures
                    and not self._circuit_open):
                self._circuit_open = True
                obs.count("serving.circuit_opened")
            return self._fallback()
        self._consecutive_failures = 0
        return service
