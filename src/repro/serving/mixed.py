"""Heterogeneous co-location: different models sharing one chip.

Paper II's Fig. 12 co-locates replicas of a *single* model; real serving
fleets mix models on a box.  This extension evaluates a chip hosting
several model groups (one instance per core, the shared L2 statically
partitioned into equal slices), with per-layer algorithm selection applied
per model — each model's layers get their own choices on its cache slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.nn.layer import ConvSpec
from repro.serving.throughput import network_cycles
from repro.simulator.area.chip import multicore_area_mm2
from repro.simulator.hwconfig import HardwareConfig


@dataclass(frozen=True)
class ModelGroup:
    """``instances`` replicas of one model on the shared chip."""

    name: str
    specs: tuple[ConvSpec, ...]
    instances: int

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ConfigError(f"group {self.name!r}: instances must be >= 1")
        if not self.specs:
            raise ConfigError(f"group {self.name!r}: no layers")


@dataclass
class MixedServingResult:
    """Per-group and aggregate throughput of a mixed deployment."""

    vlen_bits: int
    shared_l2_mib: float
    groups: list[ModelGroup]
    per_group_cycles: dict[str, float]  # per-image cycles per group
    area_mm2: float

    @property
    def total_instances(self) -> int:
        return sum(g.instances for g in self.groups)

    def group_throughput(self, name: str, freq_ghz: float = 2.0) -> float:
        """Images/s contributed by one group."""
        group = next(g for g in self.groups if g.name == name)
        per_image = self.per_group_cycles[name] / (freq_ghz * 1e9)
        return group.instances / per_image

    def aggregate_images_per_second(self, freq_ghz: float = 2.0) -> float:
        return sum(self.group_throughput(g.name, freq_ghz) for g in self.groups)

    @property
    def throughput_per_area(self) -> float:
        return self.aggregate_images_per_second() / self.area_mm2


def evaluate_mixed(
    groups: list[ModelGroup],
    vlen_bits: int,
    shared_l2_mib: float,
    policy: str = "optimal",
    selector=None,
    area_model: str = "paper2",
) -> MixedServingResult:
    """Evaluate a mixed deployment: one core per instance, equal L2 slices."""
    if not groups:
        raise ConfigError("mixed deployment needs at least one model group")
    names = [g.name for g in groups]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate group names: {names}")
    total = sum(g.instances for g in groups)
    slice_mib = shared_l2_mib / total
    if slice_mib < 0.25:
        raise ConfigError(
            f"cache partitioning floor: {total} instances on "
            f"{shared_l2_mib:g} MiB leaves {slice_mib:.3f} MiB each"
        )
    hw = HardwareConfig.paper2_rvv(vlen_bits, slice_mib)
    per_group = {
        g.name: network_cycles(
            list(g.specs), hw, policy=policy, selector=selector
        ).total_cycles
        for g in groups
    }
    area = multicore_area_mm2(total, vlen_bits, shared_l2_mib, model=area_model)
    return MixedServingResult(
        vlen_bits=vlen_bits,
        shared_l2_mib=shared_l2_mib,
        groups=list(groups),
        per_group_cycles=per_group,
        area_mm2=area,
    )
