"""Full-network execution time under per-layer algorithm policies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.algorithms.registry import ALGORITHM_NAMES, best_algorithm, layer_cycles
from repro.errors import ExperimentError
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig


@dataclass
class NetworkTime:
    """Per-layer and total cycles of a network under a policy."""

    policy: str
    per_layer: dict[int, float]  # conv ordinal -> cycles
    chosen: dict[int, str]  # conv ordinal -> algorithm used

    @property
    def total_cycles(self) -> float:
        return sum(self.per_layer.values())

    def seconds(self, freq_ghz: float = 2.0) -> float:
        return self.total_cycles / (freq_ghz * 1e9)


def network_cycles(
    specs: list[ConvSpec],
    hw: HardwareConfig,
    policy: str = "optimal",
    selector=None,
) -> NetworkTime:
    """Total conv cycles of a network under an algorithm policy.

    Policies: one of the four algorithm names (single algorithm everywhere,
    with the Winograd* fallback), ``"optimal"`` (cycle-best per layer), or
    ``"predicted"`` (the trained :class:`AlgorithmSelector` decides; layers
    the predicted algorithm cannot run fall back like Winograd*).
    """
    per_layer: dict[int, float] = {}
    chosen: dict[int, str] = {}
    for spec in specs:
        if policy == "optimal":
            name, cycles = best_algorithm(spec, hw)
            per_layer[spec.index] = cycles[name]
            chosen[spec.index] = name
        elif policy == "predicted":
            if selector is None:
                raise ExperimentError("policy 'predicted' needs a trained selector")
            name = selector.select(spec, hw)
            result = layer_cycles(name, spec, hw, fallback=True)
            per_layer[spec.index] = result.cycles
            chosen[spec.index] = result.algorithm
        elif policy in ALGORITHM_NAMES:
            result = layer_cycles(policy, spec, hw, fallback=True)
            per_layer[spec.index] = result.cycles
            chosen[spec.index] = result.algorithm
        else:
            raise ExperimentError(
                f"unknown policy {policy!r}; use an algorithm name, "
                f"'optimal' or 'predicted'"
            )
    return NetworkTime(policy=policy, per_layer=per_layer, chosen=chosen)
