"""Pareto-frontier utilities for the performance/throughput-area analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class ParetoPoint:
    """A design point: ``cost`` is minimized, ``value`` is maximized.

    For the single-instance analysis ``cost = area`` and
    ``value = -cycles``; for serving, ``value = throughput``.
    """

    cost: float
    value: float
    payload: Any = None

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak dominance with at least one strict improvement."""
        return (
            self.cost <= other.cost
            and self.value >= other.value
            and (self.cost < other.cost or self.value > other.value)
        )


def is_dominated(point: ParetoPoint, others: Iterable[ParetoPoint]) -> bool:
    """True if any other point dominates ``point``."""
    return any(o.dominates(point) for o in others if o is not point)


def pareto_frontier(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by increasing cost.

    O(n log n): sweep by cost, keep points with strictly improving value.
    """
    if not points:
        raise ExperimentError("pareto_frontier needs at least one point")
    ordered = sorted(points, key=lambda p: (p.cost, -p.value))
    frontier: list[ParetoPoint] = []
    best_value = float("-inf")
    for p in ordered:
        if p.value > best_value:
            frontier.append(p)
            best_value = p.value
    return frontier


def pareto_optimal(points: Sequence[ParetoPoint]) -> ParetoPoint:
    """The paper's "Pareto-optimal" point: best value-per-area trade-off.

    For throughput-style points (positive values) this maximizes
    ``value / cost``.  For latency-style points encoded as ``value =
    -cycles`` it minimizes ``cost * cycles`` — i.e. maximizes
    performance-per-area, which is how Paper II identifies 2048 bits x 1 MB
    as the optimum for a single model instance.
    """
    frontier = pareto_frontier(points)
    if all(p.value <= 0 for p in frontier):
        return min(frontier, key=lambda p: p.cost * (-p.value))
    return max(frontier, key=lambda p: p.value / p.cost)
