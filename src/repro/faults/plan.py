"""The :class:`FaultPlan`: *what* to inject, decided by pure hashing.

A plan is an immutable value object; every "should this fault fire?"
question is answered by a pure function of ``(seed, site, token)``, so the
same plan makes the same decisions in every process, on every retry, and
in any call order.  That determinism is what lets the chaos suite assert
*bit-identical* results under injected crashes: the faults themselves are
reproducible, and the recovery machinery must erase them.

Plans are written as compact comma-separated ``key=value`` specs — the
grammar of the ``REPRO_FAULTS`` environment variable (see
``docs/ROBUSTNESS.md``)::

    seed=42,worker.crash=1,worker.hang=1,cache.corrupt=0.1

Count-valued sites fire on the first N tokens (e.g. ``worker.crash=2``
crashes chunks 0 and 1 on their first attempt); rate-valued sites fire on
the deterministic fraction of tokens selected by the seeded hash.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

from repro.errors import FaultSpecError

#: spec key -> (FaultPlan field, parser).  The dotted names mirror the
#: subsystem the fault lands in; the grammar is the union of these keys.
_SPEC_KEYS: dict[str, tuple[str, type]] = {
    "seed": ("seed", int),
    "worker.crash": ("worker_crash", int),
    "worker.hang": ("worker_hang", int),
    "hang.seconds": ("hang_seconds", float),
    "cache.corrupt": ("cache_corrupt", float),
    "cache.write_error": ("cache_write_error", float),
    "cell.error": ("cell_error", float),
    "serving.burst": ("serving_burst", float),
    "serving.predictor_error": ("predictor_error", float),
    "campaign.abort": ("campaign_abort", int),
    "replica.crash": ("replica_crash", float),
    "replica.hang": ("replica_hang", float),
    "replica.slow": ("replica_slow", float),
    "probe.drop": ("probe_drop", float),
}

_RATE_FIELDS = frozenset(
    (
        "cache_corrupt",
        "cache_write_error",
        "cell_error",
        "predictor_error",
        "replica_crash",
        "replica_hang",
        "replica_slow",
        "probe_drop",
    )
)


def _hash_unit(seed: int, site: str, token: str) -> float:
    """A uniform [0, 1) draw, a pure function of (seed, site, token)."""
    digest = hashlib.sha256(f"{seed}:{site}:{token}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults to inject.

    All fields default to "off"; :func:`parse_fault_spec` builds one from
    the ``REPRO_FAULTS`` grammar and :meth:`to_spec` is the exact inverse
    (used to propagate the active plan to spawned worker processes).
    """

    seed: int = 0
    #: chunks ``0..worker_crash-1`` hard-crash (``os._exit``) on attempt 0.
    worker_crash: int = 0
    #: the next ``worker_hang`` chunks sleep :attr:`hang_seconds` on attempt 0.
    worker_hang: int = 0
    hang_seconds: float = 30.0
    #: probability a disk-cache write lands corrupted (truncated JSON).
    cache_corrupt: float = 0.0
    #: probability a disk-cache write raises :class:`OSError`.
    cache_write_error: float = 0.0
    #: probability one grid cell's evaluation raises ``InjectedFaultError``.
    cell_error: float = 0.0
    #: arrival-rate multiplier over the middle third of a serving run.
    serving_burst: float = 1.0
    #: probability the serving selector raises for one request.
    predictor_error: float = 0.0
    #: abort a checkpointed campaign after N journal appends (0 = never).
    campaign_abort: int = 0
    #: probability one (replica, dispatch) hard-crashes the replica — it
    #: takes no traffic until the router's half-open recovery readmits it.
    replica_crash: float = 0.0
    #: probability one (replica, dispatch) hangs until the dispatch timeout.
    replica_hang: float = 0.0
    #: probability one (replica, dispatch) serves at 10x the modeled time.
    replica_slow: float = 0.0
    #: probability one active health probe is dropped (reads as a failure).
    probe_drop: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(f"{name} must be in [0, 1], got {rate}")
        for name in ("worker_crash", "worker_hang", "campaign_abort"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"{name} must be >= 0")
        if self.serving_burst < 1.0:
            raise FaultSpecError(
                f"serving_burst must be >= 1, got {self.serving_burst}"
            )
        if self.hang_seconds <= 0:
            raise FaultSpecError("hang_seconds must be positive")

    # ------------------------------------------------------------------ #
    # decisions (pure: same answer in every process, on every retry)
    # ------------------------------------------------------------------ #
    def chance(self, site: str, token: str, rate: float) -> bool:
        """True iff the seeded hash selects ``token`` at ``rate``."""
        return rate > 0.0 and _hash_unit(self.seed, site, token) < rate

    def worker_fault(self, chunk_index: int, attempt: int) -> str | None:
        """``"crash"``, ``"hang"`` or None for one chunk execution.

        Faults fire only on a chunk's first attempt, so bounded retry is
        guaranteed to converge to the fault-free result.
        """
        if attempt != 0:
            return None
        if chunk_index < self.worker_crash:
            return "crash"
        if chunk_index < self.worker_crash + self.worker_hang:
            return "hang"
        return None

    def corrupts_write(self, key: str) -> bool:
        """Should the disk-cache write of ``key`` land corrupted?"""
        return self.chance("cache.corrupt", key, self.cache_corrupt)

    def write_fails(self, key: str) -> bool:
        """Should the disk-cache write of ``key`` raise :class:`OSError`?"""
        return self.chance("cache.write_error", key, self.cache_write_error)

    def cell_fails(self, cell_id: str) -> bool:
        """Should evaluating this grid cell raise ``InjectedFaultError``?"""
        return self.chance("cell.error", cell_id, self.cell_error)

    def predictor_fails(self, request_index: int) -> bool:
        """Should the serving selector raise for this request?"""
        return self.chance(
            "serving.predictor_error", str(request_index), self.predictor_error
        )

    def burst_window(self, n_requests: int) -> tuple[int, int, float]:
        """``(start, stop, factor)`` of the injected arrival burst.

        Requests ``start..stop-1`` arrive at ``factor`` times the nominal
        rate (the middle third of the run); factor 1.0 means no burst.
        """
        if self.serving_burst <= 1.0 or n_requests < 3:
            return 0, 0, 1.0
        return n_requests // 3, 2 * n_requests // 3, self.serving_burst

    def aborts_campaign(self, appended: int) -> bool:
        """True once ``appended`` journal records have been written."""
        return self.campaign_abort > 0 and appended >= self.campaign_abort

    def replica_fault(self, replica: str, dispatch: int) -> str | None:
        """``"crash"``, ``"hang"``, ``"slow"`` or None for one dispatch.

        The token is the replica's own dispatch ordinal, so the same plan
        kills the same replica at the same point of a routed replay in
        every process.  Crash outranks hang outranks slow when several
        sites select the same dispatch.
        """
        token = f"{replica}:{dispatch}"
        if self.chance("replica.crash", token, self.replica_crash):
            return "crash"
        if self.chance("replica.hang", token, self.replica_hang):
            return "hang"
        if self.chance("replica.slow", token, self.replica_slow):
            return "slow"
        return None

    def drops_probe(self, replica: str, probe: int) -> bool:
        """Should this active health probe be dropped (read as failed)?"""
        return self.chance("probe.drop", f"{replica}:{probe}", self.probe_drop)

    # ------------------------------------------------------------------ #
    # spec round-trip
    # ------------------------------------------------------------------ #
    def to_spec(self) -> str:
        """The ``REPRO_FAULTS`` string this plan round-trips through."""
        defaults = FaultPlan()
        parts = []
        for key, (field_name, _) in _SPEC_KEYS.items():
            value = getattr(self, field_name)
            if value != getattr(defaults, field_name):
                parts.append(
                    f"{key}={value:g}"
                    if isinstance(value, float)
                    else f"{key}={value}"
                )
        return ",".join(parts)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Grammar: comma-separated ``key=value`` clauses; keys are the dotted
    site names above, values are ints (counts, seed) or floats (rates,
    factors, seconds).  Whitespace around clauses is ignored.
    """
    values: dict[str, int | float] = {}
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        key, sep, raw = clause.partition("=")
        key = key.strip()
        if not sep:
            raise FaultSpecError(
                f"malformed fault clause {clause!r} (expected key=value)"
            )
        if key not in _SPEC_KEYS:
            known = ", ".join(_SPEC_KEYS)
            raise FaultSpecError(f"unknown fault site {key!r} (known: {known})")
        field_name, cast = _SPEC_KEYS[key]
        try:
            values[field_name] = cast(raw.strip())
        except ValueError as exc:
            raise FaultSpecError(
                f"bad value for {key}: {raw.strip()!r} ({exc})"
            ) from None
    valid = {f.name for f in fields(FaultPlan)}
    assert set(values) <= valid
    return FaultPlan(**values)  # type: ignore[arg-type]
