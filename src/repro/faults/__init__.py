"""Deterministic, seeded fault injection for chaos-testing the stack.

This package is the *fault plane*: a single place that decides — purely,
from ``(seed, site, token)`` hashes — which worker chunks crash or hang,
which disk-cache writes land corrupted or raise, which serving requests
see a predictor failure or an arrival burst, and when a checkpointed
campaign gets killed.  The engine, cache, serving simulator and campaign
runner each ask the active plan at their fault sites; the resilience
machinery they wrap must then erase the injected faults, which the chaos
suite (``tests/test_chaos_engine.py``, ``tests/test_serving_degradation.py``)
asserts by demanding bit-identical results and bounded latency.

Activate a plan for a scope::

    from repro import faults

    with faults.inject("seed=42,worker.crash=1,cache.corrupt=0.1"):
        engine.evaluate_many(tasks)   # recovers; results bit-identical

or for a whole process tree via the environment::

    REPRO_FAULTS="seed=7,worker.hang=1" repro-experiments campaign

Every fault that fires is counted under ``faults.injected.<site>`` in
:mod:`repro.obs`.  See ``docs/ROBUSTNESS.md`` for the spec grammar and
the recovery semantics at each site.
"""

from __future__ import annotations

from repro.faults.injector import ENV_VAR, active_plan, inject, mark_injected
from repro.faults.plan import FaultPlan, parse_fault_spec

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "active_plan",
    "inject",
    "mark_injected",
    "parse_fault_spec",
]
