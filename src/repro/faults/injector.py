"""Scoped activation of fault plans (context manager + ``REPRO_FAULTS``).

The active plan lives in a module global *and* in the ``REPRO_FAULTS``
environment variable while an :func:`inject` scope is open: forked pool
workers inherit the global, spawned ones re-parse the env var, so every
process that participates in a run sees the same deterministic plan.

Production code asks :func:`active_plan` (one function call plus a None
check when no faults are configured) and consults the plan's pure
decision methods at each fault site; :func:`mark_injected` feeds the
``faults.injected.<site>`` observability counters so chaos tests can
assert exactly which faults fired.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro import obs
from repro.faults.plan import FaultPlan, parse_fault_spec

#: Environment variable carrying the fault spec across process boundaries.
ENV_VAR = "REPRO_FAULTS"

_active: FaultPlan | None = None
#: memoized (spec string -> plan) parse of the env var, so hot paths pay a
#: dict lookup — not a parse — per call when faults come from the env.
_env_cache: tuple[str | None, FaultPlan | None] = (None, None)


def active_plan() -> FaultPlan | None:
    """The fault plan in effect, or None (the overwhelmingly common case).

    Precedence: an open :func:`inject` scope, then ``REPRO_FAULTS``.
    """
    if _active is not None:
        return _active
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    global _env_cache
    if _env_cache[0] != spec:
        _env_cache = (spec, parse_fault_spec(spec))
    return _env_cache[1]


@contextmanager
def inject(plan: FaultPlan | str | None) -> Iterator[FaultPlan | None]:
    """Activate ``plan`` (a :class:`FaultPlan` or spec string) for a scope.

    While open, :func:`active_plan` returns the plan and ``REPRO_FAULTS``
    carries its spec so child processes — forked or spawned — inject the
    same faults.  Scopes nest; the previous plan (and env value) is
    restored on exit.  ``inject(None)`` masks any ambient plan, giving a
    guaranteed fault-free scope.
    """
    global _active
    if isinstance(plan, str):
        plan = parse_fault_spec(plan)
    prev_active = _active
    prev_env = os.environ.get(ENV_VAR)
    _active = plan
    if plan is None or not plan.to_spec():
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = plan.to_spec()
    try:
        yield plan
    finally:
        _active = prev_active
        if prev_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev_env


def mark_injected(site: str, n: float = 1.0) -> None:
    """Count one injected fault at ``site`` (``faults.injected.<site>``)."""
    obs.count(f"faults.injected.{site}", n)
