"""Byte-size constants and human-readable formatting."""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_BYTE_UNITS = (("GiB", GiB), ("MiB", MiB), ("KiB", KiB))


def human_bytes(n: float) -> str:
    """Format a byte count with binary units, e.g. ``1572864 -> '1.50MiB'``."""
    if n < 0:
        return "-" + human_bytes(-n)
    for unit, size in _BYTE_UNITS:
        if n >= size:
            return f"{n / size:.2f}{unit}"
    return f"{n:.0f}B"


def human_count(n: float) -> str:
    """Format a large count with SI suffixes, e.g. ``1.2e9 -> '1.20G'``."""
    if n < 0:
        return "-" + human_count(-n)
    for unit, size in (("T", 1e12), ("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if n >= size:
            return f"{n / size:.2f}{unit}"
    return f"{n:.0f}"
