"""Plain-text table rendering for experiment reports.

The benchmark harnesses print the same rows/series the paper's figures show;
this module renders them as aligned ASCII tables (and optionally CSV) so the
reproduction output is diffable and readable in a terminal.
"""

from __future__ import annotations

import io
from typing import Any, Iterable, Sequence


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["layer", "cycles"])
    >>> t.add_row([1, 12345])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append a row; values are stringified (floats get 4 significant digits)."""
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table as aligned ASCII text."""
        widths = self._widths()
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        sep = "-+-".join("-" * w for w in widths)
        out.write(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)) + "\n")
        out.write(sep + "\n")
        for row in self.rows:
            out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Render as CSV (no quoting; cells must not contain commas)."""
        lines = [",".join(self.headers)]
        lines.extend(",".join(row) for row in self.rows)
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
