"""Deterministic random-number helpers.

Everything in the reproduction is seeded so that test runs, benchmark rows and
the selection dataset are bit-stable across invocations.
"""

from __future__ import annotations

import numpy as np

#: Default global seed used by examples/experiments unless overridden.
DEFAULT_SEED = 20240812  # ICPP '24 dates (Aug 12-15, 2024)


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy ``Generator`` seeded deterministically.

    ``None`` maps to :data:`DEFAULT_SEED` (not to OS entropy) — determinism is
    the default in this package.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def synthetic_tensor(shape: tuple[int, ...], seed: int = 0, scale: float = 1.0) -> np.ndarray:
    """A deterministic float32 tensor in ``[-scale, scale]`` for a given shape.

    Used for synthetic weights/activations: uniform rather than normal keeps
    Winograd transform magnitudes bounded, which makes numerical-accuracy
    assertions meaningful.
    """
    rng = make_rng(seed ^ hash(shape) & 0x7FFFFFFF)
    return (rng.uniform(-scale, scale, size=shape)).astype(np.float32)
