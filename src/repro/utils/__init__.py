"""Small shared utilities: validation, formatting, deterministic RNG."""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_power_of_two,
    check_in,
    check_type,
)
from repro.utils.units import KiB, MiB, GiB, human_bytes, human_count
from repro.utils.tables import Table
from repro.utils.prng import make_rng

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_power_of_two",
    "check_in",
    "check_type",
    "KiB",
    "MiB",
    "GiB",
    "human_bytes",
    "human_count",
    "Table",
    "make_rng",
]
