"""Terminal bar charts for the figure harnesses.

The paper's artifacts are grouped-bar figures; the tables carry the exact
numbers, and this module renders the same series as Unicode bar charts so a
terminal user sees the figure's *shape* (who wins, where the crossovers
fall) at a glance.  No plotting dependencies — pure text.
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence

from repro.errors import ConfigError

#: Eighth-block characters for sub-character bar resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """A left-aligned bar of ``value/vmax`` scaled to ``width`` chars."""
    if vmax <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / vmax))
    eighths = int(round(fraction * width * 8))
    full, rem = divmod(eighths, 8)
    return "█" * full + (_BLOCKS[rem] if rem else "")


def bar_chart(
    series: Mapping[str, Sequence[float | None]],
    categories: Sequence[str],
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:.3g}",
) -> str:
    """Render grouped horizontal bars.

    ``series`` maps a series name (e.g. an algorithm label) to one value per
    category (e.g. per layer); ``None`` values render as ``n/a`` (the
    figures' missing bars).  All bars share one scale — comparisons across
    groups stay honest.
    """
    if not series:
        raise ConfigError("bar_chart needs at least one series")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ConfigError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
    finite = [
        v for values in series.values() for v in values if v is not None
    ]
    if not finite:
        raise ConfigError("bar_chart needs at least one non-None value")
    vmax = max(finite)
    name_w = max(len(str(n)) for n in series)
    cat_w = max(len(str(c)) for c in categories)

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for ci, cat in enumerate(categories):
        for si, (name, values) in enumerate(series.items()):
            label = str(cat) if si == 0 else ""
            v = values[ci]
            if v is None:
                out.write(
                    f"{label:>{cat_w}} {str(name):<{name_w}} | n/a\n"
                )
            else:
                out.write(
                    f"{label:>{cat_w}} {str(name):<{name_w}} |"
                    f"{_bar(v, vmax, width)} {value_format.format(v)}\n"
                )
        out.write("\n")
    return out.getvalue()


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """A one-line trend: ``[2.3s ▁▂▄█▆ 0.4s]`` style block sparkline."""
    vals = [float(v) for v in values]
    if not vals:
        raise ConfigError("sparkline needs at least one value")
    if width and width < len(vals):
        # downsample by striding
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    ticks = "▁▂▃▄▅▆▇█"
    if span == 0:
        return ticks[0] * len(vals)
    return "".join(
        ticks[min(len(ticks) - 1, int((v - lo) / span * len(ticks)))]
        for v in vals
    )
