"""Argument-validation helpers used across the package.

These raise :class:`repro.errors.ConfigError` with uniform messages so that
misconfiguration surfaces early and readably instead of as downstream numeric
nonsense.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ConfigError


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive power of two."""
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def check_power_of_two(name: str, value: int) -> None:
    """Require ``value`` to be a positive power of two."""
    if not is_power_of_two(value):
        raise ConfigError(f"{name} must be a positive power of two, got {value!r}")


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> None:
    """Require ``value`` to be a member of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigError(f"{name} must be one of {allowed}, got {value!r}")


def check_type(name: str, value: Any, typ: type) -> None:
    """Require ``isinstance(value, typ)`` (bool is rejected for int checks)."""
    if typ is int and isinstance(value, bool):
        raise ConfigError(f"{name} must be int, got bool {value!r}")
    if not isinstance(value, typ):
        raise ConfigError(
            f"{name} must be {typ.__name__}, got {type(value).__name__} {value!r}"
        )
