"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid hardware or experiment configuration was supplied."""


class IsaError(ReproError):
    """Illegal use of the vector ISA (bad register, bad vtype, ...)."""


class VectorLengthError(IsaError):
    """A requested/granted vector length violates the ISA rules."""


class RegisterError(IsaError):
    """A vector register index or operand shape is invalid."""


class SimulationError(ReproError):
    """The timing/cache simulator was driven into an invalid state."""


class AlgorithmError(ReproError):
    """A convolution algorithm was mis-applied."""


class NotApplicableError(AlgorithmError):
    """The algorithm does not support the given layer configuration."""


class ScheduleError(AlgorithmError):
    """An illegal loop transformation or schedule-IR misuse.

    Raised by :mod:`repro.schedule` when a transform sequence violates a
    legality invariant (tiling a vectorized axis, reordering with a
    non-permutation, exceeding the register budget, ...).
    """


class ShapeError(AlgorithmError):
    """Tensor shapes are inconsistent with the layer specification."""


class NetworkError(ReproError):
    """Errors building or executing a network graph."""


class CfgParseError(NetworkError):
    """A Darknet-style ``.cfg`` model description could not be parsed."""


class SelectionError(ReproError):
    """Errors in the algorithm-selection machine-learning stack."""


class NotFittedError(SelectionError):
    """A model was used before ``fit`` was called."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with inconsistent parameters."""


class EngineError(ReproError):
    """The memoized evaluation engine was misused or hit corrupt state."""


class FaultSpecError(ReproError):
    """A ``REPRO_FAULTS`` fault-injection spec could not be parsed."""


class InjectedFaultError(ReproError):
    """An error raised on purpose by the fault-injection plane.

    Only :mod:`repro.faults` raises this; seeing it outside a chaos test
    means a fault plan leaked into a production run.
    """


class CampaignAbortedError(ReproError):
    """A checkpointed campaign was aborted mid-run (resume with ``--resume``)."""


class ServeError(ReproError):
    """The prediction service was misconfigured or driven into a bad state."""


class ProtocolError(ServeError):
    """A serving request or response violates the wire schema."""
