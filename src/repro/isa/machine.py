"""The functional vector machine.

This is the synthetic stand-in for running RVV intrinsics on hardware/gem5:
kernels manipulate 32 vector registers through an intrinsic-shaped API, data
lives in :class:`Buffer` objects carved out of a flat byte-address space (so
loads/stores have real addresses for the cache simulator), and every
instruction is recorded in an :class:`~repro.isa.trace.InstructionTrace`.

Semantics follow RVV v1.0:

* ``vsetvl(requested, sew, lmul)`` grants ``min(requested, LMUL*VLEN/SEW)``
  and makes it the active ``vl``; with LMUL > 1 operands name aligned
  register *groups* and one instruction spans the whole group;
* tail elements (past ``vl``) are *undisturbed* on writes;
* loads/stores may be unit-stride, strided, or indexed (gather/scatter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IsaError, RegisterError
from repro.isa.registers import VectorRegisterFile
from repro.isa.trace import InstructionTrace
from repro.isa.types import (
    E32,
    ElementType,
    VType,
    grant_vl,
    validate_vlen_bits,
)

_ALIGN = 64  # buffers are cache-line aligned


@dataclass
class Buffer:
    """A flat, addressable allocation in the machine's memory space."""

    name: str
    base: int
    array: np.ndarray  # 1-D view of the underlying storage

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def elem_bytes(self) -> int:
        return self.array.itemsize

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index <= self.array.size:
            raise IsaError(
                f"index {index} out of bounds for buffer {self.name!r} "
                f"of {self.array.size} elements"
            )
        return self.base + index * self.array.itemsize


class VectorMachine:
    """Functional RVV-like machine: registers + buffers + trace.

    Parameters
    ----------
    vlen_bits:
        Hardware maximum vector length (power of two, <= 16384).
    trace:
        ``"full"`` (or ``True``, the default) records every instruction in
        ``self.trace`` for cache/timing replay.  ``"counts"`` (or ``False``)
        skips event storage entirely while keeping the instruction-count
        statistics exact — the mode for full-size layers, where a recorded
        trace would hold 10^8+ events.
    """

    def __init__(self, vlen_bits: int, trace: bool | str = True) -> None:
        validate_vlen_bits(vlen_bits)
        self.vlen_bits = vlen_bits
        self.regs = VectorRegisterFile(vlen_bits)
        if isinstance(trace, str):
            self.trace = InstructionTrace(mode=trace)
        else:
            self.trace = InstructionTrace(enabled=trace)
        self.vtype = VType(sew=E32, vl=0)
        self._next_addr = _ALIGN
        self._buffers: dict[str, Buffer] = {}
        self._alloc_seq = 0

    # ------------------------------------------------------------------ #
    # memory management
    # ------------------------------------------------------------------ #
    def alloc(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        unique: bool = False,
    ) -> Buffer:
        """Allocate a zeroed, cache-line-aligned buffer in the address space.

        With ``unique=True`` the name is suffixed with a per-machine
        monotonic allocation counter, so kernels can reuse a readable prefix
        without collisions (the counter never repeats on one machine,
        unlike e.g. truncated ``id()`` values).
        """
        seq = self._alloc_seq
        self._alloc_seq += 1
        if unique:
            name = f"{name}#{seq}"
        if name in self._buffers:
            raise IsaError(f"buffer {name!r} already allocated")
        array = np.zeros(shape, dtype=dtype).reshape(-1)
        buf = Buffer(name=name, base=self._next_addr, array=array)
        self._next_addr += (array.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN + _ALIGN
        self._buffers[name] = buf
        return buf

    def alloc_from(
        self, name: str, data: np.ndarray, unique: bool = False
    ) -> Buffer:
        """Allocate a buffer initialised with a copy of ``data`` (flattened)."""
        buf = self.alloc(name, data.size, dtype=data.dtype, unique=unique)
        buf.array[:] = data.reshape(-1)
        return buf

    def buffer(self, name: str) -> Buffer:
        """Look up a previously allocated buffer by name."""
        try:
            return self._buffers[name]
        except KeyError:
            raise IsaError(f"no buffer named {name!r}")

    # ------------------------------------------------------------------ #
    # configuration instructions
    # ------------------------------------------------------------------ #
    def vsetvl(
        self, requested: int, sew: ElementType = E32, lmul: int = 1
    ) -> int:
        """Set the active vector length; returns the granted ``vl``.

        With ``lmul > 1`` each register operand names a *group* of ``lmul``
        consecutive, aligned registers (v0/v8/v16/v24 at LMUL=8), and a
        single instruction processes up to ``lmul * VLEN`` bits.
        """
        vl = grant_vl(requested, sew, self.vlen_bits, lmul)
        self.vtype = VType(sew=sew, vl=vl, lmul=lmul)
        self.trace.emit_scalar("vsetvl", 1)
        return vl

    @property
    def vl(self) -> int:
        return self.vtype.vl

    @property
    def sew(self) -> ElementType:
        return self.vtype.sew

    def vlmax(self, sew: ElementType = E32, lmul: int = 1) -> int:
        """Maximum elements per register group at the given SEW and LMUL."""
        return lmul * self.vlen_bits // sew.bits

    def _active(self, vl: int | None) -> int:
        n = self.vtype.vl if vl is None else vl
        limit = self.vlmax(self.vtype.sew, self.vtype.lmul)
        if n > limit:
            raise IsaError(f"vl={n} exceeds VLMAX={limit}")
        return n

    # ------------------------------------------------------------------ #
    # memory instructions
    # ------------------------------------------------------------------ #
    def vload(self, vd: int, buf: Buffer, offset: int, vl: int | None = None) -> None:
        """Unit-stride load of ``vl`` elements starting at ``buf[offset]``."""
        n = self._active(vl)
        sew = self.vtype.sew
        data = buf.array[offset : offset + n]
        if data.size != n:
            raise IsaError(
                f"vload of {n} elements at offset {offset} overruns buffer "
                f"{buf.name!r} ({buf.array.size} elements)"
            )
        self._write_group(vd, data)
        self.trace.emit_memory("vle", buf.addr(offset), sew.bytes, n, sew.bytes, False)

    def vstore(self, vs: int, buf: Buffer, offset: int, vl: int | None = None) -> None:
        """Unit-stride store of ``vl`` elements to ``buf[offset]``."""
        n = self._active(vl)
        sew = self.vtype.sew
        if offset + n > buf.array.size:
            raise IsaError(
                f"vstore of {n} elements at offset {offset} overruns buffer "
                f"{buf.name!r} ({buf.array.size} elements)"
            )
        buf.array[offset : offset + n] = self._read_group(vs, n)
        self.trace.emit_memory("vse", buf.addr(offset), sew.bytes, n, sew.bytes, True)

    def vload_strided(
        self, vd: int, buf: Buffer, offset: int, stride_elems: int, vl: int | None = None
    ) -> None:
        """Strided load: elements at ``offset + i*stride_elems``."""
        n = self._active(vl)
        sew = self.vtype.sew
        idx = offset + stride_elems * np.arange(n)
        data = buf.array[idx]
        self._write_group(vd, data)
        self.trace.emit_memory(
            "vlse", buf.addr(offset), sew.bytes, n, stride_elems * sew.bytes, False
        )

    def vstore_strided(
        self, vs: int, buf: Buffer, offset: int, stride_elems: int, vl: int | None = None
    ) -> None:
        """Strided store: elements to ``offset + i*stride_elems``."""
        n = self._active(vl)
        sew = self.vtype.sew
        idx = offset + stride_elems * np.arange(n)
        buf.array[idx] = self._read_group(vs, n)
        self.trace.emit_memory(
            "vsse", buf.addr(offset), sew.bytes, n, stride_elems * sew.bytes, True
        )

    def vgather(
        self, vd: int, buf: Buffer, offsets: np.ndarray, vl: int | None = None
    ) -> None:
        """Indexed (gather) load from element offsets ``offsets``."""
        n = self._active(vl)
        sew = self.vtype.sew
        offsets = np.asarray(offsets[:n], dtype=np.int64)
        data = buf.array[offsets]
        self._write_group(vd, data)
        self.trace.emit_memory(
            "vluxei", buf.base, sew.bytes, n, 0, False,
            indices=tuple(int(o) * sew.bytes for o in offsets),
        )

    def vscatter(
        self, vs: int, buf: Buffer, offsets: np.ndarray, vl: int | None = None
    ) -> None:
        """Indexed (scatter) store to element offsets ``offsets``."""
        n = self._active(vl)
        sew = self.vtype.sew
        offsets = np.asarray(offsets[:n], dtype=np.int64)
        buf.array[offsets] = self._read_group(vs, n)
        self.trace.emit_memory(
            "vsuxei", buf.base, sew.bytes, n, 0, True,
            indices=tuple(int(o) * sew.bytes for o in offsets),
        )

    # ------------------------------------------------------------------ #
    # arithmetic instructions
    # ------------------------------------------------------------------ #
    def _check_group(self, reg: int) -> None:
        lmul = self.vtype.lmul
        if reg % lmul:
            raise RegisterError(
                f"register v{reg} not aligned to LMUL={lmul} group"
            )
        if reg + lmul > self.regs.num_regs:
            raise RegisterError(
                f"register group v{reg}..v{reg + lmul - 1} exceeds the file"
            )

    def _read_group(self, reg: int, n: int) -> "np.ndarray":
        """Read ``n`` elements from the LMUL-group starting at ``reg``."""
        sew = self.vtype.sew
        lmul = self.vtype.lmul
        if lmul == 1:
            return self.regs.read(reg, sew, n)
        self._check_group(reg)
        per = self.vlen_bits // sew.bits
        parts = []
        remaining = n
        for k in range(lmul):
            take = min(per, remaining)
            if take <= 0:
                break
            parts.append(self.regs.read(reg + k, sew, take))
            remaining -= take
        return np.concatenate(parts) if parts else np.empty(0, dtype=sew.dtype)

    def _write_group(self, reg: int, values: "np.ndarray") -> None:
        """Write elements into the LMUL-group starting at ``reg``."""
        sew = self.vtype.sew
        lmul = self.vtype.lmul
        if lmul == 1:
            self.regs.write(reg, sew, values)
            return
        self._check_group(reg)
        per = self.vlen_bits // sew.bits
        for k in range(lmul):
            chunk = values[k * per : (k + 1) * per]
            if chunk.size == 0:
                break
            self.regs.write(reg + k, sew, chunk)

    def _binop(self, name: str, vd: int, vs1: int, vs2: int, fn) -> None:
        n = self.vtype.vl
        sew = self.vtype.sew
        a = self._read_group(vs1, n)
        b = self._read_group(vs2, n)
        self._write_group(vd, fn(a, b))
        self.trace.emit_vector(name, n, sew.bits)

    def vfadd(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = vs1[i] + vs2[i]``."""
        self._binop("vfadd", vd, vs1, vs2, np.add)

    def vfsub(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = vs1[i] - vs2[i]``."""
        self._binop("vfsub", vd, vs1, vs2, np.subtract)

    def vfmul(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = vs1[i] * vs2[i]``."""
        self._binop("vfmul", vd, vs1, vs2, np.multiply)

    def vfmax(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = max(vs1[i], vs2[i])``."""
        self._binop("vfmax", vd, vs1, vs2, np.maximum)

    def vfmacc(self, vd: int, vs1: int, vs2: int) -> None:
        """Fused multiply-accumulate: ``vd[i] += vs1[i] * vs2[i]``."""
        n = self.vtype.vl
        sew = self.vtype.sew
        acc = self._read_group(vd, n)
        a = self._read_group(vs1, n)
        b = self._read_group(vs2, n)
        self._write_group(vd, acc + a * b)
        self.trace.emit_vector("vfmacc", n, sew.bits)

    def vfmacc_vf(self, vd: int, scalar: float, vs2: int) -> None:
        """Vector-scalar FMA: ``vd[i] += scalar * vs2[i]``.

        This is the work-horse of the paper's GEMM/Direct inner loops — the
        compiler lowers broadcast+FMA to a single vector-scalar instruction.
        """
        n = self.vtype.vl
        sew = self.vtype.sew
        acc = self._read_group(vd, n)
        b = self._read_group(vs2, n)
        self._write_group(vd, acc + sew.dtype.type(scalar) * b)
        self.trace.emit_vector("vfmacc.vf", n, sew.bits)

    def vfmul_vf(self, vd: int, scalar: float, vs2: int) -> None:
        """Vector-scalar multiply: ``vd[i] = scalar * vs2[i]``."""
        n = self.vtype.vl
        sew = self.vtype.sew
        b = self._read_group(vs2, n)
        self._write_group(vd, sew.dtype.type(scalar) * b)
        self.trace.emit_vector("vfmul.vf", n, sew.bits)

    def vbroadcast(self, vd: int, scalar: float) -> None:
        """Splat a scalar across the active elements (``vfmv.v.f``)."""
        n = self.vtype.vl
        sew = self.vtype.sew
        self._write_group(vd, np.full(n, scalar, dtype=sew.dtype))
        self.trace.emit_vector("vfmv", n, sew.bits)

    def vmv(self, vd: int, vs: int) -> None:
        """Register-to-register move of the active elements."""
        n = self.vtype.vl
        sew = self.vtype.sew
        self._write_group(vd, self._read_group(vs, n))
        self.trace.emit_vector("vmv", n, sew.bits)

    def vredsum(self, vs: int) -> float:
        """Sum-reduce the active elements; returns the scalar result."""
        n = self.vtype.vl
        sew = self.vtype.sew
        value = float(self._read_group(vs, n).sum(dtype=np.float64))
        self.trace.emit_vector("vredsum", n, sew.bits)
        return value

    # ------------------------------------------------------------------ #
    # batched intrinsics (fast path)
    # ------------------------------------------------------------------ #
    # Each *_seq method is semantically an unrolled run of the per-op
    # intrinsic above it — same register effects, same trace events, same
    # element-wise fp rounding — issued as ONE Python call per unrolled
    # block.  This is what lets the kernel inner loops in
    # repro.algorithms.{direct,gemm_kernels,winograd} amortize interpreter
    # and event-allocation overhead across a whole register block.

    def _seq_block(self, reg0: int, count: int) -> np.ndarray | None:
        """2-D (count, VLMAX) view for a register run, or None if the
        LMUL-grouped fallback must be used."""
        if self.vtype.lmul != 1:
            return None
        return self.regs.block_view(reg0, count, self.vtype.sew)

    def vbroadcast_seq(
        self, vd0: int, count: int, scalar: float, vl: int | None = None
    ) -> None:
        """Splat ``scalar`` into registers ``vd0 .. vd0+count-1``.

        Equivalent to ``count`` successive :meth:`vbroadcast` calls.
        """
        n = self._active(vl)
        sew = self.vtype.sew
        block = self._seq_block(vd0, count)
        if block is None:
            for it in range(count):
                self.vbroadcast(vd0 + it * self.vtype.lmul, scalar)
            return
        block[:, :n] = sew.dtype.type(scalar)
        self.trace.emit_vector("vfmv", n, sew.bits, count)

    def vload_seq(
        self, vd0: int, buf: Buffer, offsets, vl: int | None = None
    ) -> None:
        """Unit-stride loads ``buf[offsets[i]] -> v(vd0+i)`` for each i.

        Equivalent to ``len(offsets)`` successive :meth:`vload` calls (the
        recorded memory ops carry the same addresses in the same order).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        n = self._active(vl)
        sew = self.vtype.sew
        count = offsets.size
        if count == 0:
            return
        lo, hi = int(offsets.min()), int(offsets.max())
        if lo < 0 or hi + n > buf.array.size:
            raise IsaError(
                f"vload_seq of {n} elements at offsets [{lo}, {hi}] overruns "
                f"buffer {buf.name!r} ({buf.array.size} elements)"
            )
        block = self._seq_block(vd0, count)
        if block is None:
            for it, off in enumerate(offsets):
                self.vload(vd0 + it * self.vtype.lmul, buf, int(off), vl=n)
            return
        gathered = buf.array[offsets[:, None] + np.arange(n)]
        block[:, :n] = gathered.astype(sew.dtype, copy=False)
        self.trace.emit_memory_rows(
            "vle",
            buf.base + offsets * buf.array.itemsize,
            sew.bytes,
            n,
            sew.bytes,
            False,
        )

    def vstore_seq(
        self, vs0: int, buf: Buffer, offsets, vl: int | None = None
    ) -> None:
        """Unit-stride stores ``v(vs0+i) -> buf[offsets[i]]`` for each i.

        Equivalent to successive :meth:`vstore` calls; the target windows
        must not overlap (kernels store to distinct output rows).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        n = self._active(vl)
        sew = self.vtype.sew
        count = offsets.size
        if count == 0:
            return
        lo, hi = int(offsets.min()), int(offsets.max())
        if lo < 0 or hi + n > buf.array.size:
            raise IsaError(
                f"vstore_seq of {n} elements at offsets [{lo}, {hi}] overruns "
                f"buffer {buf.name!r} ({buf.array.size} elements)"
            )
        block = self._seq_block(vs0, count)
        if block is None:
            for it, off in enumerate(offsets):
                self.vstore(vs0 + it * self.vtype.lmul, buf, int(off), vl=n)
            return
        buf.array[offsets[:, None] + np.arange(n)] = block[:, :n]
        self.trace.emit_memory_rows(
            "vse",
            buf.base + offsets * buf.array.itemsize,
            sew.bytes,
            n,
            sew.bytes,
            True,
        )

    def vfmacc_vf_seq(
        self, vd0: int, scalars, vs2: int, vl: int | None = None
    ) -> None:
        """Vector-scalar FMAs ``v(vd0+i) += scalars[i] * v(vs2)`` for each i.

        Equivalent to ``len(scalars)`` successive :meth:`vfmacc_vf` calls —
        bit-identical accumulation (each product is rounded to SEW before
        the add, exactly as the per-op path does).  ``vs2`` must not lie in
        the destination run.
        """
        scalars = np.asarray(scalars)
        n = self._active(vl)
        sew = self.vtype.sew
        count = scalars.size
        if count == 0:
            return
        if vd0 <= vs2 < vd0 + count * self.vtype.lmul:
            raise IsaError(
                f"vfmacc_vf_seq source v{vs2} overlaps destinations "
                f"v{vd0}..v{vd0 + count - 1}"
            )
        block = self._seq_block(vd0, count)
        if block is None:
            for it, s in enumerate(scalars):
                self.vfmacc_vf(vd0 + it * self.vtype.lmul, float(s), vs2)
            return
        b = self._read_group(vs2, n)
        block[:, :n] += scalars.astype(sew.dtype, copy=False)[:, None] * b[None, :]
        self.trace.emit_vector("vfmacc.vf", n, sew.bits, count)

    def vcopy_strips(
        self,
        src_buf: Buffer,
        src_off: int,
        dst_buf: Buffer,
        dst_off: int,
        length: int,
        src_stride: int = 1,
        vreg: int = 0,
        sew: ElementType = E32,
        lmul: int = 1,
    ) -> None:
        """Strip-mined copy of ``length`` elements, issued as one call.

        Equivalent to the canonical per-op loop every packing/im2col kernel
        writes by hand::

            j = 0
            while j < length:
                gvl = machine.vsetvl(length - j, sew, lmul)
                machine.vload[_strided](vreg, src_buf, src_off + j*src_stride, ...)
                machine.vstore(vreg, dst_buf, dst_off + j)
                j += gvl

        Same data movement, same trace events in the same order (one
        ``vsetvl`` scalar per strip, load/store memory ops interleaved per
        strip), same end state for ``vl`` and register ``vreg``.
        """
        if length <= 0:
            return
        last_src = src_off + (length - 1) * src_stride
        if src_off < 0 or last_src + 1 > src_buf.array.size:
            raise IsaError(
                f"vcopy_strips source [{src_off}, {last_src}] overruns buffer "
                f"{src_buf.name!r} ({src_buf.array.size} elements)"
            )
        if dst_off < 0 or dst_off + length > dst_buf.array.size:
            raise IsaError(
                f"vcopy_strips of {length} elements at offset {dst_off} overruns "
                f"buffer {dst_buf.name!r} ({dst_buf.array.size} elements)"
            )
        vlmax = self.vlmax(sew, lmul)
        nstrips = -(-length // vlmax)
        starts = np.arange(nstrips, dtype=np.int64) * vlmax
        vls = np.minimum(length - starts, vlmax)
        # -- data movement (src dtype -> SEW register dtype -> dst dtype) -- #
        if src_stride == 1:
            src_vals = src_buf.array[src_off : src_off + length]
        else:
            src_vals = src_buf.array[src_off + src_stride * np.arange(length)]
        data_sew = src_vals.astype(sew.dtype, copy=False)
        dst_buf.array[dst_off : dst_off + length] = data_sew
        # -- trace: vsetvl per strip, then load/store interleaved per strip #
        self.trace.emit_scalar("vsetvl", nstrips)
        load_name = "vle" if src_stride == 1 else "vlse"
        load_bases = src_buf.base + (src_off + starts * src_stride) * src_buf.array.itemsize
        store_bases = dst_buf.base + (dst_off + starts) * dst_buf.array.itemsize
        bases = np.empty(2 * nstrips, dtype=np.int64)
        bases[0::2] = load_bases
        bases[1::2] = store_bases
        if nstrips == 1:
            names: str | np.ndarray = np.array([load_name, "vse"])
            vl_rows: int | np.ndarray = int(vls[0])
        else:
            names = np.empty(2 * nstrips, dtype=object)
            names[0::2] = load_name
            names[1::2] = "vse"
            vl_rows = np.repeat(vls, 2)
        strides = np.empty(2 * nstrips, dtype=np.int64)
        strides[0::2] = src_stride * sew.bytes
        strides[1::2] = sew.bytes
        store_flags = np.zeros(2 * nstrips, dtype=bool)
        store_flags[1::2] = True
        self.trace.emit_memory_rows(names, bases, sew.bytes, vl_rows, strides, store_flags)
        # -- end state: vl/vtype and vreg as the per-op loop leaves them -- #
        last_vl = int(vls[-1])
        self.vtype = VType(sew=sew, vl=last_vl, lmul=lmul)
        if nstrips >= 2:
            pen = int(starts[-2])
            self._write_group(vreg, data_sew[pen : pen + vlmax])
        self._write_group(vreg, data_sew[int(starts[-1]) :])

    # ------------------------------------------------------------------ #
    # scalar bookkeeping
    # ------------------------------------------------------------------ #
    def scalar(self, count: int = 1, name: str = "scalar") -> None:
        """Account for ``count`` scalar bookkeeping instructions."""
        if count < 0:
            raise IsaError(f"scalar count must be >= 0, got {count}")
        if count:
            self.trace.emit_scalar(name, count)

    # ------------------------------------------------------------------ #
    # debugging helpers
    # ------------------------------------------------------------------ #
    def reg_values(self, reg: int, vl: int | None = None) -> np.ndarray:
        """Read a register's active elements (for tests/debugging)."""
        n = self._active(vl)
        return self._read_group(reg, n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorMachine(vlen_bits={self.vlen_bits}, vl={self.vtype.vl}, "
            f"sew={self.vtype.sew}, instrs={self.trace.stats.total_instrs})"
        )
