"""The functional vector machine.

This is the synthetic stand-in for running RVV intrinsics on hardware/gem5:
kernels manipulate 32 vector registers through an intrinsic-shaped API, data
lives in :class:`Buffer` objects carved out of a flat byte-address space (so
loads/stores have real addresses for the cache simulator), and every
instruction is recorded in an :class:`~repro.isa.trace.InstructionTrace`.

Semantics follow RVV v1.0:

* ``vsetvl(requested, sew, lmul)`` grants ``min(requested, LMUL*VLEN/SEW)``
  and makes it the active ``vl``; with LMUL > 1 operands name aligned
  register *groups* and one instruction spans the whole group;
* tail elements (past ``vl``) are *undisturbed* on writes;
* loads/stores may be unit-stride, strided, or indexed (gather/scatter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IsaError, RegisterError
from repro.isa.registers import VectorRegisterFile
from repro.isa.trace import InstructionTrace, MemoryOp, ScalarOp, VectorOp
from repro.isa.types import (
    E32,
    ElementType,
    VType,
    grant_vl,
    validate_vlen_bits,
)

_ALIGN = 64  # buffers are cache-line aligned


@dataclass
class Buffer:
    """A flat, addressable allocation in the machine's memory space."""

    name: str
    base: int
    array: np.ndarray  # 1-D view of the underlying storage

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def elem_bytes(self) -> int:
        return self.array.itemsize

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index <= self.array.size:
            raise IsaError(
                f"index {index} out of bounds for buffer {self.name!r} "
                f"of {self.array.size} elements"
            )
        return self.base + index * self.array.itemsize


class VectorMachine:
    """Functional RVV-like machine: registers + buffers + trace.

    Parameters
    ----------
    vlen_bits:
        Hardware maximum vector length (power of two, <= 16384).
    trace:
        When True (default), every instruction is appended to ``self.trace``.
        Statistics are kept either way.  Disable event storage for larger
        kernels where only counts matter.
    """

    def __init__(self, vlen_bits: int, trace: bool = True) -> None:
        validate_vlen_bits(vlen_bits)
        self.vlen_bits = vlen_bits
        self.regs = VectorRegisterFile(vlen_bits)
        self.trace = InstructionTrace(enabled=trace)
        self.vtype = VType(sew=E32, vl=0)
        self._next_addr = _ALIGN
        self._buffers: dict[str, Buffer] = {}

    # ------------------------------------------------------------------ #
    # memory management
    # ------------------------------------------------------------------ #
    def alloc(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float32,
    ) -> Buffer:
        """Allocate a zeroed, cache-line-aligned buffer in the address space."""
        if name in self._buffers:
            raise IsaError(f"buffer {name!r} already allocated")
        array = np.zeros(shape, dtype=dtype).reshape(-1)
        buf = Buffer(name=name, base=self._next_addr, array=array)
        self._next_addr += (array.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN + _ALIGN
        self._buffers[name] = buf
        return buf

    def alloc_from(self, name: str, data: np.ndarray) -> Buffer:
        """Allocate a buffer initialised with a copy of ``data`` (flattened)."""
        buf = self.alloc(name, data.size, dtype=data.dtype)
        buf.array[:] = data.reshape(-1)
        return buf

    def buffer(self, name: str) -> Buffer:
        """Look up a previously allocated buffer by name."""
        try:
            return self._buffers[name]
        except KeyError:
            raise IsaError(f"no buffer named {name!r}")

    # ------------------------------------------------------------------ #
    # configuration instructions
    # ------------------------------------------------------------------ #
    def vsetvl(
        self, requested: int, sew: ElementType = E32, lmul: int = 1
    ) -> int:
        """Set the active vector length; returns the granted ``vl``.

        With ``lmul > 1`` each register operand names a *group* of ``lmul``
        consecutive, aligned registers (v0/v8/v16/v24 at LMUL=8), and a
        single instruction processes up to ``lmul * VLEN`` bits.
        """
        vl = grant_vl(requested, sew, self.vlen_bits, lmul)
        self.vtype = VType(sew=sew, vl=vl, lmul=lmul)
        self.trace.emit(ScalarOp("vsetvl", 1))
        return vl

    @property
    def vl(self) -> int:
        return self.vtype.vl

    @property
    def sew(self) -> ElementType:
        return self.vtype.sew

    def vlmax(self, sew: ElementType = E32, lmul: int = 1) -> int:
        """Maximum elements per register group at the given SEW and LMUL."""
        return lmul * self.vlen_bits // sew.bits

    def _active(self, vl: int | None) -> int:
        n = self.vtype.vl if vl is None else vl
        limit = self.vlmax(self.vtype.sew, self.vtype.lmul)
        if n > limit:
            raise IsaError(f"vl={n} exceeds VLMAX={limit}")
        return n

    # ------------------------------------------------------------------ #
    # memory instructions
    # ------------------------------------------------------------------ #
    def vload(self, vd: int, buf: Buffer, offset: int, vl: int | None = None) -> None:
        """Unit-stride load of ``vl`` elements starting at ``buf[offset]``."""
        n = self._active(vl)
        sew = self.vtype.sew
        data = buf.array[offset : offset + n]
        if data.size != n:
            raise IsaError(
                f"vload of {n} elements at offset {offset} overruns buffer "
                f"{buf.name!r} ({buf.array.size} elements)"
            )
        self._write_group(vd, data)
        self.trace.emit(
            MemoryOp("vle", buf.addr(offset), sew.bytes, n, sew.bytes, is_store=False)
        )

    def vstore(self, vs: int, buf: Buffer, offset: int, vl: int | None = None) -> None:
        """Unit-stride store of ``vl`` elements to ``buf[offset]``."""
        n = self._active(vl)
        sew = self.vtype.sew
        if offset + n > buf.array.size:
            raise IsaError(
                f"vstore of {n} elements at offset {offset} overruns buffer "
                f"{buf.name!r} ({buf.array.size} elements)"
            )
        buf.array[offset : offset + n] = self._read_group(vs, n)
        self.trace.emit(
            MemoryOp("vse", buf.addr(offset), sew.bytes, n, sew.bytes, is_store=True)
        )

    def vload_strided(
        self, vd: int, buf: Buffer, offset: int, stride_elems: int, vl: int | None = None
    ) -> None:
        """Strided load: elements at ``offset + i*stride_elems``."""
        n = self._active(vl)
        sew = self.vtype.sew
        idx = offset + stride_elems * np.arange(n)
        data = buf.array[idx]
        self._write_group(vd, data)
        self.trace.emit(
            MemoryOp(
                "vlse",
                buf.addr(offset),
                sew.bytes,
                n,
                stride_elems * sew.bytes,
                is_store=False,
            )
        )

    def vstore_strided(
        self, vs: int, buf: Buffer, offset: int, stride_elems: int, vl: int | None = None
    ) -> None:
        """Strided store: elements to ``offset + i*stride_elems``."""
        n = self._active(vl)
        sew = self.vtype.sew
        idx = offset + stride_elems * np.arange(n)
        buf.array[idx] = self._read_group(vs, n)
        self.trace.emit(
            MemoryOp(
                "vsse",
                buf.addr(offset),
                sew.bytes,
                n,
                stride_elems * sew.bytes,
                is_store=True,
            )
        )

    def vgather(
        self, vd: int, buf: Buffer, offsets: np.ndarray, vl: int | None = None
    ) -> None:
        """Indexed (gather) load from element offsets ``offsets``."""
        n = self._active(vl)
        sew = self.vtype.sew
        offsets = np.asarray(offsets[:n], dtype=np.int64)
        data = buf.array[offsets]
        self._write_group(vd, data)
        self.trace.emit(
            MemoryOp(
                "vluxei",
                buf.base,
                sew.bytes,
                n,
                0,
                is_store=False,
                indices=tuple(int(o) * sew.bytes for o in offsets),
            )
        )

    def vscatter(
        self, vs: int, buf: Buffer, offsets: np.ndarray, vl: int | None = None
    ) -> None:
        """Indexed (scatter) store to element offsets ``offsets``."""
        n = self._active(vl)
        sew = self.vtype.sew
        offsets = np.asarray(offsets[:n], dtype=np.int64)
        buf.array[offsets] = self._read_group(vs, n)
        self.trace.emit(
            MemoryOp(
                "vsuxei",
                buf.base,
                sew.bytes,
                n,
                0,
                is_store=True,
                indices=tuple(int(o) * sew.bytes for o in offsets),
            )
        )

    # ------------------------------------------------------------------ #
    # arithmetic instructions
    # ------------------------------------------------------------------ #
    def _check_group(self, reg: int) -> None:
        lmul = self.vtype.lmul
        if reg % lmul:
            raise RegisterError(
                f"register v{reg} not aligned to LMUL={lmul} group"
            )
        if reg + lmul > self.regs.num_regs:
            raise RegisterError(
                f"register group v{reg}..v{reg + lmul - 1} exceeds the file"
            )

    def _read_group(self, reg: int, n: int) -> "np.ndarray":
        """Read ``n`` elements from the LMUL-group starting at ``reg``."""
        sew = self.vtype.sew
        lmul = self.vtype.lmul
        if lmul == 1:
            return self.regs.read(reg, sew, n)
        self._check_group(reg)
        per = self.vlen_bits // sew.bits
        parts = []
        remaining = n
        for k in range(lmul):
            take = min(per, remaining)
            if take <= 0:
                break
            parts.append(self.regs.read(reg + k, sew, take))
            remaining -= take
        return np.concatenate(parts) if parts else np.empty(0, dtype=sew.dtype)

    def _write_group(self, reg: int, values: "np.ndarray") -> None:
        """Write elements into the LMUL-group starting at ``reg``."""
        sew = self.vtype.sew
        lmul = self.vtype.lmul
        if lmul == 1:
            self.regs.write(reg, sew, values)
            return
        self._check_group(reg)
        per = self.vlen_bits // sew.bits
        for k in range(lmul):
            chunk = values[k * per : (k + 1) * per]
            if chunk.size == 0:
                break
            self.regs.write(reg + k, sew, chunk)

    def _binop(self, name: str, vd: int, vs1: int, vs2: int, fn) -> None:
        n = self.vtype.vl
        sew = self.vtype.sew
        a = self._read_group(vs1, n)
        b = self._read_group(vs2, n)
        self._write_group(vd, fn(a, b))
        self.trace.emit(VectorOp(name, n, sew.bits))

    def vfadd(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = vs1[i] + vs2[i]``."""
        self._binop("vfadd", vd, vs1, vs2, np.add)

    def vfsub(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = vs1[i] - vs2[i]``."""
        self._binop("vfsub", vd, vs1, vs2, np.subtract)

    def vfmul(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = vs1[i] * vs2[i]``."""
        self._binop("vfmul", vd, vs1, vs2, np.multiply)

    def vfmax(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd[i] = max(vs1[i], vs2[i])``."""
        self._binop("vfmax", vd, vs1, vs2, np.maximum)

    def vfmacc(self, vd: int, vs1: int, vs2: int) -> None:
        """Fused multiply-accumulate: ``vd[i] += vs1[i] * vs2[i]``."""
        n = self.vtype.vl
        sew = self.vtype.sew
        acc = self._read_group(vd, n)
        a = self._read_group(vs1, n)
        b = self._read_group(vs2, n)
        self._write_group(vd, acc + a * b)
        self.trace.emit(VectorOp("vfmacc", n, sew.bits))

    def vfmacc_vf(self, vd: int, scalar: float, vs2: int) -> None:
        """Vector-scalar FMA: ``vd[i] += scalar * vs2[i]``.

        This is the work-horse of the paper's GEMM/Direct inner loops — the
        compiler lowers broadcast+FMA to a single vector-scalar instruction.
        """
        n = self.vtype.vl
        sew = self.vtype.sew
        acc = self._read_group(vd, n)
        b = self._read_group(vs2, n)
        self._write_group(vd, acc + sew.dtype.type(scalar) * b)
        self.trace.emit(VectorOp("vfmacc.vf", n, sew.bits))

    def vfmul_vf(self, vd: int, scalar: float, vs2: int) -> None:
        """Vector-scalar multiply: ``vd[i] = scalar * vs2[i]``."""
        n = self.vtype.vl
        sew = self.vtype.sew
        b = self._read_group(vs2, n)
        self._write_group(vd, sew.dtype.type(scalar) * b)
        self.trace.emit(VectorOp("vfmul.vf", n, sew.bits))

    def vbroadcast(self, vd: int, scalar: float) -> None:
        """Splat a scalar across the active elements (``vfmv.v.f``)."""
        n = self.vtype.vl
        sew = self.vtype.sew
        self._write_group(vd, np.full(n, scalar, dtype=sew.dtype))
        self.trace.emit(VectorOp("vfmv", n, sew.bits))

    def vmv(self, vd: int, vs: int) -> None:
        """Register-to-register move of the active elements."""
        n = self.vtype.vl
        sew = self.vtype.sew
        self._write_group(vd, self._read_group(vs, n))
        self.trace.emit(VectorOp("vmv", n, sew.bits))

    def vredsum(self, vs: int) -> float:
        """Sum-reduce the active elements; returns the scalar result."""
        n = self.vtype.vl
        sew = self.vtype.sew
        value = float(self._read_group(vs, n).sum(dtype=np.float64))
        self.trace.emit(VectorOp("vredsum", n, sew.bits))
        return value

    # ------------------------------------------------------------------ #
    # scalar bookkeeping
    # ------------------------------------------------------------------ #
    def scalar(self, count: int = 1, name: str = "scalar") -> None:
        """Account for ``count`` scalar bookkeeping instructions."""
        if count < 0:
            raise IsaError(f"scalar count must be >= 0, got {count}")
        if count:
            self.trace.emit(ScalarOp(name, count))

    # ------------------------------------------------------------------ #
    # debugging helpers
    # ------------------------------------------------------------------ #
    def reg_values(self, reg: int, vl: int | None = None) -> np.ndarray:
        """Read a register's active elements (for tests/debugging)."""
        n = self._active(vl)
        return self._read_group(reg, n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorMachine(vlen_bits={self.vlen_bits}, vl={self.vtype.vl}, "
            f"sew={self.vtype.sew}, instrs={self.trace.stats.total_instrs})"
        )
