"""The vector register file.

RVV exposes 32 architectural vector registers of VLEN bits each.  We store
each register as a raw byte buffer and hand out dtype-punned views, so a
register written with e32 elements can (as on hardware) be reinterpreted at a
different SEW.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RegisterError
from repro.isa.types import ElementType, validate_vlen_bits

#: Number of architectural vector registers in RVV.
NUM_VREGS = 32


class VectorRegisterFile:
    """32 vector registers of ``vlen_bits`` bits each, byte-addressable."""

    def __init__(self, vlen_bits: int, num_regs: int = NUM_VREGS) -> None:
        validate_vlen_bits(vlen_bits)
        if num_regs <= 0:
            raise RegisterError(f"num_regs must be positive, got {num_regs}")
        self.vlen_bits = vlen_bits
        self.vlen_bytes = vlen_bits // 8
        self.num_regs = num_regs
        self._data = np.zeros((num_regs, self.vlen_bytes), dtype=np.uint8)

    def _check_reg(self, reg: int) -> None:
        if not isinstance(reg, (int, np.integer)) or isinstance(reg, bool):
            raise RegisterError(f"register index must be int, got {reg!r}")
        if not 0 <= reg < self.num_regs:
            raise RegisterError(
                f"register v{reg} out of range (file has {self.num_regs} registers)"
            )

    def view(self, reg: int, sew: ElementType) -> np.ndarray:
        """A writable view of register ``reg`` as ``VLEN/SEW`` elements."""
        self._check_reg(reg)
        return self._data[reg].view(sew.dtype)

    def read(self, reg: int, sew: ElementType, vl: int) -> np.ndarray:
        """Copy out the first ``vl`` elements of a register."""
        full = self.view(reg, sew)
        if vl > full.size:
            raise RegisterError(
                f"vl={vl} exceeds register capacity {full.size} elements at {sew}"
            )
        return full[:vl].copy()

    def write(self, reg: int, sew: ElementType, values: np.ndarray) -> None:
        """Write ``values`` into the low elements of a register.

        Elements past ``len(values)`` follow the RVV "tail-undisturbed"
        policy: they keep their previous contents.
        """
        view = self.view(reg, sew)
        if values.ndim != 1:
            raise RegisterError(f"vector write must be 1-D, got shape {values.shape}")
        if values.size > view.size:
            raise RegisterError(
                f"writing {values.size} elements into register of {view.size} at {sew}"
            )
        view[: values.size] = values.astype(sew.dtype, copy=False)

    def block_view(self, reg: int, count: int, sew: ElementType) -> np.ndarray:
        """A writable 2-D view of ``count`` consecutive registers.

        Shape is ``(count, VLEN/SEW)`` — one row per register.  This is the
        storage the batched intrinsics (:meth:`VectorMachine.vfmacc_vf_seq`
        and friends) operate on: one NumPy block op updates a whole run of
        accumulator registers, instead of one Python-level read-modify-write
        per register.
        """
        if count <= 0:
            raise RegisterError(f"register block count must be positive, got {count}")
        self._check_reg(reg)
        self._check_reg(reg + count - 1)
        return self._data[reg : reg + count].view(sew.dtype)

    def clear(self) -> None:
        """Zero the whole register file."""
        self._data[:] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorRegisterFile(vlen_bits={self.vlen_bits}, num_regs={self.num_regs})"
