"""Instruction traces emitted by the functional vector machine.

A trace is an ordered sequence of lightweight event records:

* :class:`VectorOp` — an arithmetic/permute vector instruction with its
  active element count (so the timing model can compute chimes and lane
  utilization);
* :class:`MemoryOp` — a vector load/store described compactly as
  ``(base address, element bytes, element count, stride)`` — the cache
  simulator expands this to cache-line touches without storing per-element
  addresses;
* :class:`ScalarOp` — a batch of scalar bookkeeping instructions (address
  arithmetic, loop control), recorded in bulk.

Storage is *columnar* (structure-of-arrays): instead of one Python object
per event, the trace keeps preallocated, geometrically grown NumPy columns
for the event kind, interned opcode id, vector length, element width, base
address, stride and store flag.  The dataclasses above remain the public
per-event view — iteration decodes rows back into them on demand — so the
cache and timing simulators consume traces unchanged, while the emit path
(including the batched ``emit_*`` entry points used by the fast kernels)
never allocates per-event Python objects.

Traces from full convolutional layers would hold 10^8+ events; for those,
run the machine in ``counts`` mode, which skips event storage entirely but
keeps the statistics exact (see :class:`~repro.isa.machine.VectorMachine`).

Traces also **spill to disk**: :meth:`InstructionTrace.save` writes the
columns into an uncompressed ``.npz`` container and
:meth:`InstructionTrace.load` maps them back **zero-copy** — each column
becomes a read-only ``np.memmap`` over the stored ``.npy`` member's data
bytes, so multi-worker replay and repeated campaign runs share one page
cache instead of re-tracing or pickling traces through process pools.
The loaded trace is fully functional (columns, line streams, iteration,
even appends — the first mutation copies the columns into private
writable storage).
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, NamedTuple, Union

import numpy as np

from repro.errors import SimulationError

#: Row tags in the columnar ``kind`` column (public: the batched replay
#: engines in ``repro.simulator`` select rows by these).
KIND_VECTOR = 0
KIND_MEMORY = 1
KIND_SCALAR = 2
#: A row whose payload is an arbitrary Python object (events.append of
#: something emit() never produced — kept for API compatibility).
KIND_FOREIGN = 3

#: Legacy private aliases.
_KIND_VECTOR = KIND_VECTOR
_KIND_MEMORY = KIND_MEMORY
_KIND_SCALAR = KIND_SCALAR
_KIND_FOREIGN = KIND_FOREIGN

#: Initial capacity (rows) of the columnar storage.
_INITIAL_CAPACITY = 1024

#: Target cache-line-expansion chunk size (elements) for
#: :meth:`InstructionTrace.memory_line_stream` — bounds peak memory while
#: keeping each chunk big enough to amortize the NumPy call overhead.
_STREAM_CHUNK_ELEMS = 1 << 22

#: Trace spill container format version (bumped on layout changes).
_SPILL_VERSION = 1
#: Column members of the spill container, in storage order.
_SPILL_COLUMNS = ("kind", "op", "vl", "aux", "base", "stride", "store")
#: Index-tuple members (gather/scatter per-element offsets).
_SPILL_INDEX = ("idx_rows", "idx_lens", "idx_flat")


def _member_memmap(path: Path, info: zipfile.ZipInfo) -> np.ndarray:
    """Map one stored ``.npy`` zip member read-only, without copying.

    An uncompressed (``ZIP_STORED``) member's bytes sit verbatim in the
    archive, so the ``.npy`` payload can be memory-mapped directly at
    ``local header + npy header`` — the standard zero-copy trick for
    ``.npz`` containers.
    """
    with open(path, "rb") as fh:
        fh.seek(info.header_offset)
        local = fh.read(30)
        if len(local) < 30 or local[:4] != b"PK\x03\x04":
            raise SimulationError(
                f"{path}: corrupt zip local header for {info.filename!r}"
            )
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        fh.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:  # pragma: no cover - numpy only writes 1.0/2.0 today
            raise SimulationError(
                f"{path}: unsupported .npy format version {version} for "
                f"{info.filename!r}"
            )
        if dtype.hasobject:  # pragma: no cover - we never store objects
            raise SimulationError(
                f"{path}: refusing to map object-dtype member {info.filename!r}"
            )
        offset = fh.tell()
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path, mode="r", dtype=dtype, shape=shape, offset=offset,
        order="F" if fortran else "C",
    )


class TraceColumns(NamedTuple):
    """Read-only views of the trace's columnar storage (trimmed to length).

    ``vl`` holds the active element count for vector/memory rows and the
    instruction count for scalar rows; ``aux`` holds ``sew_bits`` for
    vector rows and ``elem_bytes`` for memory rows.
    """

    kind: np.ndarray
    op: np.ndarray
    vl: np.ndarray
    aux: np.ndarray
    base: np.ndarray
    stride: np.ndarray
    store: np.ndarray


class MemoryOpColumns(NamedTuple):
    """Per-memory-op columns (copies) for batched replay.

    ``rows`` are the trace row indices of the memory ops, in trace order;
    the remaining arrays are aligned with it.  ``indexed`` marks gather/
    scatter ops (their per-element offsets are irregular and come from the
    op's index tuple).
    """

    rows: np.ndarray
    vl: np.ndarray
    elem_bytes: np.ndarray
    base: np.ndarray
    stride: np.ndarray
    is_store: np.ndarray
    indexed: np.ndarray


@dataclass(frozen=True)
class VectorOp:
    """A non-memory vector instruction."""

    name: str  # e.g. "vfmacc", "vfadd", "vfmv" (broadcast), "vslide"
    vl: int  # active elements
    sew_bits: int


@dataclass(frozen=True)
class MemoryOp:
    """A vector memory instruction (unit-stride, strided or indexed)."""

    name: str  # "vle", "vse", "vlse", "vsse", "vluxei", "vsuxei"
    base: int  # starting byte address
    elem_bytes: int
    vl: int  # active elements
    stride: int  # byte stride between consecutive elements
    is_store: bool
    indices: tuple[int, ...] | None = None  # byte offsets for indexed ops

    def byte_span(self) -> int:
        """Total bytes spanned from first to one-past-last element."""
        if self.vl == 0:
            return 0
        if self.indices is not None:
            return max(self.indices) + self.elem_bytes - min(self.indices)
        return abs(self.stride) * (self.vl - 1) + self.elem_bytes

    def line_addresses(self, line_bytes: int) -> np.ndarray:
        """Distinct cache-line addresses touched, in access order (vectorized).

        Consecutive accesses to the same line are collapsed, exactly as
        :meth:`touched_lines` does, but computed with NumPy in one pass.
        """
        if self.vl == 0:
            return np.empty(0, dtype=np.int64)
        if self.indices is not None:
            offsets = np.asarray(self.indices, dtype=np.int64)
        else:
            offsets = self.stride * np.arange(self.vl, dtype=np.int64)
        lines = (self.base + offsets) // line_bytes * line_bytes
        if lines.size <= 1:
            return lines
        keep = np.empty(lines.size, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        return lines[keep]

    def touched_lines(self, line_bytes: int) -> Iterator[int]:
        """Yield the distinct cache-line addresses touched, in access order."""
        for line in self.line_addresses(line_bytes):
            yield int(line)


@dataclass(frozen=True)
class ScalarOp:
    """A batch of ``count`` scalar instructions (loop/address bookkeeping)."""

    name: str
    count: int


TraceEvent = Union[VectorOp, MemoryOp, ScalarOp]


@dataclass
class TraceStats:
    """Aggregate statistics over a trace."""

    vector_instrs: int = 0
    vector_elements: int = 0  # total active elements across vector instrs
    memory_instrs: int = 0
    memory_bytes: int = 0
    load_bytes: int = 0
    store_bytes: int = 0
    scalar_instrs: int = 0

    @property
    def total_instrs(self) -> int:
        return self.vector_instrs + self.memory_instrs + self.scalar_instrs

    def average_vl(self) -> float:
        """Mean active vector length over vector+memory instructions."""
        n = self.vector_instrs + self.memory_instrs
        return self.vector_elements / n if n else 0.0


class _EventsView:
    """List-like view over a trace's events (decodes rows on access).

    Supports the subset of the old ``list[TraceEvent]`` API that consumers
    used: ``len``, iteration, indexing, and ``append`` (which stores the
    object verbatim, bypassing statistics — matching the old behaviour of
    appending directly to the event list).
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "InstructionTrace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return self._trace._n

    def __iter__(self) -> Iterator[TraceEvent]:
        trace = self._trace
        for i in range(trace._n):
            yield trace._decode(i)

    def __getitem__(self, i):
        trace = self._trace
        if isinstance(i, slice):
            return [trace._decode(j) for j in range(*i.indices(trace._n))]
        n = trace._n
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("trace event index out of range")
        return trace._decode(i)

    def append(self, event) -> None:
        """Store an arbitrary object as an event row (no stats update)."""
        trace = self._trace
        row = trace._rows(1)
        trace._kind[row] = _KIND_FOREIGN
        trace._foreign[row] = event

    def clear(self) -> None:
        self._trace.clear()


class InstructionTrace:
    """An append-only event sequence with columnar storage and statistics.

    ``mode`` selects what is retained:

    * ``"full"`` — every event is recorded (columnar) and can be iterated
      for trace-driven cache/timing simulation;
    * ``"counts"`` — events are *not* stored; only the running
      :class:`TraceStats` are maintained (exactly — batched emits update
      them arithmetically).  This is the fast path for full-size layers.

    ``enabled`` is the legacy boolean spelling (``True`` → full, ``False``
    → counts) and is kept as a readable attribute.
    """

    def __init__(self, enabled: bool = True, mode: str | None = None) -> None:
        if mode is None:
            mode = "full" if enabled else "counts"
        if mode not in ("full", "counts"):
            raise ValueError(f"trace mode must be 'full' or 'counts', got {mode!r}")
        self.mode = mode
        self.enabled = mode == "full"
        self.stats = TraceStats()
        # interned opcode names (shared direction dicts)
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        self._alloc(_INITIAL_CAPACITY)
        self._n = 0
        self._indices: dict[int, tuple[int, ...]] = {}
        self._foreign: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # columnar storage
    # ------------------------------------------------------------------ #
    def _alloc(self, capacity: int) -> None:
        self._capacity = capacity
        self._kind = np.empty(capacity, dtype=np.uint8)
        self._op = np.empty(capacity, dtype=np.uint32)
        # vl for vector/memory rows, count for scalar rows
        self._vl = np.empty(capacity, dtype=np.int64)
        # sew_bits for vector rows, elem_bytes for memory rows
        self._aux = np.empty(capacity, dtype=np.int64)
        self._base = np.empty(capacity, dtype=np.int64)
        self._stride = np.empty(capacity, dtype=np.int64)
        self._store = np.empty(capacity, dtype=bool)

    def _grow(self, needed: int) -> None:
        new_cap = self._capacity or _INITIAL_CAPACITY
        while new_cap < needed:
            new_cap *= 2
        for col in ("_kind", "_op", "_vl", "_aux", "_base", "_stride", "_store"):
            old = getattr(self, col)
            grown = np.empty(new_cap, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, col, grown)
        self._capacity = new_cap

    def _rows(self, count: int) -> int:
        """Reserve ``count`` rows; returns the first row index.

        A trace loaded zero-copy from disk holds read-only memmapped
        columns; the first append copies them into private writable
        storage (``_grow`` reallocates even when capacity suffices).
        """
        row = self._n
        if row + count > self._capacity or not self._kind.flags.writeable:
            self._grow(row + count)
        self._n = row + count
        return row

    def _intern(self, name: str) -> int:
        op_id = self._name_to_id.get(name)
        if op_id is None:
            op_id = len(self._id_to_name)
            self._name_to_id[name] = op_id
            self._id_to_name.append(name)
        return op_id

    def _decode(self, i: int) -> TraceEvent:
        kind = self._kind[i]
        if kind == _KIND_VECTOR:
            return VectorOp(
                self._id_to_name[self._op[i]], int(self._vl[i]), int(self._aux[i])
            )
        if kind == _KIND_MEMORY:
            return MemoryOp(
                self._id_to_name[self._op[i]],
                int(self._base[i]),
                int(self._aux[i]),
                int(self._vl[i]),
                int(self._stride[i]),
                bool(self._store[i]),
                self._indices.get(i),
            )
        if kind == _KIND_SCALAR:
            return ScalarOp(self._id_to_name[self._op[i]], int(self._vl[i]))
        return self._foreign[i]  # _KIND_FOREIGN

    @property
    def events(self) -> _EventsView:
        """List-like view of the recorded events (decoded on access)."""
        return _EventsView(self)

    @property
    def has_foreign_events(self) -> bool:
        """True if ``events.append`` stored objects ``emit`` never produced.

        Such rows carry arbitrary payloads, so the batched replay engines
        fall back to per-event decoding when any are present.
        """
        return bool(self._foreign)

    # ------------------------------------------------------------------ #
    # columnar read access (the batched replay path)
    # ------------------------------------------------------------------ #
    def columns(self) -> TraceColumns:
        """Read-only views of the raw columns, trimmed to the event count.

        The views alias the trace's storage (zero copy) but are marked
        non-writeable; appending to the trace may reallocate the storage,
        so re-fetch after emitting.
        """
        views = []
        for col in (
            self._kind, self._op, self._vl, self._aux,
            self._base, self._stride, self._store,
        ):
            view = col[: self._n]
            view.flags.writeable = False
            views.append(view)
        return TraceColumns(*views)

    def memory_columns(self) -> MemoryOpColumns:
        """Per-op columns of every memory row, in trace order (copies)."""
        rows = np.nonzero(self._kind[: self._n] == KIND_MEMORY)[0]
        indexed = np.zeros(rows.size, dtype=bool)
        if self._indices and rows.size:
            idx_rows = np.fromiter(self._indices.keys(), dtype=np.int64)
            idx_rows = idx_rows[idx_rows < self._n]
            pos = np.searchsorted(rows, idx_rows)
            ok = pos < rows.size
            ok[ok] = rows[pos[ok]] == idx_rows[ok]
            indexed[pos[ok]] = True
        return MemoryOpColumns(
            rows,
            self._vl[rows],
            self._aux[rows],
            self._base[rows],
            self._stride[rows],
            self._store[rows],
            indexed,
        )

    def memory_line_stream(
        self, line_bytes: int, rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Expand memory ops to one cache-line stream with op markers.

        Returns ``(lines, op_ids)``: ``lines`` is the concatenation of
        :meth:`MemoryOp.line_addresses` over the selected memory rows in
        trace order, and ``op_ids[k]`` is the ordinal (0..M-1, position
        within ``rows``) of the op that access ``k`` belongs to.  The
        expansion is exact — consecutive same-line accesses collapse
        *within* each op, never across op boundaries — and is chunked so
        peak memory stays bounded for 10^8-element traces.
        """
        if rows is None:
            rows = np.nonzero(self._kind[: self._n] == KIND_MEMORY)[0]
        m = rows.size
        empty = np.empty(0, dtype=np.int64)
        if m == 0:
            return empty, empty
        vl = self._vl[rows]
        base = self._base[rows]
        stride = self._stride[rows]
        # per-op expansion lengths: ``vl`` elements, except indexed ops use
        # their full index tuple (as MemoryOp.line_addresses does) and
        # vl == 0 ops expand to nothing either way
        counts = np.where(vl > 0, vl, 0)
        indexed: dict[int, np.ndarray] = {}
        if self._indices:
            for row, offsets in self._indices.items():
                if row >= self._n:
                    continue
                p = int(np.searchsorted(rows, row))
                if p < m and rows[p] == row and vl[p] > 0:
                    offs = np.asarray(offsets, dtype=np.int64)
                    counts[p] = offs.size
                    indexed[p] = offs
        cum = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=cum[1:])
        if cum[-1] == 0:
            return empty, empty
        out_lines: list[np.ndarray] = []
        out_ops: list[np.ndarray] = []
        start = 0
        while start < m:
            stop = int(
                np.searchsorted(
                    cum, cum[start] + _STREAM_CHUNK_ELEMS, side="right"
                )
            ) - 1
            stop = min(max(stop, start + 1), m)
            total = int(cum[stop] - cum[start])
            if total == 0:
                start = stop
                continue
            chunk_counts = counts[start:stop]
            op_of = np.repeat(
                np.arange(start, stop, dtype=np.int64), chunk_counts
            )
            local_start = np.repeat(cum[start:stop] - cum[start], chunk_counts)
            j = np.arange(total, dtype=np.int64) - local_start
            offs = stride[op_of] * j
            for p, poffs in indexed.items():
                if start <= p < stop:
                    lo = int(cum[p] - cum[start])
                    offs[lo : lo + poffs.size] = poffs
            lines = (base[op_of] + offs) // line_bytes * line_bytes
            keep = j == 0  # op starts always survive the collapse
            np.logical_or(keep[1:], lines[1:] != lines[:-1], out=keep[1:])
            out_lines.append(lines[keep])
            out_ops.append(op_of[keep])
            start = stop
        return np.concatenate(out_lines), np.concatenate(out_ops)

    # ------------------------------------------------------------------ #
    # per-event emission (dataclass API, kept for compatibility)
    # ------------------------------------------------------------------ #
    def emit(self, event: TraceEvent) -> None:
        """Record one event (statistics update even if event storage is off)."""
        if isinstance(event, VectorOp):
            self.emit_vector(event.name, event.vl, event.sew_bits)
        elif isinstance(event, MemoryOp):
            self.emit_memory(
                event.name,
                event.base,
                event.elem_bytes,
                event.vl,
                event.stride,
                event.is_store,
                event.indices,
            )
        elif isinstance(event, ScalarOp):
            self.emit_scalar(event.name, event.count)
        else:
            raise TypeError(f"unknown trace event {event!r}")

    # ------------------------------------------------------------------ #
    # batched columnar emission (the fast path)
    # ------------------------------------------------------------------ #
    def emit_vector(
        self, name: str, vl: int, sew_bits: int, count: int = 1
    ) -> None:
        """Record ``count`` identical vector instructions of ``vl`` elements."""
        stats = self.stats
        stats.vector_instrs += count
        stats.vector_elements += count * vl
        if self.mode != "full" or count == 0:
            return
        row = self._rows(count)
        end = row + count
        self._kind[row:end] = _KIND_VECTOR
        self._op[row:end] = self._intern(name)
        self._vl[row:end] = vl
        self._aux[row:end] = sew_bits

    def emit_scalar(self, name: str, count: int = 1) -> None:
        """Record one ScalarOp event accounting ``count`` instructions."""
        self.stats.scalar_instrs += count
        if self.mode != "full":
            return
        row = self._rows(1)
        self._kind[row] = _KIND_SCALAR
        self._op[row] = self._intern(name)
        self._vl[row] = count

    def emit_memory(
        self,
        name: str,
        base: int,
        elem_bytes: int,
        vl: int,
        stride: int,
        is_store: bool,
        indices: tuple[int, ...] | None = None,
    ) -> None:
        """Record one vector memory instruction."""
        stats = self.stats
        stats.memory_instrs += 1
        stats.vector_elements += vl
        nbytes = vl * elem_bytes
        stats.memory_bytes += nbytes
        if is_store:
            stats.store_bytes += nbytes
        else:
            stats.load_bytes += nbytes
        if self.mode != "full":
            return
        row = self._rows(1)
        self._kind[row] = _KIND_MEMORY
        self._op[row] = self._intern(name)
        self._vl[row] = vl
        self._aux[row] = elem_bytes
        self._base[row] = base
        self._stride[row] = stride
        self._store[row] = is_store
        if indices is not None:
            self._indices[row] = tuple(indices)

    def emit_memory_rows(
        self,
        name,
        bases,
        elem_bytes: int,
        vl,
        stride,
        is_store,
    ) -> None:
        """Record a *sequence* of memory instructions in one call.

        ``bases`` is an array of byte addresses; ``name``, ``vl``, ``stride``
        and ``is_store`` may each be a scalar (applied to every row) or an
        array of the same length (per-row values — this is how interleaved
        load/store streams are emitted while preserving the exact address
        order the per-op path would produce).  Indexed ops are not batchable
        (their per-element offsets are irregular); use :meth:`emit_memory`.
        """
        bases = np.asarray(bases, dtype=np.int64)
        count = bases.size
        if count == 0:
            return
        stats = self.stats
        stats.memory_instrs += count
        if isinstance(vl, (int, np.integer)) and isinstance(is_store, bool):
            # uniform rows: O(1) statistics arithmetic
            vl_arr: np.ndarray | int = vl
            store_arr: np.ndarray | bool = is_store
            total_elems = count * int(vl)
            store_elems = total_elems if is_store else 0
        else:
            vl_arr = np.broadcast_to(np.asarray(vl, dtype=np.int64), (count,))
            store_arr = np.broadcast_to(np.asarray(is_store, dtype=bool), (count,))
            total_elems = int(vl_arr.sum())
            store_elems = int(vl_arr[store_arr].sum())
        stats.vector_elements += total_elems
        stats.memory_bytes += total_elems * elem_bytes
        stats.store_bytes += store_elems * elem_bytes
        stats.load_bytes += (total_elems - store_elems) * elem_bytes
        if self.mode != "full":
            return
        row = self._rows(count)
        end = row + count
        self._kind[row:end] = _KIND_MEMORY
        if isinstance(name, str):
            self._op[row:end] = self._intern(name)
        else:
            self._op[row:end] = [self._intern(n) for n in name]
        self._vl[row:end] = vl_arr
        self._aux[row:end] = elem_bytes
        self._base[row:end] = bases
        self._stride[row:end] = stride
        self._store[row:end] = store_arr

    # ------------------------------------------------------------------ #
    # zero-copy spill: save to / load from an .npz container
    # ------------------------------------------------------------------ #
    def save(self, path: "str | Path") -> Path:
        """Spill the trace to an uncompressed ``.npz`` container.

        The columns are stored as plain ``.npy`` members (``ZIP_STORED``,
        so :meth:`load` can map them zero-copy), with opcode names,
        statistics, mode and gather/scatter index tuples in a
        ``meta.json`` member.  Foreign events carry arbitrary Python
        payloads and are refused.  Returns the written path (``.npz``
        appended when missing).
        """
        if self._foreign:
            raise SimulationError(
                "traces with foreign events (events.append of non-emit "
                "payloads) cannot be spilled to disk"
            )
        path = Path(path)
        if path.suffix != ".npz":
            path = Path(str(path) + ".npz")
        n = self._n
        indices = sorted(self._indices.items())
        meta = {
            "format_version": _SPILL_VERSION,
            "mode": self.mode,
            "events": n,
            "op_names": list(self._id_to_name),
            "stats": {
                "vector_instrs": self.stats.vector_instrs,
                "vector_elements": self.stats.vector_elements,
                "memory_instrs": self.stats.memory_instrs,
                "memory_bytes": self.stats.memory_bytes,
                "load_bytes": self.stats.load_bytes,
                "store_bytes": self.stats.store_bytes,
                "scalar_instrs": self.stats.scalar_instrs,
            },
        }
        arrays: dict[str, np.ndarray] = {
            name: getattr(self, f"_{name}")[:n] for name in _SPILL_COLUMNS
        }
        arrays["idx_rows"] = np.array([r for r, _ in indices], dtype=np.int64)
        arrays["idx_lens"] = np.array(
            [len(offs) for _, offs in indices], dtype=np.int64
        )
        arrays["idx_flat"] = (
            np.concatenate(
                [np.asarray(offs, dtype=np.int64) for _, offs in indices]
            )
            if indices
            else np.empty(0, dtype=np.int64)
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as zf:
            zf.writestr("meta.json", json.dumps(meta, sort_keys=True))
            for name, arr in arrays.items():
                with zf.open(f"{name}.npy", "w") as member:
                    np.lib.format.write_array(
                        member,
                        np.ascontiguousarray(arr),
                        allow_pickle=False,
                    )
        return path

    @classmethod
    def load(cls, path: "str | Path", mmap: bool = True) -> "InstructionTrace":
        """Reopen a spilled trace; ``mmap=True`` maps columns zero-copy.

        Memmapped columns are read-only — every read path (iteration,
        :meth:`columns`, :meth:`memory_line_stream`, batched replay)
        works unchanged, and the first append transparently copies the
        columns into private writable storage.  ``mmap=False`` reads
        plain in-memory copies instead.
        """
        path = Path(path)
        try:
            zf = zipfile.ZipFile(path)
        except (zipfile.BadZipFile, OSError) as exc:
            raise SimulationError(
                f"{path}: not a readable trace container ({exc})"
            ) from exc
        with zf:
            infos = {info.filename: info for info in zf.infolist()}
            missing = sorted(
                {"meta.json", *(f"{c}.npy" for c in _SPILL_COLUMNS)}
                - set(infos)
            )
            if missing:
                raise SimulationError(
                    f"{path}: not a trace spill container (missing members: "
                    f"{', '.join(missing)})"
                )
            meta = json.loads(zf.read("meta.json").decode("utf-8"))
            version = meta.get("format_version")
            if version != _SPILL_VERSION:
                raise SimulationError(
                    f"{path}: unsupported trace container version {version!r} "
                    f"(this build reads version {_SPILL_VERSION})"
                )

            def read(name: str) -> np.ndarray:
                info = infos[f"{name}.npy"]
                if mmap and info.compress_type == zipfile.ZIP_STORED:
                    return _member_memmap(path, info)
                with zf.open(info) as member:
                    return np.lib.format.read_array(member, allow_pickle=False)

            columns = {name: read(name) for name in _SPILL_COLUMNS}
            idx_rows, idx_lens, idx_flat = (
                np.asarray(read(name)) for name in _SPILL_INDEX
            )

        trace = cls(mode=meta["mode"])
        n = int(meta["events"])
        for name in _SPILL_COLUMNS:
            col = columns[name]
            if col.shape != (n,):
                raise SimulationError(
                    f"{path}: column {name!r} has {col.shape[0]} rows, "
                    f"expected {n}"
                )
            setattr(trace, f"_{name}", col)
        trace._capacity = n
        trace._n = n
        trace.stats = TraceStats(**meta["stats"])
        trace._id_to_name = list(meta["op_names"])
        trace._name_to_id = {
            name: i for i, name in enumerate(trace._id_to_name)
        }
        splits = np.cumsum(idx_lens)[:-1] if idx_lens.size else []
        for row, offs in zip(idx_rows, np.split(idx_flat, splits)):
            trace._indices[int(row)] = tuple(int(v) for v in offs)
        return trace

    # ------------------------------------------------------------------ #
    # sequence API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self._n = 0
        self._indices.clear()
        self._foreign.clear()
        self.stats = TraceStats()
