"""Instruction traces emitted by the functional vector machine.

A trace is an ordered sequence of lightweight event records:

* :class:`VectorOp` — an arithmetic/permute vector instruction with its
  active element count (so the timing model can compute chimes and lane
  utilization);
* :class:`MemoryOp` — a vector load/store described compactly as
  ``(base address, element bytes, element count, stride)`` — the cache
  simulator expands this to cache-line touches without storing per-element
  addresses;
* :class:`ScalarOp` — a batch of scalar bookkeeping instructions (address
  arithmetic, loop control), recorded in bulk.

Storage is *columnar* (structure-of-arrays): instead of one Python object
per event, the trace keeps preallocated, geometrically grown NumPy columns
for the event kind, interned opcode id, vector length, element width, base
address, stride and store flag.  The dataclasses above remain the public
per-event view — iteration decodes rows back into them on demand — so the
cache and timing simulators consume traces unchanged, while the emit path
(including the batched ``emit_*`` entry points used by the fast kernels)
never allocates per-event Python objects.

Traces from full convolutional layers would hold 10^8+ events; for those,
run the machine in ``counts`` mode, which skips event storage entirely but
keeps the statistics exact (see :class:`~repro.isa.machine.VectorMachine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple, Union

import numpy as np

#: Row tags in the columnar ``kind`` column (public: the batched replay
#: engines in ``repro.simulator`` select rows by these).
KIND_VECTOR = 0
KIND_MEMORY = 1
KIND_SCALAR = 2
#: A row whose payload is an arbitrary Python object (events.append of
#: something emit() never produced — kept for API compatibility).
KIND_FOREIGN = 3

#: Legacy private aliases.
_KIND_VECTOR = KIND_VECTOR
_KIND_MEMORY = KIND_MEMORY
_KIND_SCALAR = KIND_SCALAR
_KIND_FOREIGN = KIND_FOREIGN

#: Initial capacity (rows) of the columnar storage.
_INITIAL_CAPACITY = 1024

#: Target cache-line-expansion chunk size (elements) for
#: :meth:`InstructionTrace.memory_line_stream` — bounds peak memory while
#: keeping each chunk big enough to amortize the NumPy call overhead.
_STREAM_CHUNK_ELEMS = 1 << 22


class TraceColumns(NamedTuple):
    """Read-only views of the trace's columnar storage (trimmed to length).

    ``vl`` holds the active element count for vector/memory rows and the
    instruction count for scalar rows; ``aux`` holds ``sew_bits`` for
    vector rows and ``elem_bytes`` for memory rows.
    """

    kind: np.ndarray
    op: np.ndarray
    vl: np.ndarray
    aux: np.ndarray
    base: np.ndarray
    stride: np.ndarray
    store: np.ndarray


class MemoryOpColumns(NamedTuple):
    """Per-memory-op columns (copies) for batched replay.

    ``rows`` are the trace row indices of the memory ops, in trace order;
    the remaining arrays are aligned with it.  ``indexed`` marks gather/
    scatter ops (their per-element offsets are irregular and come from the
    op's index tuple).
    """

    rows: np.ndarray
    vl: np.ndarray
    elem_bytes: np.ndarray
    base: np.ndarray
    stride: np.ndarray
    is_store: np.ndarray
    indexed: np.ndarray


@dataclass(frozen=True)
class VectorOp:
    """A non-memory vector instruction."""

    name: str  # e.g. "vfmacc", "vfadd", "vfmv" (broadcast), "vslide"
    vl: int  # active elements
    sew_bits: int


@dataclass(frozen=True)
class MemoryOp:
    """A vector memory instruction (unit-stride, strided or indexed)."""

    name: str  # "vle", "vse", "vlse", "vsse", "vluxei", "vsuxei"
    base: int  # starting byte address
    elem_bytes: int
    vl: int  # active elements
    stride: int  # byte stride between consecutive elements
    is_store: bool
    indices: tuple[int, ...] | None = None  # byte offsets for indexed ops

    def byte_span(self) -> int:
        """Total bytes spanned from first to one-past-last element."""
        if self.vl == 0:
            return 0
        if self.indices is not None:
            return max(self.indices) + self.elem_bytes - min(self.indices)
        return abs(self.stride) * (self.vl - 1) + self.elem_bytes

    def line_addresses(self, line_bytes: int) -> np.ndarray:
        """Distinct cache-line addresses touched, in access order (vectorized).

        Consecutive accesses to the same line are collapsed, exactly as
        :meth:`touched_lines` does, but computed with NumPy in one pass.
        """
        if self.vl == 0:
            return np.empty(0, dtype=np.int64)
        if self.indices is not None:
            offsets = np.asarray(self.indices, dtype=np.int64)
        else:
            offsets = self.stride * np.arange(self.vl, dtype=np.int64)
        lines = (self.base + offsets) // line_bytes * line_bytes
        if lines.size <= 1:
            return lines
        keep = np.empty(lines.size, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        return lines[keep]

    def touched_lines(self, line_bytes: int) -> Iterator[int]:
        """Yield the distinct cache-line addresses touched, in access order."""
        for line in self.line_addresses(line_bytes):
            yield int(line)


@dataclass(frozen=True)
class ScalarOp:
    """A batch of ``count`` scalar instructions (loop/address bookkeeping)."""

    name: str
    count: int


TraceEvent = Union[VectorOp, MemoryOp, ScalarOp]


@dataclass
class TraceStats:
    """Aggregate statistics over a trace."""

    vector_instrs: int = 0
    vector_elements: int = 0  # total active elements across vector instrs
    memory_instrs: int = 0
    memory_bytes: int = 0
    load_bytes: int = 0
    store_bytes: int = 0
    scalar_instrs: int = 0

    @property
    def total_instrs(self) -> int:
        return self.vector_instrs + self.memory_instrs + self.scalar_instrs

    def average_vl(self) -> float:
        """Mean active vector length over vector+memory instructions."""
        n = self.vector_instrs + self.memory_instrs
        return self.vector_elements / n if n else 0.0


class _EventsView:
    """List-like view over a trace's events (decodes rows on access).

    Supports the subset of the old ``list[TraceEvent]`` API that consumers
    used: ``len``, iteration, indexing, and ``append`` (which stores the
    object verbatim, bypassing statistics — matching the old behaviour of
    appending directly to the event list).
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "InstructionTrace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return self._trace._n

    def __iter__(self) -> Iterator[TraceEvent]:
        trace = self._trace
        for i in range(trace._n):
            yield trace._decode(i)

    def __getitem__(self, i):
        trace = self._trace
        if isinstance(i, slice):
            return [trace._decode(j) for j in range(*i.indices(trace._n))]
        n = trace._n
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("trace event index out of range")
        return trace._decode(i)

    def append(self, event) -> None:
        """Store an arbitrary object as an event row (no stats update)."""
        trace = self._trace
        row = trace._rows(1)
        trace._kind[row] = _KIND_FOREIGN
        trace._foreign[row] = event

    def clear(self) -> None:
        self._trace.clear()


class InstructionTrace:
    """An append-only event sequence with columnar storage and statistics.

    ``mode`` selects what is retained:

    * ``"full"`` — every event is recorded (columnar) and can be iterated
      for trace-driven cache/timing simulation;
    * ``"counts"`` — events are *not* stored; only the running
      :class:`TraceStats` are maintained (exactly — batched emits update
      them arithmetically).  This is the fast path for full-size layers.

    ``enabled`` is the legacy boolean spelling (``True`` → full, ``False``
    → counts) and is kept as a readable attribute.
    """

    def __init__(self, enabled: bool = True, mode: str | None = None) -> None:
        if mode is None:
            mode = "full" if enabled else "counts"
        if mode not in ("full", "counts"):
            raise ValueError(f"trace mode must be 'full' or 'counts', got {mode!r}")
        self.mode = mode
        self.enabled = mode == "full"
        self.stats = TraceStats()
        # interned opcode names (shared direction dicts)
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []
        self._alloc(_INITIAL_CAPACITY)
        self._n = 0
        self._indices: dict[int, tuple[int, ...]] = {}
        self._foreign: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # columnar storage
    # ------------------------------------------------------------------ #
    def _alloc(self, capacity: int) -> None:
        self._capacity = capacity
        self._kind = np.empty(capacity, dtype=np.uint8)
        self._op = np.empty(capacity, dtype=np.uint32)
        # vl for vector/memory rows, count for scalar rows
        self._vl = np.empty(capacity, dtype=np.int64)
        # sew_bits for vector rows, elem_bytes for memory rows
        self._aux = np.empty(capacity, dtype=np.int64)
        self._base = np.empty(capacity, dtype=np.int64)
        self._stride = np.empty(capacity, dtype=np.int64)
        self._store = np.empty(capacity, dtype=bool)

    def _grow(self, needed: int) -> None:
        new_cap = self._capacity
        while new_cap < needed:
            new_cap *= 2
        for col in ("_kind", "_op", "_vl", "_aux", "_base", "_stride", "_store"):
            old = getattr(self, col)
            grown = np.empty(new_cap, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, col, grown)
        self._capacity = new_cap

    def _rows(self, count: int) -> int:
        """Reserve ``count`` rows; returns the first row index."""
        row = self._n
        if row + count > self._capacity:
            self._grow(row + count)
        self._n = row + count
        return row

    def _intern(self, name: str) -> int:
        op_id = self._name_to_id.get(name)
        if op_id is None:
            op_id = len(self._id_to_name)
            self._name_to_id[name] = op_id
            self._id_to_name.append(name)
        return op_id

    def _decode(self, i: int) -> TraceEvent:
        kind = self._kind[i]
        if kind == _KIND_VECTOR:
            return VectorOp(
                self._id_to_name[self._op[i]], int(self._vl[i]), int(self._aux[i])
            )
        if kind == _KIND_MEMORY:
            return MemoryOp(
                self._id_to_name[self._op[i]],
                int(self._base[i]),
                int(self._aux[i]),
                int(self._vl[i]),
                int(self._stride[i]),
                bool(self._store[i]),
                self._indices.get(i),
            )
        if kind == _KIND_SCALAR:
            return ScalarOp(self._id_to_name[self._op[i]], int(self._vl[i]))
        return self._foreign[i]  # _KIND_FOREIGN

    @property
    def events(self) -> _EventsView:
        """List-like view of the recorded events (decoded on access)."""
        return _EventsView(self)

    @property
    def has_foreign_events(self) -> bool:
        """True if ``events.append`` stored objects ``emit`` never produced.

        Such rows carry arbitrary payloads, so the batched replay engines
        fall back to per-event decoding when any are present.
        """
        return bool(self._foreign)

    # ------------------------------------------------------------------ #
    # columnar read access (the batched replay path)
    # ------------------------------------------------------------------ #
    def columns(self) -> TraceColumns:
        """Read-only views of the raw columns, trimmed to the event count.

        The views alias the trace's storage (zero copy) but are marked
        non-writeable; appending to the trace may reallocate the storage,
        so re-fetch after emitting.
        """
        views = []
        for col in (
            self._kind, self._op, self._vl, self._aux,
            self._base, self._stride, self._store,
        ):
            view = col[: self._n]
            view.flags.writeable = False
            views.append(view)
        return TraceColumns(*views)

    def memory_columns(self) -> MemoryOpColumns:
        """Per-op columns of every memory row, in trace order (copies)."""
        rows = np.nonzero(self._kind[: self._n] == KIND_MEMORY)[0]
        indexed = np.zeros(rows.size, dtype=bool)
        if self._indices and rows.size:
            idx_rows = np.fromiter(self._indices.keys(), dtype=np.int64)
            idx_rows = idx_rows[idx_rows < self._n]
            pos = np.searchsorted(rows, idx_rows)
            ok = pos < rows.size
            ok[ok] = rows[pos[ok]] == idx_rows[ok]
            indexed[pos[ok]] = True
        return MemoryOpColumns(
            rows,
            self._vl[rows],
            self._aux[rows],
            self._base[rows],
            self._stride[rows],
            self._store[rows],
            indexed,
        )

    def memory_line_stream(
        self, line_bytes: int, rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Expand memory ops to one cache-line stream with op markers.

        Returns ``(lines, op_ids)``: ``lines`` is the concatenation of
        :meth:`MemoryOp.line_addresses` over the selected memory rows in
        trace order, and ``op_ids[k]`` is the ordinal (0..M-1, position
        within ``rows``) of the op that access ``k`` belongs to.  The
        expansion is exact — consecutive same-line accesses collapse
        *within* each op, never across op boundaries — and is chunked so
        peak memory stays bounded for 10^8-element traces.
        """
        if rows is None:
            rows = np.nonzero(self._kind[: self._n] == KIND_MEMORY)[0]
        m = rows.size
        empty = np.empty(0, dtype=np.int64)
        if m == 0:
            return empty, empty
        vl = self._vl[rows]
        base = self._base[rows]
        stride = self._stride[rows]
        # per-op expansion lengths: ``vl`` elements, except indexed ops use
        # their full index tuple (as MemoryOp.line_addresses does) and
        # vl == 0 ops expand to nothing either way
        counts = np.where(vl > 0, vl, 0)
        indexed: dict[int, np.ndarray] = {}
        if self._indices:
            for row, offsets in self._indices.items():
                if row >= self._n:
                    continue
                p = int(np.searchsorted(rows, row))
                if p < m and rows[p] == row and vl[p] > 0:
                    offs = np.asarray(offsets, dtype=np.int64)
                    counts[p] = offs.size
                    indexed[p] = offs
        cum = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=cum[1:])
        if cum[-1] == 0:
            return empty, empty
        out_lines: list[np.ndarray] = []
        out_ops: list[np.ndarray] = []
        start = 0
        while start < m:
            stop = int(
                np.searchsorted(
                    cum, cum[start] + _STREAM_CHUNK_ELEMS, side="right"
                )
            ) - 1
            stop = min(max(stop, start + 1), m)
            total = int(cum[stop] - cum[start])
            if total == 0:
                start = stop
                continue
            chunk_counts = counts[start:stop]
            op_of = np.repeat(
                np.arange(start, stop, dtype=np.int64), chunk_counts
            )
            local_start = np.repeat(cum[start:stop] - cum[start], chunk_counts)
            j = np.arange(total, dtype=np.int64) - local_start
            offs = stride[op_of] * j
            for p, poffs in indexed.items():
                if start <= p < stop:
                    lo = int(cum[p] - cum[start])
                    offs[lo : lo + poffs.size] = poffs
            lines = (base[op_of] + offs) // line_bytes * line_bytes
            keep = j == 0  # op starts always survive the collapse
            np.logical_or(keep[1:], lines[1:] != lines[:-1], out=keep[1:])
            out_lines.append(lines[keep])
            out_ops.append(op_of[keep])
            start = stop
        return np.concatenate(out_lines), np.concatenate(out_ops)

    # ------------------------------------------------------------------ #
    # per-event emission (dataclass API, kept for compatibility)
    # ------------------------------------------------------------------ #
    def emit(self, event: TraceEvent) -> None:
        """Record one event (statistics update even if event storage is off)."""
        if isinstance(event, VectorOp):
            self.emit_vector(event.name, event.vl, event.sew_bits)
        elif isinstance(event, MemoryOp):
            self.emit_memory(
                event.name,
                event.base,
                event.elem_bytes,
                event.vl,
                event.stride,
                event.is_store,
                event.indices,
            )
        elif isinstance(event, ScalarOp):
            self.emit_scalar(event.name, event.count)
        else:
            raise TypeError(f"unknown trace event {event!r}")

    # ------------------------------------------------------------------ #
    # batched columnar emission (the fast path)
    # ------------------------------------------------------------------ #
    def emit_vector(
        self, name: str, vl: int, sew_bits: int, count: int = 1
    ) -> None:
        """Record ``count`` identical vector instructions of ``vl`` elements."""
        stats = self.stats
        stats.vector_instrs += count
        stats.vector_elements += count * vl
        if self.mode != "full" or count == 0:
            return
        row = self._rows(count)
        end = row + count
        self._kind[row:end] = _KIND_VECTOR
        self._op[row:end] = self._intern(name)
        self._vl[row:end] = vl
        self._aux[row:end] = sew_bits

    def emit_scalar(self, name: str, count: int = 1) -> None:
        """Record one ScalarOp event accounting ``count`` instructions."""
        self.stats.scalar_instrs += count
        if self.mode != "full":
            return
        row = self._rows(1)
        self._kind[row] = _KIND_SCALAR
        self._op[row] = self._intern(name)
        self._vl[row] = count

    def emit_memory(
        self,
        name: str,
        base: int,
        elem_bytes: int,
        vl: int,
        stride: int,
        is_store: bool,
        indices: tuple[int, ...] | None = None,
    ) -> None:
        """Record one vector memory instruction."""
        stats = self.stats
        stats.memory_instrs += 1
        stats.vector_elements += vl
        nbytes = vl * elem_bytes
        stats.memory_bytes += nbytes
        if is_store:
            stats.store_bytes += nbytes
        else:
            stats.load_bytes += nbytes
        if self.mode != "full":
            return
        row = self._rows(1)
        self._kind[row] = _KIND_MEMORY
        self._op[row] = self._intern(name)
        self._vl[row] = vl
        self._aux[row] = elem_bytes
        self._base[row] = base
        self._stride[row] = stride
        self._store[row] = is_store
        if indices is not None:
            self._indices[row] = tuple(indices)

    def emit_memory_rows(
        self,
        name,
        bases,
        elem_bytes: int,
        vl,
        stride,
        is_store,
    ) -> None:
        """Record a *sequence* of memory instructions in one call.

        ``bases`` is an array of byte addresses; ``name``, ``vl``, ``stride``
        and ``is_store`` may each be a scalar (applied to every row) or an
        array of the same length (per-row values — this is how interleaved
        load/store streams are emitted while preserving the exact address
        order the per-op path would produce).  Indexed ops are not batchable
        (their per-element offsets are irregular); use :meth:`emit_memory`.
        """
        bases = np.asarray(bases, dtype=np.int64)
        count = bases.size
        if count == 0:
            return
        stats = self.stats
        stats.memory_instrs += count
        if isinstance(vl, (int, np.integer)) and isinstance(is_store, bool):
            # uniform rows: O(1) statistics arithmetic
            vl_arr: np.ndarray | int = vl
            store_arr: np.ndarray | bool = is_store
            total_elems = count * int(vl)
            store_elems = total_elems if is_store else 0
        else:
            vl_arr = np.broadcast_to(np.asarray(vl, dtype=np.int64), (count,))
            store_arr = np.broadcast_to(np.asarray(is_store, dtype=bool), (count,))
            total_elems = int(vl_arr.sum())
            store_elems = int(vl_arr[store_arr].sum())
        stats.vector_elements += total_elems
        stats.memory_bytes += total_elems * elem_bytes
        stats.store_bytes += store_elems * elem_bytes
        stats.load_bytes += (total_elems - store_elems) * elem_bytes
        if self.mode != "full":
            return
        row = self._rows(count)
        end = row + count
        self._kind[row:end] = _KIND_MEMORY
        if isinstance(name, str):
            self._op[row:end] = self._intern(name)
        else:
            self._op[row:end] = [self._intern(n) for n in name]
        self._vl[row:end] = vl_arr
        self._aux[row:end] = elem_bytes
        self._base[row:end] = bases
        self._stride[row:end] = stride
        self._store[row:end] = store_arr

    # ------------------------------------------------------------------ #
    # sequence API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self._n = 0
        self._indices.clear()
        self._foreign.clear()
        self.stats = TraceStats()
