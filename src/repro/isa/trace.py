"""Instruction traces emitted by the functional vector machine.

A trace is an ordered list of lightweight event records:

* :class:`VectorOp` — an arithmetic/permute vector instruction with its
  active element count (so the timing model can compute chimes and lane
  utilization);
* :class:`MemoryOp` — a vector load/store described compactly as
  ``(base address, element bytes, element count, stride)`` — the cache
  simulator expands this to cache-line touches without storing per-element
  addresses;
* :class:`ScalarOp` — a batch of scalar bookkeeping instructions (address
  arithmetic, loop control), recorded in bulk.

Traces from full convolutional layers would hold 10^8+ events; they are only
produced for small kernels (tests, validation of the analytical model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


@dataclass(frozen=True)
class VectorOp:
    """A non-memory vector instruction."""

    name: str  # e.g. "vfmacc", "vfadd", "vfmv" (broadcast), "vslide"
    vl: int  # active elements
    sew_bits: int


@dataclass(frozen=True)
class MemoryOp:
    """A vector memory instruction (unit-stride, strided or indexed)."""

    name: str  # "vle", "vse", "vlse", "vsse", "vluxei", "vsuxei"
    base: int  # starting byte address
    elem_bytes: int
    vl: int  # active elements
    stride: int  # byte stride between consecutive elements
    is_store: bool
    indices: tuple[int, ...] | None = None  # byte offsets for indexed ops

    def byte_span(self) -> int:
        """Total bytes spanned from first to one-past-last element."""
        if self.vl == 0:
            return 0
        if self.indices is not None:
            return max(self.indices) + self.elem_bytes - min(self.indices)
        return abs(self.stride) * (self.vl - 1) + self.elem_bytes

    def touched_lines(self, line_bytes: int) -> Iterator[int]:
        """Yield the distinct cache-line addresses touched, in access order."""
        if self.vl == 0:
            return
        seen_last = None
        if self.indices is not None:
            offsets: Iterator[int] = iter(self.indices)
        else:
            offsets = (i * self.stride for i in range(self.vl))
        for off in offsets:
            line = (self.base + off) // line_bytes
            if line != seen_last:
                seen_last = line
                yield line * line_bytes


@dataclass(frozen=True)
class ScalarOp:
    """A batch of ``count`` scalar instructions (loop/address bookkeeping)."""

    name: str
    count: int


TraceEvent = Union[VectorOp, MemoryOp, ScalarOp]


@dataclass
class TraceStats:
    """Aggregate statistics over a trace."""

    vector_instrs: int = 0
    vector_elements: int = 0  # total active elements across vector instrs
    memory_instrs: int = 0
    memory_bytes: int = 0
    load_bytes: int = 0
    store_bytes: int = 0
    scalar_instrs: int = 0

    @property
    def total_instrs(self) -> int:
        return self.vector_instrs + self.memory_instrs + self.scalar_instrs

    def average_vl(self) -> float:
        """Mean active vector length over vector+memory instructions."""
        n = self.vector_instrs + self.memory_instrs
        return self.vector_elements / n if n else 0.0


class InstructionTrace:
    """An append-only sequence of trace events with running statistics."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self.stats = TraceStats()

    def emit(self, event: TraceEvent) -> None:
        """Record one event (statistics update even if event storage is off)."""
        stats = self.stats
        if isinstance(event, VectorOp):
            stats.vector_instrs += 1
            stats.vector_elements += event.vl
        elif isinstance(event, MemoryOp):
            stats.memory_instrs += 1
            stats.vector_elements += event.vl
            nbytes = event.vl * event.elem_bytes
            stats.memory_bytes += nbytes
            if event.is_store:
                stats.store_bytes += nbytes
            else:
                stats.load_bytes += nbytes
        elif isinstance(event, ScalarOp):
            stats.scalar_instrs += event.count
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown trace event {event!r}")
        if self.enabled:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.stats = TraceStats()
