"""ARM-SVE-style per-lane predication.

Paper I §II contrasts the two vector-length-agnostic ISAs' tail handling:
RVV shortens the *granted vector length* (``vsetvl``), while ARM-SVE keeps
the full vector and masks lanes with **predicate registers** — "elements
with active lanes get processed and inactive lanes either update the
destination or leave the destination unchanged", with ``whilelt``-generated
loop predicates covering the scalar tail.

This module adds that model to the functional machine: 16 predicate
registers, ``whilelt`` / ``ptrue`` generation, and masked load/store/FMA
wrappers with both zeroing and merging forms.  The SVE-flavoured kernels in
the tests demonstrate that the same strip-mined loops can be written either
way and produce identical results — the portability argument of the papers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IsaError, RegisterError
from repro.isa.machine import Buffer, VectorMachine

#: ARM-SVE provides 16 predicate registers (p0-p15).
NUM_PREDICATES = 16


class PredicatedMachine:
    """SVE-style predication layered over a :class:`VectorMachine`.

    The underlying machine keeps its full vector length active
    (``vsetvl(VLMAX)``); lane masking is applied by this wrapper.
    """

    def __init__(self, machine: VectorMachine) -> None:
        self.m = machine
        self.vlmax = machine.vlmax()
        self._preds = np.zeros((NUM_PREDICATES, self.vlmax), dtype=bool)
        machine.vsetvl(self.vlmax)

    # ------------------------------------------------------------------ #
    # predicate generation
    # ------------------------------------------------------------------ #
    def _check_pred(self, pd: int) -> None:
        if not 0 <= pd < NUM_PREDICATES:
            raise RegisterError(f"predicate p{pd} out of range")

    def ptrue(self, pd: int) -> None:
        """All lanes active."""
        self._check_pred(pd)
        self._preds[pd] = True
        self.m.trace.emit_scalar("ptrue", 1)

    def pfalse(self, pd: int) -> None:
        """All lanes inactive."""
        self._check_pred(pd)
        self._preds[pd] = False
        self.m.trace.emit_scalar("pfalse", 1)

    def whilelt(self, pd: int, i: int, n: int) -> bool:
        """``whilelt``: lanes [0, n-i) active; returns True if any lane is."""
        self._check_pred(pd)
        active = max(0, min(self.vlmax, n - i))
        self._preds[pd] = False
        self._preds[pd, :active] = True
        self.m.trace.emit_scalar("whilelt", 1)
        return active > 0

    def active_lanes(self, pd: int) -> int:
        self._check_pred(pd)
        return int(self._preds[pd].sum())

    def mask(self, pd: int) -> np.ndarray:
        self._check_pred(pd)
        return self._preds[pd].copy()

    # ------------------------------------------------------------------ #
    # predicated memory ops (contiguous lanes only, as whilelt produces)
    # ------------------------------------------------------------------ #
    def _contiguous_count(self, pd: int) -> int:
        """Predicated memory works on the leading active lanes."""
        m = self._preds[pd]
        n = int(m.sum())
        if n and not m[:n].all():
            raise IsaError(
                "predicated memory ops require a whilelt-style (leading-lane) "
                "predicate"
            )
        return n

    def ld1(self, vd: int, pd: int, buf: Buffer, off: int) -> None:
        """Masked contiguous load; inactive lanes are zeroed (SVE ld1)."""
        n = self._contiguous_count(pd)
        self.m.vbroadcast(vd, 0.0)
        if n:
            self.m.vsetvl(n)
            self.m.vload(vd, buf, off)
            self.m.vsetvl(self.vlmax)

    def st1(self, vs: int, pd: int, buf: Buffer, off: int) -> None:
        """Masked contiguous store; inactive lanes leave memory untouched."""
        n = self._contiguous_count(pd)
        if n:
            self.m.vsetvl(n)
            self.m.vstore(vs, buf, off)
            self.m.vsetvl(self.vlmax)

    # ------------------------------------------------------------------ #
    # predicated arithmetic
    # ------------------------------------------------------------------ #
    def _masked_write(self, pd: int, vd: int, values: np.ndarray,
                      zeroing: bool) -> None:
        sew = self.m.vtype.sew
        mask = self._preds[pd]
        old = self.m.regs.read(vd, sew, self.vlmax)
        out = np.where(mask, values, 0.0 if zeroing else old)
        self.m.regs.write(vd, sew, out.astype(sew.dtype))

    def fmla(self, vd: int, pd: int, scalar: float, vs: int,
             zeroing: bool = False) -> None:
        """Predicated vector-scalar FMA: active lanes accumulate, inactive
        lanes merge (default) or zero."""
        sew = self.m.vtype.sew
        acc = self.m.regs.read(vd, sew, self.vlmax)
        b = self.m.regs.read(vs, sew, self.vlmax)
        self._masked_write(pd, vd, acc + sew.dtype.type(scalar) * b, zeroing)
        self.m.trace.emit_vector("fmla.p", self.active_lanes(pd), sew.bits)

    def fadd(self, vd: int, pd: int, vs1: int, vs2: int,
             zeroing: bool = False) -> None:
        """Predicated add."""
        sew = self.m.vtype.sew
        a = self.m.regs.read(vs1, sew, self.vlmax)
        b = self.m.regs.read(vs2, sew, self.vlmax)
        self._masked_write(pd, vd, a + b, zeroing)
        self.m.trace.emit_vector("fadd.p", self.active_lanes(pd), sew.bits)

    def dup(self, vd: int, scalar: float) -> None:
        """Unpredicated broadcast (SVE dup)."""
        self.m.vbroadcast(vd, scalar)
