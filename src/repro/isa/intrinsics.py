"""EPI-builtin-style intrinsic names bound to a :class:`VectorMachine`.

The paper's kernels use the EPI LLVM builtins (``__builtin_epi_vsetvl``,
``__builtin_epi_vfmacc_...``) on RISC-V and ACLE intrinsics on ARM-SVE.  This
module provides a façade with those spellings so the kernel sources in
:mod:`repro.algorithms` read like the original C, which makes the
line-by-line correspondence with the paper's pseudocode (Paper I, Figs. 1-4)
auditable.
"""

from __future__ import annotations

import numpy as np

from repro.isa.machine import Buffer, VectorMachine
from repro.isa.types import E32, E64, ElementType


class EpiIntrinsics:
    """Thin façade exposing EPI-style intrinsic names over a machine."""

    def __init__(self, machine: VectorMachine) -> None:
        self.m = machine

    # -- configuration -------------------------------------------------- #
    def vsetvl(self, rvl: int, sew: ElementType = E32) -> int:
        """``__builtin_epi_vsetvl(rvl, sew)`` — returns the granted vl."""
        return self.m.vsetvl(rvl, sew)

    def vsetvlmax(self, sew: ElementType = E32) -> int:
        """Grant the maximum vector length for the SEW."""
        return self.m.vsetvl(self.m.vlmax(sew), sew)

    # -- memory --------------------------------------------------------- #
    def vload(self, vd: int, buf: Buffer, off: int) -> None:
        """``__builtin_epi_vload_f32`` (unit stride)."""
        self.m.vload(vd, buf, off)

    def vstore(self, vs: int, buf: Buffer, off: int) -> None:
        """``__builtin_epi_vstore_f32`` (unit stride)."""
        self.m.vstore(vs, buf, off)

    def vload_strided(self, vd: int, buf: Buffer, off: int, stride: int) -> None:
        """``__builtin_epi_vload_strided_f32``."""
        self.m.vload_strided(vd, buf, off, stride)

    def vstore_strided(self, vs: int, buf: Buffer, off: int, stride: int) -> None:
        """``__builtin_epi_vstore_strided_f32``."""
        self.m.vstore_strided(vs, buf, off, stride)

    def vload_indexed(self, vd: int, buf: Buffer, offsets: np.ndarray) -> None:
        """Gather load (``vluxei``)."""
        self.m.vgather(vd, buf, offsets)

    def vstore_indexed(self, vs: int, buf: Buffer, offsets: np.ndarray) -> None:
        """Scatter store (``vsuxei``)."""
        self.m.vscatter(vs, buf, offsets)

    # -- arithmetic ------------------------------------------------------ #
    def vfadd(self, vd: int, a: int, b: int) -> None:
        self.m.vfadd(vd, a, b)

    def vfsub(self, vd: int, a: int, b: int) -> None:
        self.m.vfsub(vd, a, b)

    def vfmul(self, vd: int, a: int, b: int) -> None:
        self.m.vfmul(vd, a, b)

    def vfmacc(self, vd: int, a: int, b: int) -> None:
        self.m.vfmacc(vd, a, b)

    def vfmacc_vf(self, vd: int, scalar: float, b: int) -> None:
        self.m.vfmacc_vf(vd, scalar, b)

    def vfmul_vf(self, vd: int, scalar: float, b: int) -> None:
        self.m.vfmul_vf(vd, scalar, b)

    def vbroadcast(self, vd: int, scalar: float) -> None:
        self.m.vbroadcast(vd, scalar)

    def vredsum(self, vs: int) -> float:
        return self.m.vredsum(vs)

    # -- batched sequences (one call per unrolled block) ------------------ #
    # The EPI toolchain has no direct spelling for these; they model the
    # fully unrolled instruction runs the compiler emits for the kernels'
    # register-blocked inner loops (Paper I Figs. 2-3).
    def vload_seq(self, vd0: int, buf: Buffer, offsets) -> None:
        self.m.vload_seq(vd0, buf, offsets)

    def vstore_seq(self, vs0: int, buf: Buffer, offsets) -> None:
        self.m.vstore_seq(vs0, buf, offsets)

    def vfmacc_vf_seq(self, vd0: int, scalars, vs2: int) -> None:
        self.m.vfmacc_vf_seq(vd0, scalars, vs2)

    def vbroadcast_seq(self, vd0: int, count: int, scalar: float) -> None:
        self.m.vbroadcast_seq(vd0, count, scalar)

    # -- SEW shortcuts mirroring the C type suffixes ---------------------- #
    def vsetvl_e32(self, rvl: int) -> int:
        """``vsetvl`` with 32-bit elements (the kernels' float type)."""
        return self.vsetvl(rvl, E32)

    def vsetvl_e64(self, rvl: int) -> int:
        """``vsetvl`` with 64-bit elements."""
        return self.vsetvl(rvl, E64)
