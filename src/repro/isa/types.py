"""Element types and vector-type (``vtype``) configuration for the vector ISA.

Mirrors the RVV v1.0 notion of *selected element width* (SEW).  We model
``LMUL = 1`` throughout (the paper's kernels use single-register groups).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IsaError, VectorLengthError
from repro.utils.validation import is_power_of_two

#: Maximum architectural vector length supported by RVV (bits).
RVV_MAX_VLEN_BITS = 16384

#: Minimum vector length we allow a machine to be configured with (bits).
MIN_VLEN_BITS = 64


@dataclass(frozen=True)
class ElementType:
    """A vector element type: width in bits and the matching NumPy dtype."""

    name: str
    bits: int
    dtype: np.dtype

    @property
    def bytes(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


E8 = ElementType("e8", 8, np.dtype(np.int8))
E16 = ElementType("e16", 16, np.dtype(np.int16))
E32 = ElementType("e32", 32, np.dtype(np.float32))
E64 = ElementType("e64", 64, np.dtype(np.float64))

_BY_BITS = {t.bits: t for t in (E8, E16, E32, E64)}


def element_type_for_bits(bits: int) -> ElementType:
    """Look up the :class:`ElementType` for a SEW in bits."""
    try:
        return _BY_BITS[bits]
    except KeyError:
        raise IsaError(f"unsupported SEW {bits} bits (supported: {sorted(_BY_BITS)})")


#: RVV register-group multipliers (fractional LMUL is not modelled).
VALID_LMUL = (1, 2, 4, 8)


@dataclass(frozen=True)
class VType:
    """The active vector configuration (SEW + LMUL + granted vector length).

    ``vl`` is in *elements*; it is the value granted by the latest
    ``vsetvl``.  ``lmul`` groups consecutive vector registers so a single
    instruction operates on ``lmul * VLEN`` bits — RVV's way of emulating
    longer vectors on short-VLEN hardware.
    """

    sew: ElementType
    vl: int
    lmul: int = 1

    def __post_init__(self) -> None:
        if self.vl < 0:
            raise VectorLengthError(f"vl must be >= 0, got {self.vl}")
        if self.lmul not in VALID_LMUL:
            raise VectorLengthError(
                f"LMUL must be one of {VALID_LMUL}, got {self.lmul}"
            )


def validate_vlen_bits(vlen_bits: int) -> None:
    """Check a hardware maximum vector length against the RVV rules.

    RVV requires VLEN to be a power of two; our machines additionally bound it
    to the architectural maximum of 16384 bits used in the paper.
    """
    if not is_power_of_two(vlen_bits):
        raise VectorLengthError(f"VLEN must be a power of two, got {vlen_bits}")
    if vlen_bits < MIN_VLEN_BITS or vlen_bits > RVV_MAX_VLEN_BITS:
        raise VectorLengthError(
            f"VLEN must be in [{MIN_VLEN_BITS}, {RVV_MAX_VLEN_BITS}] bits, got {vlen_bits}"
        )


def grant_vl(
    requested: int, sew: ElementType, vlen_bits: int, lmul: int = 1
) -> int:
    """The ``vsetvl`` granting rule.

    Returns ``min(requested, VLMAX)`` where ``VLMAX = LMUL * VLEN / SEW`` —
    the behaviour the paper relies on for vector-length-agnostic
    strip-mining.  A negative request is illegal.
    """
    if requested < 0:
        raise VectorLengthError(f"requested vector length must be >= 0, got {requested}")
    if lmul not in VALID_LMUL:
        raise VectorLengthError(f"LMUL must be one of {VALID_LMUL}, got {lmul}")
    vlmax = lmul * vlen_bits // sew.bits
    return min(requested, vlmax)
