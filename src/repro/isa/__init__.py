"""A functional, traceable RISC-V-Vector-like ISA substrate.

The paper's kernels are written in C with EPI/RVV intrinsics.  Pure Python
cannot express real vector instructions, so this subpackage provides the
closest synthetic equivalent: a :class:`~repro.isa.machine.VectorMachine`
with 32 vector registers, ``vsetvl`` strip-mining semantics (vector-length
agnostic, powers-of-two MVL up to 16384 bits), unit-stride/strided/indexed
memory operations and fused multiply-add — executing *functionally* on NumPy
buffers while recording an instruction trace that the timing simulator
(:mod:`repro.simulator.timing`) replays against a modelled cache hierarchy.

The vectorized convolution kernels in :mod:`repro.algorithms` are written
against this API with the same loop structure as the paper's pseudocode, so
instruction mixes and memory-access patterns match the original kernels.
"""

from repro.isa.types import ElementType, E8, E16, E32, E64, VType
from repro.isa.registers import VectorRegisterFile
from repro.isa.trace import InstructionTrace, TraceStats, VectorOp, MemoryOp, ScalarOp
from repro.isa.machine import VectorMachine, Buffer
from repro.isa.intrinsics import EpiIntrinsics

__all__ = [
    "ElementType",
    "E8",
    "E16",
    "E32",
    "E64",
    "VType",
    "VectorRegisterFile",
    "InstructionTrace",
    "TraceStats",
    "VectorOp",
    "MemoryOp",
    "ScalarOp",
    "VectorMachine",
    "Buffer",
    "EpiIntrinsics",
]
