"""Darknet-style ``.cfg`` parser.

Parses the subset of Darknet's configuration language used by the evaluated
models (YOLOv3, YOLOv3-tiny, VGG-16) into :class:`LayerSpec` objects,
tracking tensor shapes through the network exactly like Darknet's
``parse_network_cfg``.  ``[yolo]`` detection heads are mapped to passthrough
routes — the study measures the convolutional layers, and detection decoding
contributes no relevant compute.
"""

from __future__ import annotations

from repro.errors import CfgParseError
from repro.nn.layer import (
    AvgPoolSpec,
    ConnectedSpec,
    ConvSpec,
    LayerSpec,
    MaxPoolSpec,
    RouteSpec,
    ShortcutSpec,
    SoftmaxSpec,
    UpsampleSpec,
)
from repro.nn.network import Network


def _sections(text: str) -> list[tuple[str, dict[str, str]]]:
    """Split cfg text into (section-name, options) pairs."""
    sections: list[tuple[str, dict[str, str]]] = []
    current: dict[str, str] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise CfgParseError(f"line {lineno}: malformed section header {raw!r}")
            current = {}
            sections.append((line[1:-1].strip().lower(), current))
        else:
            if current is None:
                raise CfgParseError(f"line {lineno}: option outside any section")
            if "=" not in line:
                raise CfgParseError(f"line {lineno}: expected key=value, got {raw!r}")
            key, value = line.split("=", 1)
            current[key.strip()] = value.strip()
    if not sections:
        raise CfgParseError("empty cfg")
    return sections


def _int(options: dict[str, str], key: str, default: int | None = None) -> int:
    if key not in options:
        if default is None:
            raise CfgParseError(f"missing required option {key!r}")
        return default
    try:
        return int(options[key])
    except ValueError:
        raise CfgParseError(f"option {key}={options[key]!r} is not an integer")


def parse_cfg(text: str, name: str = "cfg-model") -> Network:
    """Parse cfg text into a :class:`Network` with shape tracking."""
    sections = _sections(text)
    head, net_opts = sections[0]
    if head not in ("net", "network"):
        raise CfgParseError(f"first section must be [net], got [{head}]")
    c = _int(net_opts, "channels", 3)
    h = _int(net_opts, "height", 224)
    w = _int(net_opts, "width", 224)

    layers: list[LayerSpec] = []
    # (c, h, w) or flat size per produced layer output
    shapes: list[tuple] = []
    conv_ordinal = 0

    def out_shape(idx: int) -> tuple:
        if not 0 <= idx < len(shapes):
            raise CfgParseError(f"route/shortcut references layer {idx} out of range")
        return shapes[idx]

    for kind, opts in sections[1:]:
        if kind == "convolutional":
            conv_ordinal += 1
            size = _int(opts, "size", 3)
            stride = _int(opts, "stride", 1)
            pad_flag = _int(opts, "pad", 0)
            padding = _int(opts, "padding", size // 2 if pad_flag else 0)
            spec = ConvSpec(
                ic=c,
                oc=_int(opts, "filters", 1),
                ih=h,
                iw=w,
                kh=size,
                kw=size,
                stride=stride,
                pad=padding,
                index=conv_ordinal,
                activation=opts.get("activation", "linear"),
                batch_normalize=bool(_int(opts, "batch_normalize", 0)),
            )
            layers.append(spec)
            c, h, w = spec.oc, spec.oh, spec.ow
        elif kind == "maxpool":
            size = _int(opts, "size", 2)
            stride = _int(opts, "stride", size)
            spec = MaxPoolSpec(c=c, ih=h, iw=w, size=size, stride=stride)
            layers.append(spec)
            h, w = spec.oh, spec.ow
        elif kind == "avgpool":
            layers.append(AvgPoolSpec(c=c, ih=h, iw=w))
            h = w = 1
        elif kind == "connected":
            inputs = c * h * w
            spec = ConnectedSpec(
                inputs=inputs,
                outputs=_int(opts, "output", 1),
                activation=opts.get("activation", "linear"),
            )
            layers.append(spec)
            c, h, w = spec.outputs, 1, 1
        elif kind == "shortcut":
            frm = _int(opts, "from")
            idx = len(layers) + frm if frm < 0 else frm
            sc, sh, sw = out_shape(idx)
            layers.append(ShortcutSpec(from_index=frm, c=c, h=h, w=w))
            if (sc, sh, sw) != (c, h, w):
                raise CfgParseError(
                    f"shortcut shape mismatch: {(sc, sh, sw)} vs {(c, h, w)}"
                )
        elif kind == "route":
            raw = opts.get("layers")
            if raw is None:
                raise CfgParseError("[route] requires layers=")
            refs = tuple(int(tok) for tok in raw.replace(" ", "").split(",") if tok)
            resolved = [len(layers) + r if r < 0 else r for r in refs]
            parts = [out_shape(i) for i in resolved]
            heights = {p[1] for p in parts}
            widths = {p[2] for p in parts}
            if len(heights) != 1 or len(widths) != 1:
                raise CfgParseError(f"route concatenates mismatched spatial dims {parts}")
            c = sum(p[0] for p in parts)
            h, w = parts[0][1], parts[0][2]
            layers.append(RouteSpec(layers=refs, c=c, h=h, w=w))
        elif kind == "upsample":
            stride = _int(opts, "stride", 2)
            layers.append(UpsampleSpec(c=c, ih=h, iw=w, stride=stride))
            h, w = h * stride, w * stride
        elif kind == "softmax":
            layers.append(SoftmaxSpec(inputs=c * h * w))
        elif kind == "yolo":
            # detection decode: passthrough for the purposes of this study
            layers.append(RouteSpec(layers=(-1,), c=c, h=h, w=w))
        else:
            raise CfgParseError(f"unsupported section [{kind}]")
        shapes.append((c, h, w))

    return Network(name=name, layers=layers)
