"""Input image pipeline (Darknet's ``letterbox_image``).

The papers evaluate on "a 768 x 576 pixels input image": Darknet letterboxes
it into the network's square input (608 x 608 for YOLOv3, 224 x 224 for the
VGG-16 variant) — resize preserving aspect ratio, pad the rest with gray
(0.5).  This module reproduces that path with vectorized bilinear resizing
so end-to-end runs start from the paper's actual input geometry.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.prng import make_rng

#: Darknet's letterbox padding value.
PAD_VALUE = 0.5


def synthetic_image(height: int = 576, width: int = 768, channels: int = 3,
                    seed: int = 0) -> np.ndarray:
    """A deterministic synthetic photo-like image in [0, 1], (C, H, W).

    Smooth low-frequency structure plus noise — enough texture that resizing
    bugs (axis swaps, off-by-one sampling) change the output measurably.
    """
    rng = make_rng(seed)
    yy, xx = np.meshgrid(
        np.linspace(0, 4 * np.pi, height), np.linspace(0, 4 * np.pi, width),
        indexing="ij",
    )
    base = 0.5 + 0.25 * np.sin(yy)[None] * np.cos(xx)[None]
    phases = rng.uniform(0, 2 * np.pi, channels)[:, None, None]
    img = base + 0.2 * np.sin(yy[None] + phases) + 0.05 * rng.standard_normal(
        (channels, height, width)
    )
    return np.clip(img, 0.0, 1.0).astype(np.float32)


def resize_bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of a (C, H, W) image (vectorized, align-corners)."""
    if image.ndim != 3:
        raise ShapeError(f"expected (C, H, W), got shape {image.shape}")
    if out_h < 1 or out_w < 1:
        raise ShapeError("output dimensions must be positive")
    c, h, w = image.shape
    if (h, w) == (out_h, out_w):
        return image.astype(np.float32, copy=True)
    ys = np.linspace(0, h - 1, out_h)
    xs = np.linspace(0, w - 1, out_w)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).astype(np.float32)[None, :, None]
    wx = (xs - x0).astype(np.float32)[None, None, :]
    img = image.astype(np.float32)
    top = img[:, y0][:, :, x0] * (1 - wx) + img[:, y0][:, :, x1] * wx
    bot = img[:, y1][:, :, x0] * (1 - wx) + img[:, y1][:, :, x1] * wx
    return (top * (1 - wy) + bot * wy).astype(np.float32)


def letterbox(image: np.ndarray, size: int) -> np.ndarray:
    """Darknet's letterbox: aspect-preserving resize into a gray square."""
    if image.ndim != 3:
        raise ShapeError(f"expected (C, H, W), got shape {image.shape}")
    c, h, w = image.shape
    scale = min(size / h, size / w)
    new_h = max(1, int(round(h * scale)))
    new_w = max(1, int(round(w * scale)))
    resized = resize_bilinear(image, new_h, new_w)
    out = np.full((c, size, size), PAD_VALUE, dtype=np.float32)
    top = (size - new_h) // 2
    left = (size - new_w) // 2
    out[:, top : top + new_h, left : left + new_w] = resized
    return out


def paper_input(network_size: int = 608, seed: int = 0) -> np.ndarray:
    """The paper's input: a 768x576 image letterboxed to the network size."""
    return letterbox(synthetic_image(576, 768, seed=seed), network_size)
