"""Layer specifications.

:class:`ConvSpec` is the central object of the reproduction: the paper's
whole co-design study keys on the ten convolution dimensions
(IC, IH, IW, stride, pad, OC, OH, OW, KH, KW) listed in its Table 1, which
are also the layer-side features of the algorithm-selection classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigError, ShapeError
from repro.utils.validation import check_non_negative, check_positive

#: Bytes per activation/weight element (the paper uses fp32 throughout).
DTYPE_BYTES = 4


@dataclass(frozen=True)
class ConvSpec:
    """A 2-D convolutional layer (batch size 1, as in the paper).

    ``pad`` defaults to "same"-style padding ``kh // 2`` which is what
    Darknet uses for all layers of YOLOv3/VGG-16.
    """

    ic: int
    oc: int
    ih: int
    iw: int
    kh: int = 3
    kw: int = 3
    stride: int = 1
    pad: int = -1  # -1 means kh // 2
    index: int = 0  # 1-based position among the model's conv layers
    activation: str = "linear"
    #: Darknet's batch_normalize flag: normalize/scale/bias after the conv.
    batch_normalize: bool = False

    def __post_init__(self) -> None:
        for name in ("ic", "oc", "ih", "iw", "kh", "kw", "stride"):
            check_positive(name, getattr(self, name))
        if self.pad == -1:
            object.__setattr__(self, "pad", self.kh // 2)
        check_non_negative("pad", self.pad)
        if self.kh > self.ih + 2 * self.pad or self.kw > self.iw + 2 * self.pad:
            raise ConfigError(
                f"kernel {self.kh}x{self.kw} larger than padded input "
                f"{self.ih + 2 * self.pad}x{self.iw + 2 * self.pad}"
            )

    # ------------------------------------------------------------------ #
    # derived dimensions
    # ------------------------------------------------------------------ #
    @property
    def oh(self) -> int:
        return (self.ih + 2 * self.pad - self.kh) // self.stride + 1

    @property
    def ow(self) -> int:
        return (self.iw + 2 * self.pad - self.kw) // self.stride + 1

    @property
    def gemm_m(self) -> int:
        """GEMM M dimension: number of filters."""
        return self.oc

    @property
    def gemm_k(self) -> int:
        """GEMM K dimension: kh*kw*ic."""
        return self.kh * self.kw * self.ic

    @property
    def gemm_n(self) -> int:
        """GEMM N dimension: oh*ow."""
        return self.oh * self.ow

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the direct/GEMM formulation."""
        return self.gemm_m * self.gemm_k * self.gemm_n

    @property
    def flops(self) -> int:
        return 2 * self.macs

    # ------------------------------------------------------------------ #
    # tensor sizes (bytes)
    # ------------------------------------------------------------------ #
    @property
    def input_bytes(self) -> int:
        return self.ic * self.ih * self.iw * DTYPE_BYTES

    @property
    def output_bytes(self) -> int:
        return self.oc * self.oh * self.ow * DTYPE_BYTES

    @property
    def weight_bytes(self) -> int:
        return self.oc * self.ic * self.kh * self.kw * DTYPE_BYTES

    @property
    def im2col_bytes(self) -> int:
        """Size of the K x N column matrix im2col materializes."""
        return self.gemm_k * self.gemm_n * DTYPE_BYTES

    def arithmetic_intensity(self) -> float:
        """Paper I's AI metric: flops over GEMM matrix bytes."""
        m, n, k = self.gemm_m, self.gemm_n, self.gemm_k
        return (2.0 * m * n * k) / (DTYPE_BYTES * (m * n + k * n + m * k))

    # ------------------------------------------------------------------ #
    # classifier features
    # ------------------------------------------------------------------ #
    FEATURE_NAMES: tuple = (
        "ic",
        "ih",
        "iw",
        "stride",
        "pad",
        "oc",
        "oh",
        "ow",
        "kh",
        "kw",
    )

    def features(self) -> list[float]:
        """The 10 layer-side features of the paper's selection model."""
        return [
            float(self.ic),
            float(self.ih),
            float(self.iw),
            float(self.stride),
            float(self.pad),
            float(self.oc),
            float(self.oh),
            float(self.ow),
            float(self.kh),
            float(self.kw),
        ]

    def validate_input(self, shape: Sequence[int]) -> None:
        """Check an NCHW-without-N input shape ``(C, H, W)``."""
        expected = (self.ic, self.ih, self.iw)
        if tuple(shape) != expected:
            raise ShapeError(f"expected input shape {expected}, got {tuple(shape)}")

    def describe(self) -> str:
        return (
            f"conv{self.index}: {self.ic}->{self.oc} ch, {self.ih}x{self.iw}->"
            f"{self.oh}x{self.ow}, k{self.kh}x{self.kw} s{self.stride} p{self.pad}"
        )


@dataclass(frozen=True)
class MaxPoolSpec:
    """Max pooling layer.

    ``pad`` is total extra border (Darknet pads max-pool windows with -inf on
    the right/bottom); the stride-1 "same" pool of YOLOv3-tiny uses
    ``size=2, stride=1, pad=1``.
    """

    c: int
    ih: int
    iw: int
    size: int = 2
    stride: int = 2
    pad: int = 0

    @property
    def oh(self) -> int:
        return (self.ih + self.pad - self.size) // self.stride + 1

    @property
    def ow(self) -> int:
        return (self.iw + self.pad - self.size) // self.stride + 1


@dataclass(frozen=True)
class AvgPoolSpec:
    """Global average pooling layer."""

    c: int
    ih: int
    iw: int


@dataclass(frozen=True)
class ConnectedSpec:
    """Fully connected layer (used by VGG-16's tail)."""

    inputs: int
    outputs: int
    activation: str = "linear"

    @property
    def macs(self) -> int:
        return self.inputs * self.outputs


@dataclass(frozen=True)
class ShortcutSpec:
    """Residual addition with the output of an earlier layer."""

    from_index: int  # relative (negative) or absolute layer index
    c: int
    h: int
    w: int


@dataclass(frozen=True)
class RouteSpec:
    """Concatenation (or passthrough) of earlier layer outputs."""

    layers: tuple
    c: int
    h: int
    w: int


@dataclass(frozen=True)
class UpsampleSpec:
    """Nearest-neighbour spatial upsampling."""

    c: int
    ih: int
    iw: int
    stride: int = 2


@dataclass(frozen=True)
class SoftmaxSpec:
    """Softmax over a flat vector."""

    inputs: int


LayerSpec = (
    ConvSpec
    | MaxPoolSpec
    | AvgPoolSpec
    | ConnectedSpec
    | ShortcutSpec
    | RouteSpec
    | UpsampleSpec
    | SoftmaxSpec
)
