"""NumPy reference implementations — the numerical oracles.

Every vectorized algorithm in :mod:`repro.algorithms` is tested against
:func:`conv2d_reference`.  These functions favour clarity and vectorized
NumPy (no per-element Python loops in the hot path, per the HPC guides) over
micro-optimization; they model Darknet's NCHW single-image layers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import AvgPoolSpec, ConnectedSpec, ConvSpec, MaxPoolSpec, UpsampleSpec


def pad_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad an (C, H, W) tensor spatially."""
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)))


def conv2d_reference(spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Direct NCHW convolution via accumulated shifted slices.

    ``x`` has shape (IC, IH, IW); ``w`` has shape (OC, IC, KH, KW); the
    result has shape (OC, OH, OW).  Internally loops only over the KH*KW
    kernel offsets; each offset contributes a full tensor contraction, so the
    work is done by BLAS.
    """
    spec.validate_input(x.shape)
    if w.shape != (spec.oc, spec.ic, spec.kh, spec.kw):
        raise ShapeError(
            f"expected weights {(spec.oc, spec.ic, spec.kh, spec.kw)}, got {w.shape}"
        )
    xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
    oh, ow, s = spec.oh, spec.ow, spec.stride
    out = np.zeros((spec.oc, oh, ow), dtype=np.float64)
    for dh in range(spec.kh):
        for dw in range(spec.kw):
            window = xp[:, dh : dh + s * oh : s, dw : dw + s * ow : s]
            # (OC, IC) x (IC, OH*OW) contraction for this kernel offset
            out += np.einsum(
                "oi,ihw->ohw", w[:, :, dh, dw].astype(np.float64), window.astype(np.float64)
            )
    return out.astype(np.float32)


def maxpool_reference(spec: MaxPoolSpec, x: np.ndarray) -> np.ndarray:
    """Max pooling over (C, H, W) with Darknet's right/bottom -inf padding."""
    if x.shape != (spec.c, spec.ih, spec.iw):
        raise ShapeError(f"expected {(spec.c, spec.ih, spec.iw)}, got {x.shape}")
    if spec.pad:
        x = np.pad(
            x, ((0, 0), (0, spec.pad), (0, spec.pad)), constant_values=-np.inf
        )
    oh, ow = spec.oh, spec.ow
    out = np.full((spec.c, oh, ow), -np.inf, dtype=np.float32)
    for dh in range(spec.size):
        for dw in range(spec.size):
            window = x[
                :, dh : dh + spec.stride * oh : spec.stride,
                dw : dw + spec.stride * ow : spec.stride,
            ]
            np.maximum(out, window[:, :oh, :ow], out=out)
    return out


def avgpool_reference(spec: AvgPoolSpec, x: np.ndarray) -> np.ndarray:
    """Global average pooling -> (C,) vector."""
    if x.shape != (spec.c, spec.ih, spec.iw):
        raise ShapeError(f"expected {(spec.c, spec.ih, spec.iw)}, got {x.shape}")
    return x.mean(axis=(1, 2), dtype=np.float64).astype(np.float32)


def connected_reference(spec: ConnectedSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Fully connected layer: ``w @ x`` with (outputs, inputs) weights."""
    x = x.reshape(-1)
    if x.size != spec.inputs:
        raise ShapeError(f"expected {spec.inputs} inputs, got {x.size}")
    if w.shape != (spec.outputs, spec.inputs):
        raise ShapeError(f"expected weights {(spec.outputs, spec.inputs)}, got {w.shape}")
    return (w.astype(np.float64) @ x.astype(np.float64)).astype(np.float32)


def upsample_reference(spec: UpsampleSpec, x: np.ndarray) -> np.ndarray:
    """Nearest-neighbour upsampling by ``stride``."""
    if x.shape != (spec.c, spec.ih, spec.iw):
        raise ShapeError(f"expected {(spec.c, spec.ih, spec.iw)}, got {x.shape}")
    return np.repeat(np.repeat(x, spec.stride, axis=1), spec.stride, axis=2)


def softmax_reference(x: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over a flat vector."""
    x = x.reshape(-1).astype(np.float64)
    e = np.exp(x - x.max())
    return (e / e.sum()).astype(np.float32)


def apply_activation(name: str, x: np.ndarray) -> np.ndarray:
    """Darknet activation functions used by the evaluated models."""
    if name == "linear":
        return x
    if name == "relu":
        return np.maximum(x, 0.0)
    if name == "leaky":
        return np.where(x > 0, x, 0.1 * x).astype(x.dtype)
    raise ShapeError(f"unknown activation {name!r}")
