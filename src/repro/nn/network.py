"""Network graph construction and functional inference.

A :class:`Network` is an ordered list of layer specs (mini-Darknet).  The
executor runs single-image inference in NCHW with NumPy, dispatching each
convolutional layer to a pluggable convolution algorithm — exactly the hook
the paper's per-layer algorithm selection uses.  Weights are synthetic and
deterministic (the study depends on layer dimensions, not trained values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import NetworkError, ShapeError
from repro.nn import reference as ref
from repro.nn.layer import (
    AvgPoolSpec,
    ConnectedSpec,
    ConvSpec,
    LayerSpec,
    MaxPoolSpec,
    RouteSpec,
    ShortcutSpec,
    SoftmaxSpec,
    UpsampleSpec,
)
from repro.utils.prng import synthetic_tensor

#: Signature of a convolution implementation: (spec, input CHW, weights OIHW)
#: -> output CHW.  The registry in :mod:`repro.algorithms` provides these.
ConvFn = Callable[[ConvSpec, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class Network:
    """An ordered layer graph with synthetic weights."""

    name: str
    layers: list[LayerSpec]
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.layers:
            raise NetworkError(f"network {self.name!r} has no layers")
        self._weights: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def conv_specs(self) -> list[ConvSpec]:
        """The convolutional layers, in network order."""
        return [l for l in self.layers if isinstance(l, ConvSpec)]

    def num_conv_layers(self) -> int:
        return len(self.conv_specs())

    def weight_for(self, layer_index: int) -> np.ndarray:
        """Deterministic synthetic weights for layer ``layer_index``."""
        if layer_index not in self._weights:
            spec = self.layers[layer_index]
            if isinstance(spec, ConvSpec):
                shape: tuple[int, ...] = (spec.oc, spec.ic, spec.kh, spec.kw)
                scale = 1.0 / np.sqrt(spec.ic * spec.kh * spec.kw)
            elif isinstance(spec, ConnectedSpec):
                shape = (spec.outputs, spec.inputs)
                scale = 1.0 / np.sqrt(spec.inputs)
            else:
                raise NetworkError(f"layer {layer_index} ({spec!r}) has no weights")
            self._weights[layer_index] = synthetic_tensor(
                shape, seed=self.seed + layer_index, scale=scale
            )
        return self._weights[layer_index]

    # ------------------------------------------------------------------ #
    # functional inference
    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: np.ndarray,
        conv_fn: ConvFn | None = None,
        conv_fns: Mapping[int, ConvFn] | None = None,
        keep_outputs: bool = False,
    ):
        """Run single-image inference.

        ``conv_fn`` is used for every convolution unless ``conv_fns`` maps a
        *conv-layer ordinal* (1-based, matching ``ConvSpec.index``) to a
        specific implementation — the per-layer algorithm-selection hook.
        Returns the final output, or all per-layer outputs when
        ``keep_outputs`` is True.
        """
        if conv_fn is None:
            conv_fn = ref.conv2d_reference
        outputs: list[np.ndarray] = []
        conv_ordinal = 0
        value = np.asarray(x, dtype=np.float32)
        for i, spec in enumerate(self.layers):
            if isinstance(spec, ConvSpec):
                conv_ordinal += 1
                fn = conv_fn
                if conv_fns and conv_ordinal in conv_fns:
                    fn = conv_fns[conv_ordinal]
                spec.validate_input(value.shape)
                value = fn(spec, value, self.weight_for(i))
                if spec.batch_normalize:
                    value = self._apply_batchnorm(i, spec, value)
                value = ref.apply_activation(spec.activation, value)
            elif isinstance(spec, MaxPoolSpec):
                value = ref.maxpool_reference(spec, value)
            elif isinstance(spec, AvgPoolSpec):
                value = ref.avgpool_reference(spec, value)
            elif isinstance(spec, ConnectedSpec):
                value = ref.connected_reference(spec, value, self.weight_for(i))
                value = ref.apply_activation(spec.activation, value)
            elif isinstance(spec, ShortcutSpec):
                src = self._resolve(i, spec.from_index, outputs)
                if src.shape != value.shape:
                    raise ShapeError(
                        f"shortcut at layer {i}: {src.shape} vs {value.shape}"
                    )
                value = value + src
            elif isinstance(spec, RouteSpec):
                parts = [self._resolve(i, j, outputs) for j in spec.layers]
                value = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
            elif isinstance(spec, UpsampleSpec):
                value = ref.upsample_reference(spec, value)
            elif isinstance(spec, SoftmaxSpec):
                value = ref.softmax_reference(value)
            else:  # pragma: no cover - defensive
                raise NetworkError(f"unsupported layer {spec!r}")
            outputs.append(value)
        return outputs if keep_outputs else value

    def batchnorm_params(self, layer_index: int) -> tuple:
        """(mean, variance, scales, bias) for a conv layer.

        Deterministic synthetic values by default; loading a weights archive
        (:mod:`repro.nn.serialization`) can override them per layer.
        """
        spec = self.layers[layer_index]
        if not isinstance(spec, ConvSpec):
            raise NetworkError(f"layer {layer_index} is not convolutional")
        overrides = getattr(self, "_bn_overrides", None)
        if overrides and layer_index in overrides:
            return overrides[layer_index]
        base = self.seed + 7919 * (layer_index + 1)
        mean = 0.1 * synthetic_tensor((spec.oc,), seed=base)
        variance = 1.0 + 0.5 * synthetic_tensor((spec.oc,), seed=base + 1)
        scales = 1.0 + 0.2 * synthetic_tensor((spec.oc,), seed=base + 2)
        bias = 0.1 * synthetic_tensor((spec.oc,), seed=base + 3)
        return (
            mean.astype(np.float32), variance.astype(np.float32),
            scales.astype(np.float32), bias.astype(np.float32),
        )

    def _apply_batchnorm(self, layer_index: int, spec: ConvSpec,
                         value: np.ndarray) -> np.ndarray:
        from repro.nn.aux_kernels import batchnorm_forward

        return batchnorm_forward(value, *self.batchnorm_params(layer_index))

    def _resolve(self, at: int, ref_index: int, outputs: Sequence[np.ndarray]) -> np.ndarray:
        idx = at + ref_index if ref_index < 0 else ref_index
        if not 0 <= idx < at:
            raise NetworkError(
                f"layer {at} references layer {ref_index} (resolved {idx}) "
                f"which is not an earlier layer"
            )
        return outputs[idx]

    def forward_with_selector(self, x: np.ndarray, selector, hw):
        """Inference with the trained selector choosing each conv's algorithm.

        ``selector`` is a trained
        :class:`repro.selection.predictor.AlgorithmSelector`; ``hw`` the
        target :class:`repro.simulator.hwconfig.HardwareConfig`.  Predicted
        algorithms that cannot run a layer fall back to the 6-loop
        im2col+GEMM (the Winograd* rule).  Returns
        ``(output, {conv ordinal: algorithm name})``.
        """
        from repro.algorithms.registry import get_algorithm

        conv_fns = {}
        chosen: dict[int, str] = {}
        for spec in self.conv_specs():
            algo = get_algorithm(selector.select(spec, hw))
            if not algo.applicable(spec):
                algo = get_algorithm("im2col_gemm6")
            chosen[spec.index] = algo.name
            conv_fns[spec.index] = algo.conv_fn()
        return self.forward(x, conv_fns=conv_fns), chosen

    def total_conv_macs(self) -> int:
        return sum(s.macs for s in self.conv_specs())

    def describe(self) -> str:
        lines = [f"network {self.name}: {len(self.layers)} layers, "
                 f"{self.num_conv_layers()} convolutional"]
        for i, spec in enumerate(self.layers):
            lines.append(f"  [{i:3d}] {spec.describe() if isinstance(spec, ConvSpec) else spec}")
        return "\n".join(lines)
