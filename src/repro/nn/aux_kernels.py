"""The auxiliary Darknet kernels of a convolutional layer.

Paper I §IV: "we begin by vectorizing **all kernels** of the convolutional
layer in Darknet" — ``fill_cpu``, ``copy_cpu``, ``normalize_cpu``,
``add_bias``, ``scale_bias`` and ``activate_array`` — and the profile shows
GEMM taking 93.4 % of the layer's compute, the rest going to these
element-wise kernels and im2col.  This module provides all of them in the
library's three forms: functional NumPy, intrinsics on the vector machine,
and analytical phases that can be appended to any algorithm's schedule to
model a *complete* Darknet convolutional layer (bias/batch-norm/activation
included).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.isa.machine import Buffer, VectorMachine
from repro.nn.layer import DTYPE_BYTES, ConvSpec
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

_BN_EPS = 1e-5


# --------------------------------------------------------------------- #
# functional kernels (Darknet blas.c equivalents)
# --------------------------------------------------------------------- #
def fill_cpu(n: int, alpha: float) -> np.ndarray:
    """``fill_cpu``: a fresh buffer filled with ``alpha``."""
    return np.full(n, alpha, dtype=np.float32)


def copy_cpu(x: np.ndarray) -> np.ndarray:
    """``copy_cpu``: an independent copy."""
    return np.array(x, dtype=np.float32, copy=True)


def add_bias(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """``add_bias``: per-channel bias over (C, H, W)."""
    if x.ndim != 3 or bias.shape != (x.shape[0],):
        raise ShapeError(f"add_bias: {x.shape} with bias {bias.shape}")
    return (x + bias[:, None, None]).astype(np.float32)


def scale_bias(x: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """``scale_bias``: per-channel scale over (C, H, W)."""
    if x.ndim != 3 or scales.shape != (x.shape[0],):
        raise ShapeError(f"scale_bias: {x.shape} with scales {scales.shape}")
    return (x * scales[:, None, None]).astype(np.float32)


def normalize_cpu(
    x: np.ndarray, mean: np.ndarray, variance: np.ndarray
) -> np.ndarray:
    """``normalize_cpu``: per-channel batch-norm normalization."""
    if x.ndim != 3 or mean.shape != (x.shape[0],) or variance.shape != mean.shape:
        raise ShapeError(f"normalize: {x.shape} / {mean.shape} / {variance.shape}")
    return (
        (x - mean[:, None, None]) / np.sqrt(variance[:, None, None] + _BN_EPS)
    ).astype(np.float32)


def batchnorm_forward(
    x: np.ndarray, mean: np.ndarray, variance: np.ndarray,
    scales: np.ndarray, bias: np.ndarray,
) -> np.ndarray:
    """Darknet's inference batch-norm: normalize, scale, bias."""
    return add_bias(scale_bias(normalize_cpu(x, mean, variance), scales), bias)


# --------------------------------------------------------------------- #
# intrinsics kernels
# --------------------------------------------------------------------- #
def fill_vectorized(machine: VectorMachine, buf: Buffer, alpha: float) -> None:
    """Strip-mined ``fill_cpu`` on the vector machine."""
    n = buf.array.size
    i = 0
    while i < n:
        gvl = machine.vsetvl(n - i)
        machine.vbroadcast(0, alpha)
        machine.vstore(0, buf, i)
        i += gvl


def copy_vectorized(machine: VectorMachine, src: Buffer, dst: Buffer) -> None:
    """Strip-mined ``copy_cpu``."""
    n = min(src.array.size, dst.array.size)
    i = 0
    while i < n:
        gvl = machine.vsetvl(n - i)
        machine.vload(0, src, i)
        machine.vstore(0, dst, i)
        i += gvl


def batchnorm_vectorized(
    machine: VectorMachine, buf: Buffer, channels: int,
    mean: np.ndarray, variance: np.ndarray,
    scales: np.ndarray, bias: np.ndarray,
) -> None:
    """Per-channel normalize+scale+bias over a (C, spatial) buffer.

    The per-channel constants fold into one FMA per element:
    ``y = x * (s / sqrt(var+eps)) + (b - s*mean/sqrt(var+eps))``.
    """
    n = buf.array.size
    if n % channels:
        raise ShapeError(f"buffer of {n} elements not divisible by {channels}")
    spatial = n // channels
    inv = scales / np.sqrt(variance + _BN_EPS)
    off = bias - mean * inv
    for c in range(channels):
        machine.scalar(3, "bn_channel")
        i = 0
        while i < spatial:
            gvl = machine.vsetvl(spatial - i)
            machine.vload(0, buf, c * spatial + i)
            machine.vbroadcast(1, float(off[c]))
            machine.vfmacc_vf(1, float(inv[c]), 0)
            machine.vstore(1, buf, c * spatial + i)
            i += gvl


def leaky_activate_vectorized(machine: VectorMachine, buf: Buffer) -> None:
    """``activate_array`` with LEAKY: max(x, 0.1*x) per element."""
    n = buf.array.size
    i = 0
    while i < n:
        gvl = machine.vsetvl(n - i)
        machine.vload(0, buf, i)
        machine.vfmul_vf(1, 0.1, 0)
        machine.vfmax(0, 0, 1)
        machine.vstore(0, buf, i)
        i += gvl


# --------------------------------------------------------------------- #
# analytical phases
# --------------------------------------------------------------------- #
def aux_phases(
    spec: ConvSpec, hw: HardwareConfig, batch_normalize: bool = True,
    fused: bool = False,
) -> list[Phase]:
    """The element-wise tail of a Darknet conv layer.

    ``fill_cpu`` zeroes the output before GEMM accumulation; batch-norm
    (normalize + scale + bias) or plain bias follows; the activation pass
    closes the layer.  All passes stream the output tensor, which the
    producing phase just wrote (resident in a large-enough L2).

    With ``fused=True`` the whole tail folds into the convolution's output
    store (accumulators initialized in registers, BN constants folded into
    one FMA, activation applied before the store): a single register-level
    pass with no extra output round trips — the operator-fusion
    optimization every inference framework applies.
    """
    vle = hw.vlmax_f32
    elems = float(spec.oc * spec.oh * spec.ow)
    strips = elems / vle
    out_bytes = elems * DTYPE_BYTES

    def stream(name: str, write: bool = True) -> DataStream:
        return DataStream(
            name, bytes=out_bytes, passes=1.0, is_write=write,
            resident_source=True,
        )

    if fused:
        # one folded pass: BN-FMA + activation on the resident output strip
        return [
            Phase(
                name="fused_epilogue",
                vector_ops=(3.0 if batch_normalize else 2.0) * strips,
                vector_active=float(vle),
                vmem_ops=2.0 * strips,
                vmem_active=float(vle),
                scalar_ops=3.0 * spec.oc,
                streams=(
                    stream("output_epilogue_read", write=False),
                    stream("output_epilogue"),
                ),
            )
        ]

    fill = Phase(
        name="fill_cpu",
        vmem_ops=strips,
        vmem_active=float(vle),
        vector_ops=strips,
        vector_active=float(vle),
        scalar_ops=2.0 * strips,
        streams=(stream("output_zero"),),
    )
    bn_ops = 3.0 if batch_normalize else 1.0  # normalize+scale+bias vs bias
    bias = Phase(
        name="batchnorm" if batch_normalize else "add_bias",
        vector_ops=bn_ops * strips,
        vector_active=float(vle),
        vmem_ops=2.0 * strips,
        vmem_active=float(vle),
        scalar_ops=3.0 * spec.oc,
        streams=(stream("output_bn_read", write=False), stream("output_bn")),
    )
    activate = Phase(
        name="activate_array",
        vector_ops=2.0 * strips,
        vector_active=float(vle),
        vmem_ops=2.0 * strips,
        vmem_active=float(vle),
        scalar_ops=strips,
        streams=(stream("output_act_read", write=False), stream("output_act")),
    )
    return [fill, bias, activate]


def full_layer_phases(
    spec: ConvSpec, hw: HardwareConfig, algorithm: str = "im2col_gemm6",
    batch_normalize: bool = True,
) -> list[Phase]:
    """A complete Darknet conv layer: the algorithm plus the aux kernels."""
    from repro.algorithms.registry import effective_algorithm

    algo = effective_algorithm(algorithm, spec)
    return algo.schedule(spec, hw) + aux_phases(spec, hw, batch_normalize)
