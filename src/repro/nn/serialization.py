"""Network weight serialization (Darknet-style ``.weights`` equivalent).

Darknet ships trained models as a binary blob of per-layer parameters; the
synthetic equivalent here is an ``.npz`` archive keyed by layer index, with
batch-norm parameters stored alongside convolution weights.  ``save_weights``
/ ``load_weights`` round-trip a :class:`~repro.nn.network.Network` so that
a network customized with external parameters (or a perturbed copy) can be
persisted and re-served — the operational piece a model-serving deployment
needs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import ConnectedSpec, ConvSpec
from repro.nn.network import Network

#: Archive format version (stored under the "__meta__" key).
FORMAT_VERSION = 1


def save_weights(network: Network, path: str | Path) -> Path:
    """Serialize all weights (and BN parameters) to an ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "__meta__": np.array(
            [FORMAT_VERSION, len(network.layers)], dtype=np.int64
        )
    }
    for i, spec in enumerate(network.layers):
        if isinstance(spec, (ConvSpec, ConnectedSpec)):
            arrays[f"w{i}"] = network.weight_for(i)
        if isinstance(spec, ConvSpec) and spec.batch_normalize:
            mean, var, scales, bias = network.batchnorm_params(i)
            arrays[f"bn{i}"] = np.stack([mean, var, scales, bias])
    np.savez_compressed(path, **arrays)
    return path


def load_weights(network: Network, path: str | Path) -> Network:
    """Load an archive into a network (must match the layer structure).

    Returns the network (mutated in place) for chaining.  The archive's
    layer count and per-layer shapes are validated against the graph.
    """
    path = Path(path)
    if not path.exists():
        raise NetworkError(f"weights file {path} does not exist")
    with np.load(path) as data:
        meta = data.get("__meta__")
        if meta is None or int(meta[0]) != FORMAT_VERSION:
            raise NetworkError(f"{path} is not a version-{FORMAT_VERSION} archive")
        if int(meta[1]) != len(network.layers):
            raise NetworkError(
                f"{path} holds {int(meta[1])} layers, network has "
                f"{len(network.layers)}"
            )
        for i, spec in enumerate(network.layers):
            if isinstance(spec, (ConvSpec, ConnectedSpec)):
                key = f"w{i}"
                if key not in data:
                    raise NetworkError(f"{path} missing weights for layer {i}")
                expected = network.weight_for(i).shape
                if data[key].shape != expected:
                    raise NetworkError(
                        f"layer {i}: archive shape {data[key].shape} != "
                        f"network shape {expected}"
                    )
                network._weights[i] = data[key].astype(np.float32)
            if isinstance(spec, ConvSpec) and spec.batch_normalize:
                key = f"bn{i}"
                if key in data:
                    bn = data[key].astype(np.float32)
                    if bn.shape != (4, spec.oc):
                        raise NetworkError(
                            f"layer {i}: bad batch-norm block {bn.shape}"
                        )
                    network._bn_overrides = getattr(network, "_bn_overrides", {})
                    network._bn_overrides[i] = tuple(bn)
    return network
