"""Mini-Darknet: layer specifications, reference kernels, models, inference.

The paper evaluates convolutional layers of YOLOv3 and VGG-16 as implemented
in the Darknet framework.  This subpackage provides the synthetic equivalent:
exact layer dimensions from the paper's Table 1, a Darknet-style ``.cfg``
parser, NumPy reference implementations used as correctness oracles, and a
network executor that can run any of the four convolution algorithms on a
per-layer basis (which is how the algorithm-selection experiments compose
full-network execution times).
"""

from repro.nn.layer import (
    ConvSpec,
    MaxPoolSpec,
    AvgPoolSpec,
    ConnectedSpec,
    ShortcutSpec,
    RouteSpec,
    UpsampleSpec,
    SoftmaxSpec,
    LayerSpec,
)
from repro.nn.network import Network
from repro.nn.cfg import parse_cfg

__all__ = [
    "ConvSpec",
    "MaxPoolSpec",
    "AvgPoolSpec",
    "ConnectedSpec",
    "ShortcutSpec",
    "RouteSpec",
    "UpsampleSpec",
    "SoftmaxSpec",
    "LayerSpec",
    "Network",
    "parse_cfg",
]
