"""VGG-16 (Darknet variant) — image classification.

The 13 convolutional layers match the paper's Table 1 exactly at the default
224x224 input.  ``vgg16_network(input_size=...)`` scales spatial dimensions
down for functional tests (the performance study always uses 224).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn.cfg import parse_cfg
from repro.nn.layer import ConvSpec
from repro.nn.network import Network

#: Output channels per conv layer and pooling positions of VGG-16.
_STAGES: tuple[tuple[int, ...], ...] = ((64, 64), (128, 128), (256, 256, 256),
                                        (512, 512, 512), (512, 512, 512))

#: A Darknet-style cfg for VGG-16, used by the cfg-parser tests and the
#: custom-network example.  (The FC sizes follow Darknet's vgg-16.cfg.)
VGG16_CFG = """
[net]
channels=3
height=224
width=224

""" + "".join(
    (
        "".join(
            f"[convolutional]\nfilters={f}\nsize=3\nstride=1\npad=1\nactivation=relu\n\n"
            for f in stage
        )
        + "[maxpool]\nsize=2\nstride=2\n\n"
    )
    for stage in _STAGES
) + """
[connected]
output=4096
activation=relu

[connected]
output=4096
activation=relu

[connected]
output=1000
activation=linear

[softmax]
"""


def vgg16_conv_specs(input_size: int = 224) -> list[ConvSpec]:
    """The 13 conv layers of VGG-16 (Table 1 of the paper at 224)."""
    if input_size % 32:
        raise ConfigError(f"VGG-16 input size must be a multiple of 32, got {input_size}")
    specs: list[ConvSpec] = []
    c, hw = 3, input_size
    index = 0
    for stage in _STAGES:
        for filters in stage:
            index += 1
            specs.append(
                ConvSpec(
                    ic=c, oc=filters, ih=hw, iw=hw, kh=3, kw=3, stride=1,
                    index=index, activation="relu",
                )
            )
            c = filters
        hw //= 2
    return specs


def vgg16_network(input_size: int = 224) -> Network:
    """The full VGG-16 network (convs + pools + 3 FC + softmax)."""
    if input_size % 32:
        raise ConfigError(f"VGG-16 input size must be a multiple of 32, got {input_size}")
    cfg = VGG16_CFG.replace("height=224", f"height={input_size}").replace(
        "width=224", f"width={input_size}"
    )
    return parse_cfg(cfg, name=f"vgg16-{input_size}")
