"""YOLOv3-tiny — the smaller object-detection variant used in Paper I.

23 layers, 13 convolutional (the paper's "14x over baseline" RISC-VV result
was measured on this model).  Built programmatically with Darknet's
yolov3-tiny.cfg topology.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn.layer import (
    ConvSpec,
    LayerSpec,
    MaxPoolSpec,
    RouteSpec,
    UpsampleSpec,
)
from repro.nn.network import Network


def _build(input_size: int) -> list[LayerSpec]:
    if input_size % 32:
        raise ConfigError(
            f"YOLOv3-tiny input size must be a multiple of 32, got {input_size}"
        )
    layers: list[LayerSpec] = []
    shapes: list[tuple[int, int, int]] = []
    c, h, w = 3, input_size, input_size
    ordinal = 0

    def conv(filters: int, size: int) -> None:
        nonlocal c, h, w, ordinal
        ordinal += 1
        is_head = filters == 255
        spec = ConvSpec(
            ic=c, oc=filters, ih=h, iw=w, kh=size, kw=size, stride=1,
            index=ordinal, activation="linear" if is_head else "leaky",
            batch_normalize=not is_head,
        )
        layers.append(spec)
        c, h, w = spec.oc, spec.oh, spec.ow
        shapes.append((c, h, w))

    def pool(stride: int = 2, pad: int = 0) -> None:
        nonlocal h, w
        spec = MaxPoolSpec(c=c, ih=h, iw=w, size=2, stride=stride, pad=pad)
        layers.append(spec)
        h, w = spec.oh, spec.ow
        shapes.append((c, h, w))

    def route(refs: tuple[int, ...]) -> None:
        nonlocal c, h, w
        resolved = [len(layers) + r if r < 0 else r for r in refs]
        parts = [shapes[i] for i in resolved]
        c = sum(p[0] for p in parts)
        h, w = parts[0][1], parts[0][2]
        layers.append(RouteSpec(layers=refs, c=c, h=h, w=w))
        shapes.append((c, h, w))

    def upsample() -> None:
        nonlocal h, w
        layers.append(UpsampleSpec(c=c, ih=h, iw=w, stride=2))
        h, w = 2 * h, 2 * w
        shapes.append((c, h, w))

    def yolo() -> None:
        layers.append(RouteSpec(layers=(-1,), c=c, h=h, w=w))
        shapes.append((c, h, w))

    for filters in (16, 32, 64, 128, 256):
        conv(filters, 3)
        pool()
    conv(512, 3)
    pool(stride=1, pad=1)  # stride-1 "same" pool
    conv(1024, 3)
    conv(256, 1)
    conv(512, 3)
    conv(255, 1)
    yolo()
    route((-4,))
    conv(128, 1)
    upsample()
    route((-1, 8))
    conv(256, 3)
    conv(255, 1)
    yolo()
    return layers


def yolov3_tiny_network(input_size: int = 416) -> Network:
    """The full YOLOv3-tiny network."""
    return Network(name=f"yolov3-tiny-{input_size}", layers=_build(input_size))


def yolov3_tiny_conv_specs(input_size: int = 416) -> list[ConvSpec]:
    """The 13 convolutional layers of YOLOv3-tiny."""
    return [l for l in _build(input_size) if isinstance(l, ConvSpec)]
