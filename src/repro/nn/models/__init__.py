"""Model definitions: VGG-16, YOLOv3 and YOLOv3-tiny (Darknet variants)."""

from repro.nn.models.vgg16 import vgg16_conv_specs, vgg16_network, VGG16_CFG
from repro.nn.models.yolov3 import (
    yolov3_conv_specs,
    yolov3_network,
    yolov3_backbone_convs,
    yolov3_first20_layers,
)
from repro.nn.models.yolov3_tiny import yolov3_tiny_network, yolov3_tiny_conv_specs

__all__ = [
    "vgg16_conv_specs",
    "vgg16_network",
    "VGG16_CFG",
    "yolov3_conv_specs",
    "yolov3_network",
    "yolov3_backbone_convs",
    "yolov3_first20_layers",
    "yolov3_tiny_network",
    "yolov3_tiny_conv_specs",
]
