"""YOLOv3 (Darknet) — object detection.

The generator below reproduces the standard ``yolov3.cfg`` topology: the
Darknet-53 backbone (52 convolutions + residual shortcuts) and the
three-scale detection head (23 convolutions, routes and upsamples) — 75
convolutional layers among 107 total, as the paper states.

The paper's experiments simulate the first 20 network layers, of which 15
are convolutional; their dimensions match the paper's Table 1.  (Table 1 as
printed lists layer #4 with IC=64; layer #3 outputs 32 channels, so the
consistent value — and the one in the real yolov3.cfg — is IC=32.  We encode
IC=32.)
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.nn.layer import ConvSpec, LayerSpec, RouteSpec, ShortcutSpec, UpsampleSpec
from repro.nn.network import Network

#: Darknet-53 residual stages: (downsample filters, residual block count).
_BACKBONE_STAGES: tuple[tuple[int, int], ...] = (
    (64, 1),
    (128, 2),
    (256, 8),
    (512, 8),
    (1024, 4),
)


class _Builder:
    """Tracks (c, h, w) while appending layers, like Darknet's parser."""

    def __init__(self, input_size: int) -> None:
        if input_size % 32:
            raise ConfigError(
                f"YOLOv3 input size must be a multiple of 32, got {input_size}"
            )
        self.layers: list[LayerSpec] = []
        self.shapes: list[tuple[int, int, int]] = []
        self.c, self.h, self.w = 3, input_size, input_size
        self.conv_ordinal = 0

    def conv(self, filters: int, size: int, stride: int = 1) -> None:
        self.conv_ordinal += 1
        is_head = filters == 255
        spec = ConvSpec(
            ic=self.c, oc=filters, ih=self.h, iw=self.w, kh=size, kw=size,
            stride=stride, index=self.conv_ordinal,
            activation="linear" if is_head else "leaky",
            batch_normalize=not is_head,
        )
        self.layers.append(spec)
        self.c, self.h, self.w = spec.oc, spec.oh, spec.ow
        self.shapes.append((self.c, self.h, self.w))

    def shortcut(self, frm: int) -> None:
        self.layers.append(ShortcutSpec(from_index=frm, c=self.c, h=self.h, w=self.w))
        self.shapes.append((self.c, self.h, self.w))

    def route(self, refs: tuple[int, ...]) -> None:
        resolved = [len(self.layers) + r if r < 0 else r for r in refs]
        parts = [self.shapes[i] for i in resolved]
        self.c = sum(p[0] for p in parts)
        self.h, self.w = parts[0][1], parts[0][2]
        self.layers.append(RouteSpec(layers=refs, c=self.c, h=self.h, w=self.w))
        self.shapes.append((self.c, self.h, self.w))

    def upsample(self, stride: int = 2) -> None:
        self.layers.append(UpsampleSpec(c=self.c, ih=self.h, iw=self.w, stride=stride))
        self.h *= stride
        self.w *= stride
        self.shapes.append((self.c, self.h, self.w))

    def yolo(self) -> None:
        # detection decode: modelled as a passthrough route (no conv compute)
        self.layers.append(RouteSpec(layers=(-1,), c=self.c, h=self.h, w=self.w))
        self.shapes.append((self.c, self.h, self.w))


def _build(input_size: int) -> _Builder:
    b = _Builder(input_size)
    # --- Darknet-53 backbone -------------------------------------------- #
    b.conv(32, 3)
    for filters, blocks in _BACKBONE_STAGES:
        b.conv(filters, 3, stride=2)
        for _ in range(blocks):
            b.conv(filters // 2, 1)
            b.conv(filters, 3)
            b.shortcut(-3)
    # --- detection head, scale 1 (stride 32) ----------------------------- #
    for _ in range(3):
        b.conv(512, 1)
        b.conv(1024, 3)
    b.conv(255, 1)
    b.yolo()
    # --- scale 2 (stride 16) --------------------------------------------- #
    b.route((-4,))
    b.conv(256, 1)
    b.upsample()
    b.route((-1, 61))
    for _ in range(3):
        b.conv(256, 1)
        b.conv(512, 3)
    b.conv(255, 1)
    b.yolo()
    # --- scale 3 (stride 8) ---------------------------------------------- #
    b.route((-4,))
    b.conv(128, 1)
    b.upsample()
    b.route((-1, 36))
    for _ in range(3):
        b.conv(128, 1)
        b.conv(256, 3)
    b.conv(255, 1)
    b.yolo()
    return b


def yolov3_network(input_size: int = 608) -> Network:
    """The full 107-layer YOLOv3 network at the given input size."""
    return Network(name=f"yolov3-{input_size}", layers=_build(input_size).layers)


def yolov3_backbone_convs(input_size: int = 608) -> list[ConvSpec]:
    """All 75 convolutional layers of YOLOv3, in network order."""
    return [l for l in _build(input_size).layers if isinstance(l, ConvSpec)]


def yolov3_first20_layers(input_size: int = 608) -> list[LayerSpec]:
    """The first 20 network layers the paper simulates (15 convolutional)."""
    return _build(input_size).layers[:20]


def yolov3_conv_specs(input_size: int = 608, count: int = 15) -> list[ConvSpec]:
    """The first ``count`` convolutional layers (paper: 15, Table 1)."""
    convs = yolov3_backbone_convs(input_size)
    if count > len(convs):
        raise ConfigError(f"YOLOv3 has {len(convs)} conv layers, requested {count}")
    return convs[:count]
