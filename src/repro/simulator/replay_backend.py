"""Replay backend registry: NumPy always, Numba-compiled when installed.

The trace-replay hot spots (the true-LRU set update and the chime/cost
folds) have two interchangeable implementations:

* ``numpy`` — the set-partitioned / vectorized engines from PR 2–3,
  always available;
* ``compiled`` — the single-pass Numba kernels in
  :mod:`repro.simulator._compiled`, registered only when the optional
  ``[compiled]`` extra (Numba) is importable.

Both are **bit-identical** by contract — same :class:`TimingResult`
floats, same cache tags/dirty/LRU ticks, same victim streams — so
``auto`` (the default everywhere) freely selects the fastest registered
backend.  Selection is observable: :mod:`repro.simulator.timing` bumps a
``timing.replay_backend.<name>`` counter for the backend that actually
ran, so profiles are self-describing.

The registry is deliberately tiny: a backend is three callables sharing
fixed signatures (`replay_sets`, `vector_cost_fold`, `memory_cost_fold`)
plus a name.  The sharded parallel driver
(:mod:`repro.simulator.replay_parallel`) resolves backends *inside each
worker process*, so a pool spanning machines with and without Numba
would still replay identically (just at different speeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np

from repro.errors import SimulationError
from repro.simulator import _compiled

#: Valid backend arguments (`auto` resolves to the fastest registered).
BACKEND_CHOICES = ("auto", "compiled", "numpy")


class MemoryCostParams(NamedTuple):
    """Scalar pricing constants for the per-memory-op cost fold."""

    datapath: float
    nonunit_factor: float
    startup_cycles: float
    l2_latency: float
    mlp: float
    dram_latency: float
    prefetch_factor: float
    line_bytes: int
    bytes_per_cycle: float
    vector_at_l2: bool


@dataclass(frozen=True)
class ReplayBackend:
    """One interchangeable implementation of the replay hot loops.

    ``replay_sets(tags, dirty, lru, sets, lines, stores, positions,
    tick0)`` mutates the cache state arrays in place and returns
    per-access ``(hits, writebacks, victims)``; the fold callables
    return the strict left-to-right accumulated cycle totals.
    """

    name: str
    replay_sets: Callable
    vector_cost_fold: Callable
    memory_cost_fold: Callable


def exact_sum(costs: np.ndarray) -> float:
    """Strict left-to-right fold of ``costs`` starting from 0.0.

    ``np.add.accumulate`` is sequential by definition (unlike
    ``np.sum``'s pairwise reduction), so this reproduces the sequential
    replay's ``res.field += cost`` accumulation bit for bit.
    """
    if costs.size == 0:
        return 0.0
    return float(np.add.accumulate(costs)[-1])


# --------------------------------------------------------------------- #
# numpy backend — the PR 2–3 vectorized engines
# --------------------------------------------------------------------- #
def _replay_sets_numpy(
    tags: np.ndarray,
    dirty: np.ndarray,
    lru: np.ndarray,
    sets: np.ndarray,
    lines: np.ndarray,
    stores: np.ndarray,
    positions: np.ndarray,
    tick0: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Set-partitioned true-LRU replay: all touched sets advance per step.

    Each set's reference stream is independent under set-associative
    LRU, so one NumPy step advances every still-active set by one access
    — Python-level work per access drops by the number of touched sets.
    """
    n = lines.size
    hits = np.zeros(n, dtype=bool)
    writebacks = np.zeros(n, dtype=bool)
    victims = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return hits, writebacks, victims
    order = np.argsort(sets, kind="stable")
    uniq, starts, counts = np.unique(
        sets[order], return_index=True, return_counts=True
    )
    # order touched sets by access count so the sets still active at any
    # time step are a shrinking prefix
    by_count = np.argsort(-counts, kind="stable")
    uniq, starts, counts = uniq[by_count], starts[by_count], counts[by_count]
    k = uniq.size
    row_ids = np.arange(k)
    for t in range(int(counts[0])):
        while counts[k - 1] <= t:
            k -= 1
        rows = uniq[:k]
        g = order[starts[:k] + t]  # original stream positions, one per set
        addr = lines[g]
        st = stores[g]
        tg = tags[rows]  # (k, assoc) gather
        match = tg == addr[:, None]
        hit = match.any(axis=1)
        invalid = tg == -1
        # victim way on a miss: first invalid way if any, else true LRU
        # (argmax/argmin both take the first way on ties, as the
        # sequential np.nonzero(...)[0] / np.argmin do)
        way = np.where(
            hit,
            match.argmax(axis=1),
            np.where(
                invalid.any(axis=1),
                invalid.argmax(axis=1),
                lru[rows].argmin(axis=1),
            ),
        )
        old_tag = tg[row_ids[:k], way]
        old_dirty = dirty[rows, way]
        wb = ~hit & (old_tag != -1) & old_dirty
        hits[g] = hit
        writebacks[g] = wb
        victims[g[wb]] = old_tag[wb]
        tags[rows, way] = addr
        dirty[rows, way] = np.where(hit, old_dirty | st, st)
        # the sequential path bumps the tick before each access, so the
        # access at global stream position p lands tick0 + p + 1
        lru[rows, way] = tick0 + 1 + positions[g]
    return hits, writebacks, victims


def _vector_cost_fold_numpy(
    vl: np.ndarray, sew_bits: np.ndarray, datapath: float, issue_cycles: float
) -> float:
    """Vector chimes as one reduction over the vl/sew columns."""
    denom = np.maximum(1.0, (datapath * 32) / sew_bits)
    cost = np.maximum(issue_cycles, np.ceil(vl / denom))
    return exact_sum(cost)


def _memory_cost_fold_numpy(
    vl: np.ndarray,
    elem_bytes: np.ndarray,
    stride: np.ndarray,
    indexed: np.ndarray,
    l1_misses: np.ndarray,
    l2_misses: np.ndarray,
    params: MemoryCostParams,
) -> float:
    """Price every memory op in one vectorized pass, then fold."""
    unit = ~indexed & (np.abs(stride) == elem_bytes)
    eff_dp = np.where(
        unit, float(params.datapath), params.datapath / params.nonunit_factor
    )
    chime = np.ceil(vl / np.maximum(1.0, eff_dp))
    penalty = (l1_misses * params.l2_latency) / params.mlp
    penalty = penalty + (l2_misses * params.dram_latency) / (
        params.mlp * params.prefetch_factor
    )
    if params.vector_at_l2:
        # decoupled VPU: every vector access pays the L2 round trip
        # (hit or miss), partially pipelined
        round_trips = np.maximum(1.0, (vl * elem_bytes) / params.line_bytes)
        penalty = penalty + (round_trips * params.l2_latency) / params.mlp
    # line fills also consume DRAM bandwidth
    penalty = np.maximum(
        penalty, (l2_misses * params.line_bytes) / params.bytes_per_cycle
    )
    return exact_sum((params.startup_cycles + chime) + penalty)


# --------------------------------------------------------------------- #
# compiled backend — thin wrappers over the njit kernels
# --------------------------------------------------------------------- #
def _replay_sets_compiled(
    tags, dirty, lru, sets, lines, stores, positions, tick0
):
    n = lines.size
    hits = np.zeros(n, dtype=bool)
    writebacks = np.zeros(n, dtype=bool)
    victims = np.full(n, -1, dtype=np.int64)
    if n:
        _compiled.replay_sets_kernel(
            tags, dirty, lru, sets, lines, stores, positions, tick0,
            hits, writebacks, victims,
        )
    return hits, writebacks, victims


def _vector_cost_fold_compiled(vl, sew_bits, datapath, issue_cycles):
    if vl.size == 0:
        return 0.0
    return float(
        _compiled.vector_cost_fold_kernel(
            np.ascontiguousarray(vl, dtype=np.int64),
            np.ascontiguousarray(sew_bits, dtype=np.int64),
            float(datapath),
            float(issue_cycles),
        )
    )


def _memory_cost_fold_compiled(
    vl, elem_bytes, stride, indexed, l1_misses, l2_misses,
    params: MemoryCostParams,
):
    if vl.size == 0:
        return 0.0
    return float(
        _compiled.memory_cost_fold_kernel(
            np.ascontiguousarray(vl, dtype=np.int64),
            np.ascontiguousarray(elem_bytes, dtype=np.int64),
            np.ascontiguousarray(stride, dtype=np.int64),
            np.ascontiguousarray(indexed, dtype=bool),
            np.ascontiguousarray(l1_misses, dtype=np.int64),
            np.ascontiguousarray(l2_misses, dtype=np.int64),
            float(params.datapath),
            float(params.nonunit_factor),
            float(params.startup_cycles),
            float(params.l2_latency),
            float(params.mlp),
            float(params.dram_latency),
            float(params.prefetch_factor),
            int(params.line_bytes),
            float(params.bytes_per_cycle),
            bool(params.vector_at_l2),
        )
    )


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
NUMPY_BACKEND = ReplayBackend(
    "numpy",
    _replay_sets_numpy,
    _vector_cost_fold_numpy,
    _memory_cost_fold_numpy,
)

_REGISTRY: dict[str, ReplayBackend] = {"numpy": NUMPY_BACKEND}

if _compiled.HAVE_NUMBA:
    _REGISTRY["compiled"] = ReplayBackend(
        "compiled",
        _replay_sets_compiled,
        _vector_cost_fold_compiled,
        _memory_cost_fold_compiled,
    )


def available_backends() -> tuple[str, ...]:
    """Names of the registered (directly runnable) backends."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str | None = "auto") -> ReplayBackend:
    """Map a backend argument to an implementation.

    ``auto`` (or ``None``) prefers ``compiled`` when Numba is installed
    and falls back to ``numpy`` otherwise — both are bit-identical, so
    the choice only affects speed.  Asking for ``compiled`` explicitly
    without Numba raises a :class:`SimulationError` naming the extra.
    """
    if name is None or name == "auto":
        return _REGISTRY.get("compiled", NUMPY_BACKEND)
    backend = _REGISTRY.get(name)
    if backend is None:
        if name == "compiled":
            raise SimulationError(
                "replay backend 'compiled' needs Numba — install the "
                "[compiled] extra (pip install repro[compiled]) or use "
                "backend='auto'/'numpy'"
            )
        raise SimulationError(
            f"unknown replay backend {name!r}; choose from {BACKEND_CHOICES} "
            f"(registered: {available_backends()})"
        )
    return backend
