"""Hardware configurations from INI files (the gem5-config workflow).

gem5 users drive sweeps from config scripts; the equivalent here is a small
INI dialect so hardware design points can live in version-controlled files
(see ``configs/`` at the repository root) instead of code:

```ini
[hardware]
name = my-design
vlen_bits = 2048
style = integrated      ; or: decoupled
l2_mib = 4
isa = rvv               ; or: sve
software_prefetch = false
```

Unknown keys are rejected (a typo must not silently become a default).
"""

from __future__ import annotations

import configparser
from pathlib import Path

from repro.errors import ConfigError
from repro.simulator.hwconfig import HardwareConfig, VectorUnitStyle

_INT_FIELDS = {
    "vlen_bits", "vector_lanes", "l1_kib", "l1_assoc", "l1_latency",
    "line_bytes", "l2_assoc", "l2_latency", "dram_latency",
}
_FLOAT_FIELDS = {"freq_ghz", "l2_mib", "dram_bw_gib_s"}
_BOOL_FIELDS = {"software_prefetch", "hardware_prefetch", "out_of_order"}
_STR_FIELDS = {"name", "isa"}
_ALL_FIELDS = _INT_FIELDS | _FLOAT_FIELDS | _BOOL_FIELDS | _STR_FIELDS | {"style"}


def parse_hardware_ini(text: str) -> HardwareConfig:
    """Parse INI text with a ``[hardware]`` section into a config."""
    parser = configparser.ConfigParser(inline_comment_prefixes=(";", "#"))
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ConfigError(f"malformed hardware ini: {exc}") from exc
    if "hardware" not in parser:
        raise ConfigError("hardware ini needs a [hardware] section")
    section = parser["hardware"]
    kwargs: dict = {}
    for key, raw in section.items():
        if key not in _ALL_FIELDS:
            raise ConfigError(f"unknown hardware option {key!r}")
        if key == "style":
            try:
                kwargs["style"] = VectorUnitStyle(raw.strip().lower())
            except ValueError:
                raise ConfigError(
                    f"style must be 'integrated' or 'decoupled', got {raw!r}"
                )
        elif key in _INT_FIELDS:
            try:
                kwargs[key] = int(raw)
            except ValueError:
                raise ConfigError(f"{key} must be an integer, got {raw!r}")
        elif key in _FLOAT_FIELDS:
            try:
                kwargs[key] = float(raw)
            except ValueError:
                raise ConfigError(f"{key} must be a number, got {raw!r}")
        elif key in _BOOL_FIELDS:
            lowered = raw.strip().lower()
            if lowered in ("true", "yes", "1", "on"):
                kwargs[key] = True
            elif lowered in ("false", "no", "0", "off"):
                kwargs[key] = False
            else:
                raise ConfigError(f"{key} must be a boolean, got {raw!r}")
        else:
            kwargs[key] = raw.strip()
    return HardwareConfig(**kwargs)


def load_hardware_config(path: str | Path) -> HardwareConfig:
    """Load a hardware config from an ``.ini`` file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"hardware config file {path} does not exist")
    return parse_hardware_ini(path.read_text())


def builtin_config_dir() -> Path:
    """The repository's ``configs/`` directory of preset design points."""
    return Path(__file__).resolve().parents[3] / "configs"
