"""DRAM timing model.

A simple bandwidth/latency model of the paper's DDR3-1600 configuration:
12.8 GiB/s per core and a fixed access latency.  Used by both the
trace-driven and the analytical timing engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DramModel:
    """Bandwidth + latency DRAM model (per core)."""

    bytes_per_cycle: float
    latency_cycles: int = 100
    #: Effective memory-level parallelism: how many outstanding line fills
    #: overlap, amortizing latency.  The in-order MinorCPU with a vector unit
    #: sustains a handful of outstanding lines.
    mlp: float = 4.0

    def __post_init__(self) -> None:
        check_positive("bytes_per_cycle", self.bytes_per_cycle)
        check_positive("latency_cycles", self.latency_cycles)
        check_positive("mlp", self.mlp)

    def transfer_cycles(self, nbytes: float) -> float:
        """Cycles to stream ``nbytes`` at peak bandwidth."""
        return nbytes / self.bytes_per_cycle

    def miss_penalty_cycles(self, misses: int, prefetch: bool = False) -> float:
        """Exposed latency cycles for ``misses`` line fills.

        With software/hardware prefetching most of the latency is hidden;
        we model that as a 4x higher effective MLP.
        """
        mlp = self.mlp * (4.0 if prefetch else 1.0)
        return misses * self.latency_cycles / mlp

    @staticmethod
    def from_config(config) -> "DramModel":
        return DramModel(
            bytes_per_cycle=config.dram_bytes_per_cycle,
            latency_cycles=config.dram_latency,
        )
