"""Chip-area models for the performance-area Pareto analyses.

Reproduces the papers' 7 nm FinFET area methodology: core/VPU/VRF areas
estimated at 22 nm from Lazo et al.'s adaptable-register-file data, scaled by
the conservative 6.2x density factor, plus a PCacti-like SRAM model for the
shared L2.  Two scaling laws are provided, matching the two papers:

* Paper II (tightly integrated unit): VPU+VRF take 28/43/60/75 % of the
  non-L2 chip area at 512/1024/2048/4096-bit vectors;
* Paper I (decoupled unit, 8 lanes): only the VRF grows with the vector
  length — 3/6.9/12.68/22.5/36.9 % at 512...8192 bits.
"""

from repro.simulator.area.sram import sram_area_mm2
from repro.simulator.area.chip import (
    chip_area_mm2,
    core_area_mm2,
    multicore_area_mm2,
    AreaModel,
)

__all__ = [
    "sram_area_mm2",
    "chip_area_mm2",
    "core_area_mm2",
    "multicore_area_mm2",
    "AreaModel",
]
