"""PCacti-like SRAM area model at 7 nm.

A cache macro's area is bit-cell area plus peripheral overhead (decoders,
sense amps, tags).  At the 7 nm node the dense SRAM bit cell is ~0.027 um^2;
with array efficiency, tags and routing a cache lands near 0.45 mm^2 per MiB
— calibrated so the paper's largest Paper I configuration (256 MB) drives
the chip toward its reported ~125 mm^2.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: Effective area per MiB of L2 at 7 nm, including tags and periphery.
MM2_PER_MIB_7NM = 0.45
#: Fixed controller/interface overhead per cache instance.
BASE_MM2 = 0.05
#: Banking makes very large caches slightly sub-linear in area.
BANK_EXPONENT = 0.98


def sram_area_mm2(size_mib: float) -> float:
    """Area (mm^2) of an L2 SRAM of ``size_mib`` MiB at 7 nm."""
    if size_mib <= 0:
        raise ConfigError(f"cache size must be positive, got {size_mib}")
    return BASE_MM2 + MM2_PER_MIB_7NM * size_mib**BANK_EXPONENT
