"""Core/VPU/VRF area scaling and chip composition at 7 nm.

The anchors come straight from the papers:

* Paper II §4.4: "the chip area dedicated to the VPU and VRF consumes ~28 %,
  ~43 %, ~60 % and ~75 % of total [non-L2] chip area as we increase vector
  lengths from 512 to 4096 bits", and the Pareto-optimal single-instance
  configuration (2048 bits + 1 MB L2) occupies **2.35 mm^2** — which pins
  the scalar-core area.
* Paper I §VIII: with a decoupled 8-lane VPU only the register file grows —
  3 / 6.9 / 12.68 / 22.5 / 36.9 % of chip area from 512 to 8192 bits.
* Both scale 22 nm estimates to 7 nm with a conservative 6.2x density gain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simulator.area.sram import sram_area_mm2

#: Paper II: fraction of non-L2 chip area used by VPU+VRF per vector length.
PAPER2_VPU_FRACTION: dict[int, float] = {
    512: 0.28,
    1024: 0.43,
    2048: 0.60,
    4096: 0.75,
}

#: Paper I: fraction of non-L2 chip area used by the VRF per vector length.
PAPER1_VRF_FRACTION: dict[int, float] = {
    512: 0.03,
    1024: 0.069,
    2048: 0.1268,
    4096: 0.225,
    8192: 0.369,
    16384: 0.54,  # extrapolated (VRF doubles, rest constant)
}

#: Scalar core + uncore area at 7 nm, from the 2.35 mm^2 anchor:
#: 2.35 = core / (1 - 0.60) + sram(1 MiB)  =>  core ~ 0.74 mm^2.
PAPER2_CORE_MM2 = (2.35 - sram_area_mm2(1.0)) * (1.0 - PAPER2_VPU_FRACTION[2048])

#: Paper I scalar core + fixed 8-lane VPU at 7 nm (22 nm estimate / 6.2).
PAPER1_BASE_MM2 = 4.0

#: 22 nm -> 7 nm conservative density gain used by both papers.
DENSITY_SCALE_22_TO_7 = 6.2


def _fraction(table: dict[int, float], vlen_bits: int) -> float:
    """Fraction lookup with geometric interpolation between known points."""
    if vlen_bits in table:
        return table[vlen_bits]
    keys = sorted(table)
    if vlen_bits < keys[0] or vlen_bits > keys[-1]:
        raise ConfigError(
            f"no area data for vector length {vlen_bits} (known: {keys})"
        )
    lo = max(k for k in keys if k < vlen_bits)
    hi = min(k for k in keys if k > vlen_bits)
    t = (math.log2(vlen_bits) - math.log2(lo)) / (math.log2(hi) - math.log2(lo))
    return table[lo] + t * (table[hi] - table[lo])


def core_area_mm2(vlen_bits: int, model: str = "paper2") -> float:
    """Area of one core (scalar + vector unit + VRF, no L2) at 7 nm."""
    if model == "paper2":
        frac = _fraction(PAPER2_VPU_FRACTION, vlen_bits)
        return PAPER2_CORE_MM2 / (1.0 - frac)
    if model == "paper1":
        frac = _fraction(PAPER1_VRF_FRACTION, vlen_bits)
        return PAPER1_BASE_MM2 / (1.0 - frac)
    raise ConfigError(f"unknown area model {model!r} (paper1/paper2)")


def chip_area_mm2(vlen_bits: int, l2_mib: float, model: str = "paper2") -> float:
    """Single-core chip area: core + shared L2."""
    return core_area_mm2(vlen_bits, model) + sram_area_mm2(l2_mib)


def multicore_area_mm2(
    cores: int, vlen_bits: int, l2_mib: float, model: str = "paper2"
) -> float:
    """Multi-core chip: ``cores`` replicated cores + one shared L2."""
    if cores < 1:
        raise ConfigError(f"cores must be >= 1, got {cores}")
    return cores * core_area_mm2(vlen_bits, model) + sram_area_mm2(l2_mib)


@dataclass(frozen=True)
class AreaModel:
    """Convenience bundle fixing the scaling law."""

    model: str = "paper2"

    def core(self, vlen_bits: int) -> float:
        return core_area_mm2(vlen_bits, self.model)

    def chip(self, vlen_bits: int, l2_mib: float) -> float:
        return chip_area_mm2(vlen_bits, l2_mib, self.model)

    def multicore(self, cores: int, vlen_bits: int, l2_mib: float) -> float:
        return multicore_area_mm2(cores, vlen_bits, l2_mib, self.model)
