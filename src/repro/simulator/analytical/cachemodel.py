"""Cache-residency and DRAM-traffic estimation for data streams.

The model is the classical capacity argument with a smooth transition:
between two passes over a stream, ``reuse_ws`` bytes must survive in the L2.
If the effective cache capacity ``C`` exceeds the working set, the second
pass hits; if it is much smaller, the pass re-streams from DRAM.  In between
we interpolate with the *fractional residency* ``C / ws`` — the LRU
steady-state fraction of the working set that is still cached when revisited
under competing traffic.  This smoothness matters twice: it reproduces the
gradual cache-size scaling curves of the paper's Figs. 5-8 (instead of
cliffs), and it gives the random-forest selector a learnable surface.
"""

from __future__ import annotations

from repro.simulator.analytical.phases import DataStream
from repro.simulator.hwconfig import HardwareConfig

#: Fraction of the L2 usable by one stream's reuse window.  Conflict misses,
#: other streams and metadata keep LRU from using the full capacity.
L2_EFFICIENCY = 0.85


def effective_l2_bytes(config: HardwareConfig) -> float:
    """Usable L2 capacity for reuse-window retention."""
    return L2_EFFICIENCY * config.l2_bytes


def residency(reuse_ws: float, cache_bytes: float) -> float:
    """Fraction of a reuse working set still resident on the next pass."""
    if reuse_ws <= 0.0:
        return 1.0
    return min(1.0, cache_bytes / reuse_ws)


def stream_dram_bytes(
    stream: DataStream, config: HardwareConfig, calibration=None
) -> float:
    """DRAM traffic for one stream during a phase.

    The first pass is compulsory (reads fetch from DRAM; writes allocate and
    eventually write back).  Each additional pass misses on the fraction of
    the reuse working set that was evicted.
    """
    from repro.simulator.analytical.calibration import DEFAULT_CALIBRATION

    cal = calibration or DEFAULT_CALIBRATION
    cache = effective_l2_bytes(config)
    res = residency(stream.reuse_ws, cache)
    compulsory = stream.bytes
    if stream.resident_source and cal.enable_resident_source:
        # produced by an earlier phase / the previous layer: the fraction of
        # the footprint still cached does not re-fetch from DRAM
        compulsory *= 1.0 - residency(stream.bytes, cache)
    extra = stream.bytes * (stream.passes - 1.0) * (1.0 - res)
    return compulsory + extra


def stream_l2_bytes(stream: DataStream) -> float:
    """L2-port traffic: every pass streams through the L2 interface."""
    return stream.bytes * stream.passes


def phase_dram_bytes(streams, config: HardwareConfig) -> float:
    """Total DRAM traffic over a phase's streams."""
    return sum(stream_dram_bytes(s, config) for s in streams)


def phase_l2_bytes(streams) -> float:
    """Total L2-port traffic over a phase's streams."""
    return sum(stream_l2_bytes(s) for s in streams)
