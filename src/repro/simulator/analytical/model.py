"""The analytical timing engine: schedules -> cycles.

Per phase::

    vec    = vector_ops * max(issue, chime(active))            # VPU
           + vmem_ops * (vmem_issue + chime'(active, stride))
    scalar = scalar_ops * cpi                                  # scalar pipe
    l2     = L2 traffic / L2 bytes-per-cycle                   # L2 port
    dram   = DRAM traffic / (efficiency * peak bytes-per-cycle)

    cycles = max(vec, scalar, l2, dram)
           + latency_exposure * dram-line-misses * dram-latency / MLP
           + phase_startup

The four ``max`` lanes model the four independent resources (vector unit,
scalar pipe, L2 port, DRAM channel) that pipeline against each other; the
latency adder models the fraction of miss latency an in-order core cannot
hide (reduced by prefetching).  Layer cycles are the sum over phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.simulator.analytical.cachemodel import (
    phase_l2_bytes,
    stream_dram_bytes,
)
from repro.simulator.analytical.calibration import DEFAULT_CALIBRATION, Calibration
from repro.simulator.analytical.phases import Phase
from repro.simulator.hwconfig import HardwareConfig, VectorUnitStyle
from repro.simulator.memory import DramModel


@dataclass
class PhaseCycles:
    """Cycle breakdown for one phase."""

    name: str
    vector_cycles: float
    scalar_cycles: float
    l2_cycles: float
    dram_cycles: float
    latency_cycles: float
    startup_cycles: float
    dram_bytes: float
    l2_bytes: float

    @property
    def cycles(self) -> float:
        return (
            max(self.vector_cycles, self.scalar_cycles, self.l2_cycles,
                self.dram_cycles)
            + self.latency_cycles
            + self.startup_cycles
        )

    @property
    def bound(self) -> str:
        """Which resource dominates this phase."""
        lanes = {
            "vector": self.vector_cycles,
            "scalar": self.scalar_cycles,
            "l2": self.l2_cycles,
            "dram": self.dram_cycles,
        }
        return max(lanes, key=lanes.get)


@dataclass
class LayerCycles:
    """Cycle estimate for one layer under one algorithm and config."""

    algorithm: str
    phases: list[PhaseCycles] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(p.cycles for p in self.phases)

    @property
    def dram_bytes(self) -> float:
        return sum(p.dram_bytes for p in self.phases)

    def seconds(self, freq_ghz: float) -> float:
        return self.cycles / (freq_ghz * 1e9)

    def dominant_bound(self) -> str:
        """The resource bound of the most expensive phase."""
        if not self.phases:
            return "none"
        top = max(self.phases, key=lambda p: p.cycles)
        return top.bound

    def breakdown(self) -> dict[str, float]:
        return {p.name: p.cycles for p in self.phases}


class AnalyticalTimingModel:
    """Evaluate algorithm schedules on a hardware configuration."""

    def __init__(
        self,
        config: HardwareConfig,
        calibration: Calibration | None = None,
    ) -> None:
        self.config = config
        self.cal = calibration or DEFAULT_CALIBRATION
        self.dram = DramModel.from_config(config)

    # ------------------------------------------------------------------ #
    def _chime(self, active: float, nonunit: bool = False) -> float:
        """Execution cycles of one vector instruction with ``active`` elems."""
        datapath = self.config.datapath_f32_per_cycle
        if nonunit:
            datapath = datapath / self.cal.nonunit_penalty
        return max(1.0, math.ceil(active / max(1.0, datapath)))

    def phase_cycles(self, phase: Phase) -> PhaseCycles:
        """Time one phase."""
        cal = self.cal
        cfg = self.config

        deadtime = (
            cal.decoupled_deadtime
            if cfg.style is VectorUnitStyle.DECOUPLED
            else 0.0
        )
        vec = phase.vector_ops * (
            max(cal.vector_issue, self._chime(phase.vector_active)) + deadtime
        )
        if phase.vmem_ops:
            unit_ops = phase.vmem_ops * (1.0 - phase.nonunit_fraction)
            strided_ops = phase.vmem_ops * phase.nonunit_fraction
            vec += unit_ops * (
                cal.vmem_issue + self._chime(phase.vmem_active) + deadtime
            )
            vec += strided_ops * (
                cal.vmem_issue
                + self._chime(phase.vmem_active, nonunit=True)
                + deadtime
            )

        scalar = phase.scalar_ops * cal.scalar_cpi

        l2_bytes = phase_l2_bytes(phase.streams)
        l2_cycles = l2_bytes / cal.l2_bytes_per_cycle

        prefetch = cfg.software_prefetch or cfg.hardware_prefetch
        vec_exposure = cal.latency_exposure * (
            cal.prefetch_latency_factor if prefetch else 1.0
        )
        if cfg.style is VectorUnitStyle.DECOUPLED:
            # the decoupled VPU has no run-ahead core prefetching for it and
            # no L1 buffering, but long vector loads carry their own MLP:
            # intermediate exposure
            vec_exposure = 0.5
        dram_bytes = 0.0
        latency = 0.0
        for stream in phase.streams:
            sbytes = stream_dram_bytes(stream, cfg, cal)
            dram_bytes += sbytes
            # scalar-load misses stall the in-order pipe; vector/prefetched
            # misses overlap up to the DRAM model's MLP
            scalar_stall = stream.scalar_access and cal.enable_scalar_exposure
            exposure = 1.0 if scalar_stall else vec_exposure
            latency += (
                exposure * (sbytes / cfg.line_bytes) * cfg.dram_latency / self.dram.mlp
            )
        dram_bw = cal.dram_efficiency * cfg.dram_bytes_per_cycle
        dram_cycles = dram_bytes / dram_bw

        return PhaseCycles(
            name=phase.name,
            vector_cycles=vec,
            scalar_cycles=scalar,
            l2_cycles=l2_cycles,
            dram_cycles=dram_cycles,
            latency_cycles=latency,
            startup_cycles=cal.phase_startup,
            dram_bytes=dram_bytes,
            l2_bytes=l2_bytes,
        )

    def evaluate(self, algorithm_name: str, phases: Sequence[Phase]) -> LayerCycles:
        """Time a whole schedule (list of phases)."""
        result = LayerCycles(algorithm=algorithm_name)
        for phase in phases:
            result.phases.append(self.phase_cycles(phase))
        return result
