"""Analytical (closed-form) layer-level performance model.

Full convolutional layers execute 10^8-10^9 dynamic instructions — far beyond
what a per-instruction Python replay can cover.  This engine instead evaluates
*schedules*: each algorithm describes its execution as a list of
:class:`~repro.simulator.analytical.phases.Phase` objects carrying

* vector arithmetic / vector memory instruction counts with their average
  active element counts (lane utilization);
* scalar bookkeeping instruction counts (run on the scalar pipe, overlapped
  with the vector unit);
* :class:`~repro.simulator.analytical.phases.DataStream` descriptors —
  (unique bytes, number of passes, reuse-interval working set) — from which
  DRAM/L2 traffic is estimated with a smooth cache-residency model.

Cycles per phase are ``max(vector-compute, scalar, L2-bandwidth,
DRAM-bandwidth) + latency terms``; phases compose additively.  This is the
Timeloop-style methodology and captures precisely the mechanisms the paper
attributes its findings to (see DESIGN.md §4).
"""

from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.analytical.cachemodel import stream_dram_bytes, residency
from repro.simulator.analytical.model import AnalyticalTimingModel, LayerCycles
from repro.simulator.analytical.grid import (
    GRID_BACKEND_CHOICES,
    PhaseTable,
    available_grid_backends,
    configure_grid,
    evaluate_cells,
    evaluate_phase_table,
    grid_defaults,
    resolve_grid_backend,
)

__all__ = [
    "DataStream",
    "Phase",
    "stream_dram_bytes",
    "residency",
    "AnalyticalTimingModel",
    "LayerCycles",
    "GRID_BACKEND_CHOICES",
    "PhaseTable",
    "available_grid_backends",
    "configure_grid",
    "evaluate_cells",
    "evaluate_phase_table",
    "grid_defaults",
    "resolve_grid_backend",
]
