"""Schedule descriptors consumed by the analytical timing model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class DataStream:
    """One array's movement during a phase.

    ``bytes`` is the unique footprint touched; ``passes`` is how many times
    that footprint is streamed through the core during the phase; between
    consecutive passes ``reuse_ws`` bytes must stay cached for the pass to
    hit in the L2 instead of going to DRAM.  ``is_write`` marks the first
    pass as producing (written-back) data.
    """

    name: str
    bytes: float
    passes: float = 1.0
    reuse_ws: float = 0.0
    is_write: bool = False
    #: True when the stream is consumed by *scalar* loads (e.g. the GEMM
    #: A-matrix operands of vector-scalar FMAs, Direct's input broadcasts).
    #: The in-order core cannot hide scalar-load miss latency behind the
    #: vector unit, so these streams carry full latency exposure.
    scalar_access: bool = False
    #: True when the stream's data was just produced by an earlier phase or
    #: by the previous network layer (layer input, im2col column matrix,
    #: Winograd U/V/M matrices).  If the footprint fits in the L2, even the
    #: first pass hits — this is what makes large caches pay off for
    #: multi-phase algorithms and for layer sequences with big activations.
    resident_source: bool = False

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ConfigError(f"stream {self.name!r}: bytes must be >= 0")
        if self.passes < 1.0:
            raise ConfigError(f"stream {self.name!r}: passes must be >= 1")
        if self.reuse_ws < 0:
            raise ConfigError(f"stream {self.name!r}: reuse_ws must be >= 0")


@dataclass(frozen=True)
class Phase:
    """One stage of an algorithm (im2col, packing, macro-kernel, ...).

    Instruction counts are totals over the phase:

    * ``vector_ops`` arithmetic vector instructions averaging
      ``vector_active`` active elements each;
    * ``vmem_ops`` vector memory instructions averaging ``vmem_active``
      elements, of which ``nonunit_fraction`` are strided/indexed (these
      sustain far fewer elements per cycle);
    * ``scalar_ops`` scalar instructions (loop control, addresses, scalar
      operand loads) issued on the scalar pipe in parallel with the VPU.
    """

    name: str
    vector_ops: float = 0.0
    vector_active: float = 0.0
    vmem_ops: float = 0.0
    vmem_active: float = 0.0
    nonunit_fraction: float = 0.0
    scalar_ops: float = 0.0
    streams: tuple[DataStream, ...] = ()

    def __post_init__(self) -> None:
        for attr in ("vector_ops", "vector_active", "vmem_ops", "vmem_active",
                     "scalar_ops"):
            if getattr(self, attr) < 0:
                raise ConfigError(f"phase {self.name!r}: {attr} must be >= 0")
        if not 0.0 <= self.nonunit_fraction <= 1.0:
            raise ConfigError(
                f"phase {self.name!r}: nonunit_fraction must be in [0, 1]"
            )
        if self.vector_ops and not self.vector_active:
            raise ConfigError(
                f"phase {self.name!r}: vector_ops given without vector_active"
            )
        if self.vmem_ops and not self.vmem_active:
            raise ConfigError(
                f"phase {self.name!r}: vmem_ops given without vmem_active"
            )
        object.__setattr__(self, "streams", tuple(self.streams))

    @property
    def total_stream_bytes(self) -> float:
        """Total unique bytes across all streams (footprint, not traffic)."""
        return sum(s.bytes for s in self.streams)
