"""Tensorized whole-grid evaluation of the analytical timing model.

The co-design studies evaluate :class:`~repro.simulator.analytical.model.
AnalyticalTimingModel` over thousands of (layer, algorithm, hardware)
grid cells.  The per-cell path times each phase with plain Python
(``math.ceil``, per-stream loops, dataclass construction) — fine for one
cell, wasteful for a grid.  This module evaluates *every phase of every
cell at once*:

* :class:`PhaseTable` — a columnar structure-of-arrays with one row per
  (cell, phase): instruction-count columns straight from the
  :class:`~repro.simulator.analytical.phases.Phase` descriptors,
  zero-padded ``(rows, max_streams)`` stream columns, and per-cell
  hardware/calibration columns derived with the *same scalar Python
  expressions* the per-cell model uses;
* :func:`evaluate_phase_table` — evaluates all rows through one of two
  interchangeable backends (the :mod:`repro.simulator.replay_backend`
  idiom): ``numpy`` (always available) computes each
  :class:`~repro.simulator.analytical.model.PhaseCycles` column as a
  NumPy expression replicating the scalar code's float-op order exactly,
  ``compiled`` dispatches to the Numba kernel in
  :mod:`repro.simulator._compiled` (registered only when the
  ``[compiled]`` extra is installed), and ``auto`` picks the fastest
  registered.

Both backends are **bit-identical** to the per-cell path by contract:
every elementwise operation (``np.ceil`` chimes, lane ``np.maximum``,
the left-to-right per-stream folds) mirrors the exact IEEE-754 op
sequence of :meth:`AnalyticalTimingModel.phase_cycles`, so the assembled
:class:`LayerCycles` records compare equal field by field.  Locked by
``tests/test_analytical_grid.py`` (full 448-point grid, both backends)
and the hypothesis suite in ``tests/test_property_analytical_grid.py``.

:func:`configure_grid` sets the process-wide backend default (the
``repro-experiments --grid-backend`` flag routes here), mirroring
:func:`repro.simulator.timing.configure_replay`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.simulator import _compiled
from repro.simulator.analytical.cachemodel import effective_l2_bytes
from repro.simulator.analytical.calibration import DEFAULT_CALIBRATION, Calibration
from repro.simulator.analytical.model import LayerCycles, PhaseCycles
from repro.simulator.analytical.phases import Phase
from repro.simulator.hwconfig import HardwareConfig, VectorUnitStyle
from repro.simulator.memory import DramModel

#: Valid grid-backend arguments (``auto`` resolves to the fastest
#: registered, exactly like the replay-backend registry).
GRID_BACKEND_CHOICES = ("auto", "compiled", "numpy")


class RowCycles(NamedTuple):
    """Per-(cell, phase) result columns — one value per PhaseTable row."""

    vector_cycles: np.ndarray
    scalar_cycles: np.ndarray
    l2_cycles: np.ndarray
    dram_cycles: np.ndarray
    latency_cycles: np.ndarray
    startup_cycles: np.ndarray
    dram_bytes: np.ndarray
    l2_bytes: np.ndarray


@dataclass(frozen=True)
class PhaseTable:
    """Columnar (structure-of-arrays) form of a batch of schedules.

    One row per (cell, phase), cells contiguous in input order.  Stream
    columns are ``(rows, max_streams)`` matrices padded with neutral
    values (``bytes=0``, ``passes=1``, ``reuse_ws=0``, masks ``False``)
    so every padded term folds to exactly ``+0.0`` — the left-to-right
    per-stream accumulation therefore matches the per-cell ``sum()`` /
    ``+=`` loops bit for bit.  Per-cell hardware/calibration columns are
    derived with the same scalar expressions the per-cell model uses,
    so no precision is gained or lost on the way in.
    """

    n_cells: int
    n_rows: int
    #: Algorithm name per cell (the record label).
    algorithms: tuple[str, ...]
    #: Phases per cell; rows of cell ``i`` start at ``sum(counts[:i])``.
    phase_counts: np.ndarray  # (n_cells,) int64
    #: Row -> owning cell index.
    cell_of_row: np.ndarray  # (n_rows,) int64
    #: Phase name per row (kept as Python strings for record assembly).
    phase_names: tuple[str, ...]

    # -- phase instruction columns, one value per row ------------------- #
    vector_ops: np.ndarray
    vector_active: np.ndarray
    vmem_ops: np.ndarray
    vmem_active: np.ndarray
    nonunit_fraction: np.ndarray
    scalar_ops: np.ndarray

    # -- stream columns, (n_rows, max_streams) -------------------------- #
    stream_bytes: np.ndarray
    stream_passes: np.ndarray
    stream_reuse_ws: np.ndarray
    stream_scalar: np.ndarray  # bool: consumed by scalar loads
    stream_resident: np.ndarray  # bool: produced by an earlier phase/layer

    # -- per-cell hardware/calibration columns, (n_cells,) -------------- #
    chime_den_unit: np.ndarray  # max(1.0, datapath)
    chime_den_nonunit: np.ndarray  # max(1.0, datapath / nonunit_penalty)
    deadtime: np.ndarray
    vector_issue: np.ndarray
    vmem_issue: np.ndarray
    scalar_cpi: np.ndarray
    l2_bytes_per_cycle: np.ndarray
    cache_bytes: np.ndarray  # effective L2 capacity for residency
    vec_exposure: np.ndarray
    line_bytes: np.ndarray
    dram_latency: np.ndarray
    mlp: np.ndarray
    dram_bw: np.ndarray  # dram_efficiency * dram_bytes_per_cycle
    phase_startup: np.ndarray
    scalar_exposure_on: np.ndarray  # bool
    resident_source_on: np.ndarray  # bool

    @classmethod
    def from_cells(
        cls,
        cells: Sequence,
        calibration: Calibration | None = None,
    ) -> "PhaseTable":
        """Build the table from ``(algorithm, phases, hw[, calibration])``.

        ``calibration`` is the table-wide default (``None`` →
        :data:`DEFAULT_CALIBRATION`); a 4-tuple cell overrides it for
        that cell only.  The schedules themselves are built by the
        caller (``ConvAlgorithm.schedule``), so this constructor is pure
        data movement plus the per-cell scalar derivations.
        """
        default_cal = calibration or DEFAULT_CALIBRATION
        n_cells = len(cells)
        algorithms: list[str] = []
        phase_lists: list[Sequence[Phase]] = []
        cals: list[Calibration] = []
        configs: list[HardwareConfig] = []
        for cell in cells:
            if len(cell) == 4:
                name, phases, hw, cal = cell
            else:
                name, phases, hw = cell
                cal = None
            algorithms.append(name)
            phase_lists.append(list(phases))
            configs.append(hw)
            cals.append(cal or default_cal)

        phase_counts = np.array(
            [len(p) for p in phase_lists], dtype=np.int64
        )
        n_rows = int(phase_counts.sum())
        cell_of_row = np.repeat(np.arange(n_cells, dtype=np.int64), phase_counts)
        max_streams = max(
            (len(ph.streams) for pl in phase_lists for ph in pl), default=0
        )
        s_width = max(1, max_streams)

        names: list[str] = []
        vector_ops = np.zeros(n_rows)
        vector_active = np.zeros(n_rows)
        vmem_ops = np.zeros(n_rows)
        vmem_active = np.zeros(n_rows)
        nonunit_fraction = np.zeros(n_rows)
        scalar_ops = np.zeros(n_rows)
        stream_bytes = np.zeros((n_rows, s_width))
        stream_passes = np.ones((n_rows, s_width))
        stream_reuse_ws = np.zeros((n_rows, s_width))
        stream_scalar = np.zeros((n_rows, s_width), dtype=bool)
        stream_resident = np.zeros((n_rows, s_width), dtype=bool)
        r = 0
        for pl in phase_lists:
            for ph in pl:
                names.append(ph.name)
                vector_ops[r] = ph.vector_ops
                vector_active[r] = ph.vector_active
                vmem_ops[r] = ph.vmem_ops
                vmem_active[r] = ph.vmem_active
                nonunit_fraction[r] = ph.nonunit_fraction
                scalar_ops[r] = ph.scalar_ops
                for j, s in enumerate(ph.streams):
                    stream_bytes[r, j] = s.bytes
                    stream_passes[r, j] = s.passes
                    stream_reuse_ws[r, j] = s.reuse_ws
                    stream_scalar[r, j] = s.scalar_access
                    stream_resident[r, j] = s.resident_source
                r += 1

        chime_den_unit = np.zeros(n_cells)
        chime_den_nonunit = np.zeros(n_cells)
        deadtime = np.zeros(n_cells)
        vector_issue = np.zeros(n_cells)
        vmem_issue = np.zeros(n_cells)
        scalar_cpi = np.zeros(n_cells)
        l2_bpc = np.zeros(n_cells)
        cache_bytes = np.zeros(n_cells)
        vec_exposure = np.zeros(n_cells)
        line_bytes = np.zeros(n_cells)
        dram_latency = np.zeros(n_cells)
        mlp = np.zeros(n_cells)
        dram_bw = np.zeros(n_cells)
        phase_startup = np.zeros(n_cells)
        scalar_exposure_on = np.zeros(n_cells, dtype=bool)
        resident_source_on = np.zeros(n_cells, dtype=bool)
        for i, (cfg, cal) in enumerate(zip(configs, cals)):
            # the exact scalar expressions of AnalyticalTimingModel — the
            # columns carry the same float64 values the per-cell path sees
            datapath = cfg.datapath_f32_per_cycle
            chime_den_unit[i] = max(1.0, datapath)
            chime_den_nonunit[i] = max(1.0, datapath / cal.nonunit_penalty)
            decoupled = cfg.style is VectorUnitStyle.DECOUPLED
            deadtime[i] = cal.decoupled_deadtime if decoupled else 0.0
            vector_issue[i] = cal.vector_issue
            vmem_issue[i] = cal.vmem_issue
            scalar_cpi[i] = cal.scalar_cpi
            l2_bpc[i] = cal.l2_bytes_per_cycle
            cache_bytes[i] = effective_l2_bytes(cfg)
            prefetch = cfg.software_prefetch or cfg.hardware_prefetch
            exposure = cal.latency_exposure * (
                cal.prefetch_latency_factor if prefetch else 1.0
            )
            vec_exposure[i] = 0.5 if decoupled else exposure
            line_bytes[i] = cfg.line_bytes
            dram_latency[i] = cfg.dram_latency
            mlp[i] = DramModel.from_config(cfg).mlp
            dram_bw[i] = cal.dram_efficiency * cfg.dram_bytes_per_cycle
            phase_startup[i] = cal.phase_startup
            scalar_exposure_on[i] = cal.enable_scalar_exposure
            resident_source_on[i] = cal.enable_resident_source

        return cls(
            n_cells=n_cells,
            n_rows=n_rows,
            algorithms=tuple(algorithms),
            phase_counts=phase_counts,
            cell_of_row=cell_of_row,
            phase_names=tuple(names),
            vector_ops=vector_ops,
            vector_active=vector_active,
            vmem_ops=vmem_ops,
            vmem_active=vmem_active,
            nonunit_fraction=nonunit_fraction,
            scalar_ops=scalar_ops,
            stream_bytes=stream_bytes,
            stream_passes=stream_passes,
            stream_reuse_ws=stream_reuse_ws,
            stream_scalar=stream_scalar,
            stream_resident=stream_resident,
            chime_den_unit=chime_den_unit,
            chime_den_nonunit=chime_den_nonunit,
            deadtime=deadtime,
            vector_issue=vector_issue,
            vmem_issue=vmem_issue,
            scalar_cpi=scalar_cpi,
            l2_bytes_per_cycle=l2_bpc,
            cache_bytes=cache_bytes,
            vec_exposure=vec_exposure,
            line_bytes=line_bytes,
            dram_latency=dram_latency,
            mlp=mlp,
            dram_bw=dram_bw,
            phase_startup=phase_startup,
            scalar_exposure_on=scalar_exposure_on,
            resident_source_on=resident_source_on,
        )


# --------------------------------------------------------------------- #
# numpy backend
# --------------------------------------------------------------------- #
def _evaluate_rows_numpy(t: PhaseTable) -> RowCycles:
    """All rows at once with NumPy, replicating the scalar op order.

    Wrapped in ``np.errstate`` because Python scalar float division is
    silent where ndarray division warns (e.g. ``cache / ws`` overflowing
    to ``inf`` for a subnormal working set) — the *values* still match
    the per-cell path exactly, so the warning would be pure noise.
    """
    with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
        return _rows_numpy_impl(t)


def _rows_numpy_impl(t: PhaseTable) -> RowCycles:
    """The numpy evaluation proper.

    Every expression below is the elementwise image of one line of
    :meth:`AnalyticalTimingModel.phase_cycles`; the per-stream loops
    become left-to-right folds over the padded stream columns (padded
    terms are exactly ``+0.0``, so ``acc + term`` reproduces the scalar
    ``+=`` accumulation bit for bit).
    """
    c = t.cell_of_row
    den_unit = t.chime_den_unit[c]
    den_nonunit = t.chime_den_nonunit[c]
    deadtime = t.deadtime[c]
    vissue = t.vector_issue[c]
    missue = t.vmem_issue[c]

    # vec = vector_ops * (max(issue, chime(active)) + deadtime)
    chime_v = np.maximum(1.0, np.ceil(t.vector_active / den_unit))
    vec = t.vector_ops * (np.maximum(vissue, chime_v) + deadtime)
    # += unit/strided vmem terms, guarded exactly like `if phase.vmem_ops:`
    unit_ops = t.vmem_ops * (1.0 - t.nonunit_fraction)
    strided_ops = t.vmem_ops * t.nonunit_fraction
    chime_m = np.maximum(1.0, np.ceil(t.vmem_active / den_unit))
    chime_mn = np.maximum(1.0, np.ceil(t.vmem_active / den_nonunit))
    vec_full = (
        vec + unit_ops * ((missue + chime_m) + deadtime)
    ) + strided_ops * ((missue + chime_mn) + deadtime)
    vector_cycles = np.where(t.vmem_ops > 0.0, vec_full, vec)

    scalar_cycles = t.scalar_ops * t.scalar_cpi[c]

    cache = t.cache_bytes[c]
    vec_exposure = t.vec_exposure[c]
    scalar_on = t.scalar_exposure_on[c]
    resident_on = t.resident_source_on[c]
    line_bytes = t.line_bytes[c]
    dram_latency = t.dram_latency[c]
    mlp = t.mlp[c]

    n = t.n_rows
    l2_bytes = np.zeros(n)
    dram_bytes = np.zeros(n)
    latency = np.zeros(n)
    for j in range(t.stream_bytes.shape[1]):
        b = t.stream_bytes[:, j]
        passes = t.stream_passes[:, j]
        ws = t.stream_reuse_ws[:, j]
        # L2-port traffic: every pass streams through the L2 interface
        l2_bytes = l2_bytes + b * passes
        # fractional residency (reuse_ws <= 0 -> fully resident)
        pos_ws = ws > 0.0
        res = np.where(
            pos_ws, np.minimum(1.0, cache / np.where(pos_ws, ws, 1.0)), 1.0
        )
        pos_b = b > 0.0
        res_src = np.where(
            pos_b, np.minimum(1.0, cache / np.where(pos_b, b, 1.0)), 1.0
        )
        compulsory = np.where(
            t.stream_resident[:, j] & resident_on, b * (1.0 - res_src), b
        )
        extra = b * (passes - 1.0) * (1.0 - res)
        sbytes = compulsory + extra
        dram_bytes = dram_bytes + sbytes
        exposure = np.where(
            t.stream_scalar[:, j] & scalar_on, 1.0, vec_exposure
        )
        latency = latency + (
            exposure * (sbytes / line_bytes) * dram_latency / mlp
        )

    l2_cycles = l2_bytes / t.l2_bytes_per_cycle[c]
    dram_cycles = dram_bytes / t.dram_bw[c]
    startup_cycles = t.phase_startup[c] + np.zeros(n)

    return RowCycles(
        vector_cycles=vector_cycles,
        scalar_cycles=scalar_cycles,
        l2_cycles=l2_cycles,
        dram_cycles=dram_cycles,
        latency_cycles=latency,
        startup_cycles=startup_cycles,
        dram_bytes=dram_bytes,
        l2_bytes=l2_bytes,
    )


# --------------------------------------------------------------------- #
# compiled backend — thin wrapper over the njit kernel
# --------------------------------------------------------------------- #
def _evaluate_rows_compiled(t: PhaseTable) -> RowCycles:
    n = t.n_rows
    out = RowCycles(*(np.zeros(n) for _ in range(8)))
    if n:
        _compiled.analytical_grid_kernel(
            t.cell_of_row,
            t.vector_ops, t.vector_active, t.vmem_ops, t.vmem_active,
            t.nonunit_fraction, t.scalar_ops,
            t.stream_bytes, t.stream_passes, t.stream_reuse_ws,
            t.stream_scalar, t.stream_resident,
            t.chime_den_unit, t.chime_den_nonunit, t.deadtime,
            t.vector_issue, t.vmem_issue, t.scalar_cpi,
            t.l2_bytes_per_cycle, t.cache_bytes, t.vec_exposure,
            t.line_bytes, t.dram_latency, t.mlp, t.dram_bw,
            t.phase_startup, t.scalar_exposure_on, t.resident_source_on,
            out.vector_cycles, out.scalar_cycles, out.l2_cycles,
            out.dram_cycles, out.latency_cycles, out.startup_cycles,
            out.dram_bytes, out.l2_bytes,
        )
    return out


# --------------------------------------------------------------------- #
# registry (the replay_backend.py idiom)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GridBackend:
    """One interchangeable implementation of the row evaluator."""

    name: str
    evaluate_rows: Callable[[PhaseTable], RowCycles]


NUMPY_GRID_BACKEND = GridBackend("numpy", _evaluate_rows_numpy)

_REGISTRY: dict[str, GridBackend] = {"numpy": NUMPY_GRID_BACKEND}

if _compiled.HAVE_NUMBA:
    _REGISTRY["compiled"] = GridBackend("compiled", _evaluate_rows_compiled)


def available_grid_backends() -> tuple[str, ...]:
    """Names of the registered (directly runnable) grid backends."""
    return tuple(sorted(_REGISTRY))


def resolve_grid_backend(name: str | None = "auto") -> GridBackend:
    """Map a backend argument to an implementation.

    ``auto`` (or ``None``) prefers ``compiled`` when Numba is installed
    and falls back to ``numpy`` otherwise — both are bit-identical, so
    the choice only affects speed.  Asking for ``compiled`` explicitly
    without Numba raises a :class:`SimulationError` naming the extra.
    """
    if name is None or name == "auto":
        return _REGISTRY.get("compiled", NUMPY_GRID_BACKEND)
    backend = _REGISTRY.get(name)
    if backend is None:
        if name == "compiled":
            raise SimulationError(
                "grid backend 'compiled' needs Numba — install the "
                "[compiled] extra (pip install repro[compiled]) or use "
                "backend='auto'/'numpy'"
            )
        raise SimulationError(
            f"unknown grid backend {name!r}; choose from "
            f"{GRID_BACKEND_CHOICES} (registered: {available_grid_backends()})"
        )
    return backend


#: Process-wide default, set by :func:`configure_grid` (the CLI flag
#: lands here) and used whenever evaluation is invoked without an
#: explicit ``backend`` argument.
_DEFAULT_GRID_BACKEND = "auto"


def configure_grid(backend: str | None = None) -> str:
    """Set the process-wide default grid backend (mirrors
    :func:`repro.simulator.timing.configure_replay`).

    ``backend`` must be one of :data:`GRID_BACKEND_CHOICES`; an explicit
    ``compiled`` is validated eagerly so a missing Numba fails at
    configuration time, not mid-experiment.  ``None`` leaves the value
    unchanged.  Returns the effective default.
    """
    global _DEFAULT_GRID_BACKEND
    if backend is not None:
        if backend not in GRID_BACKEND_CHOICES:
            raise SimulationError(
                f"unknown grid backend {backend!r}; choose from "
                f"{GRID_BACKEND_CHOICES}"
            )
        resolve_grid_backend(backend)  # fail fast on unavailable 'compiled'
        _DEFAULT_GRID_BACKEND = backend
    return _DEFAULT_GRID_BACKEND


def grid_defaults() -> str:
    """The current process-wide grid-backend default."""
    return _DEFAULT_GRID_BACKEND


# --------------------------------------------------------------------- #
# evaluation
# --------------------------------------------------------------------- #
_PC_NEW = PhaseCycles.__new__
_LC_NEW = LayerCycles.__new__


def _make_phase(name, vec, sca, l2c, drc, lat, stc, drb, l2b):
    """Build one PhaseCycles without the dataclass __init__.

    Record assembly is the dominant cost of a grid call (the row math
    itself is vectorized); mapping this over the columns keeps the loop
    in C.  ``__dict__`` is assigned in field order, so the records are
    indistinguishable from constructor-built ones (``==``, ``repr``,
    ``asdict``, pickle).
    """
    p = _PC_NEW(PhaseCycles)
    p.__dict__ = {
        "name": name,
        "vector_cycles": vec,
        "scalar_cycles": sca,
        "l2_cycles": l2c,
        "dram_cycles": drc,
        "latency_cycles": lat,
        "startup_cycles": stc,
        "dram_bytes": drb,
        "l2_bytes": l2b,
    }
    return p


def _make_layer(name, start, stop, phases):
    rec = _LC_NEW(LayerCycles)
    rec.__dict__ = {"algorithm": name, "phases": phases[start:stop]}
    return rec


def evaluate_phase_table(
    table: PhaseTable, backend: str | None = None
) -> list[LayerCycles]:
    """Evaluate every cell of a :class:`PhaseTable`, one record per cell.

    ``backend`` overrides the process-wide default
    (:func:`configure_grid`); records are assembled from the row columns
    and are bit-identical to per-cell
    :meth:`AnalyticalTimingModel.evaluate` output.
    """
    impl = resolve_grid_backend(
        backend if backend is not None else _DEFAULT_GRID_BACKEND
    )
    rows = impl.evaluate_rows(table)
    if obs.enabled():
        obs.count(f"analytical.grid_backend.{impl.name}")
        obs.count("analytical.grid_rows", table.n_rows)
    # bulk ndarray -> Python-float conversion (one C pass per column)
    cols = [col.tolist() for col in rows]
    phases = list(map(_make_phase, table.phase_names, *cols))
    stops = np.cumsum(table.phase_counts).tolist()
    starts = [0] + stops[:-1]
    return list(
        map(_make_layer, table.algorithms, starts, stops, repeat(phases))
    )


def evaluate_cells(
    cells: Sequence,
    calibration: Calibration | None = None,
    backend: str | None = None,
) -> list[LayerCycles]:
    """Convenience: build a :class:`PhaseTable` and evaluate it.

    ``cells`` entries are ``(algorithm, phases, hw[, calibration])`` —
    see :meth:`PhaseTable.from_cells`.
    """
    return evaluate_phase_table(
        PhaseTable.from_cells(cells, calibration=calibration), backend=backend
    )
