"""Calibration constants for the analytical model — single source of truth.

These constants pin the model's free parameters to the anchors listed in
DESIGN.md §6 (the paper's reported ratios).  They are *not* per-layer fudge
factors: every layer/algorithm/config shares them, and the shape targets in
``tests/test_calibration_targets.py`` hold across the whole grid.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """Model-wide timing constants."""

    #: Issue/dispatch cycles per vector arithmetic instruction (the gem5
    #: fork models constant per-instruction latency; with a full-VL datapath
    #: this is the whole cost of a fully-active instruction).
    vector_issue: float = 1.0

    #: Extra cycles per vector *memory* instruction (address generation /
    #: TLB / port arbitration in the MinorCPU LSQ).
    vmem_issue: float = 2.0

    #: Slowdown of strided/indexed vector memory relative to unit stride
    #: (elements per cycle divisor).
    nonunit_penalty: float = 4.0

    #: Cycles per scalar bookkeeping instruction (scalar pipe IPC = 1).
    scalar_cpi: float = 1.0

    #: Fraction of peak DRAM bandwidth sustainable by the single in-order
    #: core (row misses, read/write turnarounds).
    dram_efficiency: float = 0.70

    #: Effective L2 port bandwidth in bytes/cycle seen by the vector unit.
    l2_bytes_per_cycle: float = 32.0

    #: Per-phase fixed startup cost (drain/fill, function-call overheads).
    phase_startup: float = 2000.0

    #: Multiplier converting exposed DRAM line-fill latency into cycles not
    #: hidden by the in-order pipeline (latency adder on top of bandwidth).
    latency_exposure: float = 0.30

    #: With software/hardware prefetch, the exposed-latency adder shrinks.
    prefetch_latency_factor: float = 0.25

    #: Extra dispatch/launch cycles per vector instruction on a *decoupled*
    #: vector unit (Paper I's RISC-VV@gem5: the VPU sits at the L2 and each
    #: instruction pays a launch handshake).  Longer vectors amortize this —
    #: the mechanism behind Paper I Fig. 6's 2.5x gain that saturates beyond
    #: 8192 bits.
    decoupled_deadtime: float = 2.0

    # -- mechanism toggles (for the model ablation study) ----------------- #
    #: When False, scalar-consumed streams get the same (overlappable)
    #: latency exposure as vector streams — removes the mechanism that makes
    #: GEMM-3's thrashing A panel expensive on deep layers.
    enable_scalar_exposure: bool = True
    #: When False, producer-consumer residency is ignored (every stream's
    #: first pass fetches from DRAM) — removes the mechanism behind the
    #: large-cache benefits of multi-phase algorithms and big activations.
    enable_resident_source: bool = True


#: The default calibration used everywhere.
DEFAULT_CALIBRATION = Calibration()
