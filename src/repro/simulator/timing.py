"""Trace-driven timing: replay an instruction trace on a hardware config.

This is the cycle-approximate engine used for small kernels.  It mirrors the
structure of the paper's gem5 setup:

* an in-order scalar pipeline issuing one instruction per cycle;
* a vector unit executing each vector instruction in
  ``ceil(active_elements / datapath)`` cycles (the "chime"), with a fixed
  per-instruction issue cost — the gem5 fork used by Paper II models constant
  latency per vector instruction, which the issue cost stands in for;
* vector memory operations charged their chime plus exposed miss latency
  from the two-level LRU cache hierarchy (misses overlap up to the DRAM
  model's MLP; prefetching hides most of the DRAM latency when enabled).

Two replay engines produce identical results:

* ``sequential`` — decodes one event at a time, the reference
  implementation;
* ``batched`` — consumes the columnar trace without decoding events: the
  compute/scalar/vector cycle terms become reductions over the
  kind/vl/sew/stride columns and the cache walk runs through the
  set-partitioned engine in :mod:`repro.simulator.cache_fast`.  The
  per-event formulas and the left-to-right accumulation order are
  replicated exactly, so every :class:`TimingResult` field is
  **bit-identical** to the sequential replay (locked by
  ``tests/test_replay_equivalence.py``).

The batched engine's hot loops are further dispatched through the
backend registry (:mod:`repro.simulator.replay_backend`): ``numpy`` is
the always-available PR 2–3 path, ``compiled`` the Numba kernels from
the ``[compiled]`` extra, and ``auto`` (default) the fastest registered
— all bit-identical.  ``workers > 1`` shards the cache replay across a
process pool by set index (:mod:`repro.simulator.replay_parallel`),
again with exact parity.  :func:`configure_replay` sets process-wide
defaults (the ``repro-experiments --replay-backend/--replay-workers``
flags route here), and every run bumps a
``timing.replay_backend.<name>`` obs counter naming what actually ran.

Absolute cycles are not expected to match gem5; orderings and scaling trends
are (and are what the tests assert).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.isa.trace import (
    KIND_SCALAR,
    KIND_VECTOR,
    InstructionTrace,
    MemoryOp,
    ScalarOp,
    VectorOp,
)
from repro.simulator.cache import CacheHierarchy
from repro.simulator.cache_fast import replay_line_stream
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.memory import DramModel
from repro.simulator.replay_backend import (
    BACKEND_CHOICES,
    MemoryCostParams,
    exact_sum,
    resolve_backend,
)

#: Issue/dispatch cost of one vector instruction in the in-order pipeline.
VECTOR_ISSUE_CYCLES = 1.0
#: Extra startup cycles for a vector memory instruction (address setup).
VMEM_STARTUP_CYCLES = 2.0
#: Strided/indexed memory ops sustain fewer elements per cycle than unit
#: stride; penalize their chime by this factor.
NONUNIT_CHIME_FACTOR = 4.0

#: Valid ``engine`` arguments to :meth:`TraceTimingModel.run`.
REPLAY_ENGINES = ("auto", "batched", "sequential")

#: Process-wide replay defaults, set by :func:`configure_replay` (the CLI
#: flags land here) and used whenever ``run()`` is called without explicit
#: ``backend``/``workers`` arguments.
_DEFAULT_BACKEND = "auto"
_DEFAULT_WORKERS = 1

#: Back-compat alias: the strict left-to-right fold now lives in
#: :mod:`repro.simulator.replay_backend` (shared with the backends).
_exact_sum = exact_sum


def configure_replay(
    backend: str | None = None, workers: int | None = None
) -> tuple[str, int]:
    """Set process-wide defaults for batched replay dispatch.

    ``backend`` must be one of :data:`~repro.simulator.replay_backend.
    BACKEND_CHOICES` (an explicit ``compiled`` is validated eagerly so a
    missing Numba fails at configuration time, not mid-experiment);
    ``workers`` is the shard-pool width (1 = in-process).  ``None``
    leaves a value unchanged.  Returns the effective ``(backend,
    workers)`` pair.
    """
    global _DEFAULT_BACKEND, _DEFAULT_WORKERS
    if backend is not None:
        if backend not in BACKEND_CHOICES:
            raise SimulationError(
                f"unknown replay backend {backend!r}; choose from "
                f"{BACKEND_CHOICES}"
            )
        resolve_backend(backend)  # fail fast on unavailable 'compiled'
        _DEFAULT_BACKEND = backend
    if workers is not None:
        if workers < 1:
            raise SimulationError(
                f"replay workers must be >= 1, got {workers}"
            )
        _DEFAULT_WORKERS = workers
    return _DEFAULT_BACKEND, _DEFAULT_WORKERS


def replay_defaults() -> tuple[str, int]:
    """The current process-wide ``(backend, workers)`` replay defaults."""
    return _DEFAULT_BACKEND, _DEFAULT_WORKERS


@dataclass
class TimingResult:
    """Cycle counts and breakdown from a trace replay."""

    cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    scalar_cycles: float = 0.0
    l1_misses: int = 0
    l2_misses: int = 0
    vector_instrs: int = 0
    memory_instrs: int = 0
    scalar_instrs: int = 0

    def merge(self, other: "TimingResult") -> None:
        """Accumulate another result into this one (phase composition)."""
        self.cycles += other.cycles
        self.compute_cycles += other.compute_cycles
        self.memory_cycles += other.memory_cycles
        self.scalar_cycles += other.scalar_cycles
        self.l1_misses += other.l1_misses
        self.l2_misses += other.l2_misses
        self.vector_instrs += other.vector_instrs
        self.memory_instrs += other.memory_instrs
        self.scalar_instrs += other.scalar_instrs


class TraceTimingModel:
    """Replays traces against a config's cache hierarchy and DRAM model."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.hierarchy = CacheHierarchy.from_config(config)
        self.dram = DramModel.from_config(config)

    def run(
        self,
        trace: InstructionTrace,
        flush: bool = False,
        *,
        engine: str = "auto",
        backend: str | None = None,
        workers: int | None = None,
    ) -> TimingResult:
        """Time a trace; ``flush=True`` starts from cold caches.

        ``engine`` selects the replay implementation: ``"sequential"``
        decodes one event at a time (the reference), ``"batched"`` runs
        the columnar fast path, and ``"auto"`` (default) picks batched
        whenever the trace supports it.  ``backend`` picks the batched
        engine's hot-loop implementation (``auto``/``compiled``/
        ``numpy``) and ``workers`` the shard-pool width; both default to
        the process-wide values from :func:`configure_replay`.  All
        combinations produce bit-identical results and leave the
        hierarchy in bit-identical state.
        """
        if engine not in REPLAY_ENGINES:
            raise SimulationError(
                f"unknown replay engine {engine!r}; choose from "
                f"{REPLAY_ENGINES}"
            )
        if backend is None:
            backend = _DEFAULT_BACKEND
        if workers is None:
            workers = _DEFAULT_WORKERS
        if workers < 1:
            raise SimulationError(
                f"replay workers must be >= 1, got {workers}"
            )
        impl = resolve_backend(backend)
        if (
            isinstance(trace, InstructionTrace)
            and trace.mode != "full"
            and trace.stats.total_instrs > 0
        ):
            raise SimulationError(
                "trace was recorded in 'counts' mode (statistics only, no "
                "events) and cannot be replayed for timing; run the machine "
                "with trace='full' to time this kernel"
            )
        batchable = (
            isinstance(trace, InstructionTrace) and not trace.has_foreign_events
        )
        if engine == "batched" and not batchable:
            raise SimulationError(
                "batched replay needs a columnar InstructionTrace without "
                "foreign events; use engine='sequential' (or 'auto') instead"
            )
        if flush:
            self.hierarchy.flush()
        used = "sequential" if (engine == "sequential" or not batchable) else "batched"
        # profiles are self-describing: name the backend that actually ran
        used_backend = "sequential" if used == "sequential" else impl.name
        obs.count(f"timing.replay_backend.{used_backend}")
        if used == "batched" and workers > 1:
            obs.count("timing.replay_sharded_runs")
        with obs.span(
            "timing.run", cat="timing", engine=used, backend=used_backend,
            workers=workers if used == "batched" else 1,
            events=len(trace) if isinstance(trace, InstructionTrace) else None,
        ):
            if used == "sequential":
                res = self._run_sequential(trace)
            else:
                res = self._run_batched(trace, impl, workers)
            obs.count("timing.l1_misses", res.l1_misses)
            obs.count("timing.l2_misses", res.l2_misses)
            obs.count("timing.vector_instrs", res.vector_instrs)
            obs.count("timing.memory_instrs", res.memory_instrs)
        return res

    # ------------------------------------------------------------------ #
    # sequential (per-event) replay — the reference implementation
    # ------------------------------------------------------------------ #
    def _run_sequential(self, trace: InstructionTrace) -> TimingResult:
        cfg = self.config
        datapath = cfg.datapath_f32_per_cycle
        prefetch = cfg.software_prefetch or cfg.hardware_prefetch
        res = TimingResult()
        for event in trace:
            if isinstance(event, VectorOp):
                # datapath is in f32 elements/cycle; wider SEW processes
                # proportionally fewer elements per cycle
                chime = math.ceil(event.vl / max(1.0, datapath * 32 / event.sew_bits))
                cost = max(VECTOR_ISSUE_CYCLES, chime)
                res.compute_cycles += cost
                res.vector_instrs += 1
            elif isinstance(event, MemoryOp):
                unit = event.indices is None and abs(event.stride) == event.elem_bytes
                eff_dp = datapath if unit else datapath / NONUNIT_CHIME_FACTOR
                chime = math.ceil(event.vl / max(1.0, eff_dp))
                l1_m, l2_m = self.hierarchy.access_memop(event)
                res.l1_misses += l1_m
                res.l2_misses += l2_m
                penalty = l1_m * cfg.l2_latency / self.dram.mlp
                penalty += self.dram.miss_penalty_cycles(l2_m, prefetch)
                if self.hierarchy.vector_at_l2:
                    # decoupled VPU: every vector access pays the L2 round
                    # trip (hit or miss), partially pipelined
                    lines = max(1.0, event.vl * event.elem_bytes / cfg.line_bytes)
                    penalty += lines * cfg.l2_latency / self.dram.mlp
                # line fills also consume DRAM bandwidth
                penalty = max(
                    penalty, self.dram.transfer_cycles(l2_m * cfg.line_bytes)
                )
                res.memory_cycles += VMEM_STARTUP_CYCLES + chime + penalty
                res.memory_instrs += 1
            elif isinstance(event, ScalarOp):
                res.scalar_cycles += event.count
                res.scalar_instrs += event.count
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown trace event {event!r}")
        overlap = 0.6 if cfg.out_of_order else 1.0
        res.cycles = overlap * (
            res.compute_cycles + res.memory_cycles + res.scalar_cycles
        )
        return res

    # ------------------------------------------------------------------ #
    # batched (columnar) replay — no per-event decoding
    # ------------------------------------------------------------------ #
    def _run_batched(
        self, trace: InstructionTrace, impl=None, workers: int = 1
    ) -> TimingResult:
        cfg = self.config
        datapath = cfg.datapath_f32_per_cycle
        prefetch = cfg.software_prefetch or cfg.hardware_prefetch
        if impl is None:
            impl = resolve_backend(_DEFAULT_BACKEND)
        res = TimingResult()
        cols = trace.columns()

        # vector instructions: the chime as one fused fold over vl/sew
        with obs.span("timing.vector", cat="timing"):
            vec = cols.kind == KIND_VECTOR
            res.vector_instrs = int(np.count_nonzero(vec))
            if res.vector_instrs:
                res.compute_cycles = impl.vector_cost_fold(
                    cols.vl[vec], cols.aux[vec], datapath, VECTOR_ISSUE_CYCLES
                )

            # scalar instructions: each row accounts ``count`` one-cycle ops
            scalar_counts = cols.vl[cols.kind == KIND_SCALAR]
            res.scalar_instrs = int(scalar_counts.sum())
            res.scalar_cycles = float(res.scalar_instrs)

        # memory instructions: expand to the line stream once, replay both
        # cache levels set-partitioned, then price every op in one pass
        mem = trace.memory_columns()
        num_ops = mem.rows.size
        res.memory_instrs = num_ops
        if num_ops:
            with obs.span("timing.memory", cat="timing", ops=num_ops):
                lines, op_ids = trace.memory_line_stream(
                    self.hierarchy.line_bytes, rows=mem.rows
                )
                l1_m, l2_m = replay_line_stream(
                    self.hierarchy, lines, mem.is_store[op_ids], op_ids,
                    num_ops, backend=impl.name, workers=workers,
                )
                res.l1_misses = int(l1_m.sum())
                res.l2_misses = int(l2_m.sum())
                res.memory_cycles = impl.memory_cost_fold(
                    mem.vl, mem.elem_bytes, mem.stride, mem.indexed,
                    l1_m, l2_m,
                    MemoryCostParams(
                        datapath=float(datapath),
                        nonunit_factor=NONUNIT_CHIME_FACTOR,
                        startup_cycles=VMEM_STARTUP_CYCLES,
                        l2_latency=float(cfg.l2_latency),
                        mlp=float(self.dram.mlp),
                        dram_latency=float(self.dram.latency_cycles),
                        prefetch_factor=4.0 if prefetch else 1.0,
                        line_bytes=int(cfg.line_bytes),
                        bytes_per_cycle=float(self.dram.bytes_per_cycle),
                        vector_at_l2=bool(self.hierarchy.vector_at_l2),
                    ),
                )

        overlap = 0.6 if cfg.out_of_order else 1.0
        res.cycles = overlap * (
            res.compute_cycles + res.memory_cycles + res.scalar_cycles
        )
        return res

    def reset(self) -> None:
        """Cold caches, fresh stats, and a freshly derived DRAM model."""
        self.hierarchy = CacheHierarchy.from_config(self.config)
        self.dram = DramModel.from_config(self.config)
