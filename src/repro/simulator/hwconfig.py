"""Hardware configuration for the simulated long-vector processors.

Encodes the platforms of both papers (Table I of Paper I, §3.1 of Paper II):

* **Paper II RVV** — in-order MinorCPU @ 2 GHz with a *tightly integrated*
  vector unit whose datapath scales with the vector length, 64 KB 4-way L1,
  shared L2 (1-64 MB, constant 20-cycle latency), DDR3-1600 at 12.8 GiB/s
  per core.
* **Paper I RISC-VV@gem5** — same core, but a *decoupled* vector unit
  attached to the L2 cache (vector memory traffic bypasses L1) with 2-8
  64-bit lanes, no software prefetch.
* **Paper I ARM-SVE@gem5** — integrated unit, lanes proportional to vector
  length, no software prefetch.
* **A64FX** — out-of-order, fixed 512-bit vectors, hardware prefetch, 8 MB
  16-way L2, 256 B lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.isa.types import validate_vlen_bits
from repro.utils.units import KiB, MiB
from repro.utils.validation import check_positive, check_power_of_two


class VectorUnitStyle(enum.Enum):
    """How the vector unit couples to the core and memory hierarchy."""

    #: Datapath scales with VLEN; vector memory ops go through the L1.
    INTEGRATED = "integrated"
    #: Fixed number of 64-bit lanes; vector memory ops attach to the L2
    #: (through a small vector buffer), as in the Paper I RISC-VV gem5 model.
    DECOUPLED = "decoupled"


@dataclass(frozen=True)
class HardwareConfig:
    """A single-core long-vector processor configuration."""

    name: str = "rvv"
    vlen_bits: int = 512
    style: VectorUnitStyle = VectorUnitStyle.INTEGRATED
    vector_lanes: int = 8  # 64-bit lanes; only meaningful for DECOUPLED
    freq_ghz: float = 2.0

    l1_kib: int = 64
    l1_assoc: int = 4
    l1_latency: int = 4
    line_bytes: int = 64

    l2_mib: float = 1.0
    l2_assoc: int = 8
    l2_latency: int = 20

    dram_bw_gib_s: float = 12.8
    dram_latency: int = 100

    software_prefetch: bool = False
    hardware_prefetch: bool = False
    out_of_order: bool = False
    #: ISA family: "rvv" or "sve".  SVE provides the zip/transpose intrinsics
    #: the Winograd transforms want; RVV v0.8/1.0 lacks them and pays a
    #: buffer+gather workaround (Paper I §VII).
    isa: str = "rvv"
    #: RVV register-group multiplier used by the kernels (LMUL).  Groups act
    #: like ``lmul``-times-longer architectural vectors (fewer strip-mine
    #: iterations) without widening the physical datapath.
    lmul: int = 1

    def __post_init__(self) -> None:
        validate_vlen_bits(self.vlen_bits)
        check_positive("vector_lanes", self.vector_lanes)
        check_positive("freq_ghz", self.freq_ghz)
        check_positive("l1_kib", self.l1_kib)
        check_power_of_two("l1_assoc", self.l1_assoc)
        check_power_of_two("line_bytes", self.line_bytes)
        check_positive("l2_mib", self.l2_mib)
        check_power_of_two("l2_assoc", self.l2_assoc)
        check_positive("dram_bw_gib_s", self.dram_bw_gib_s)
        if not isinstance(self.style, VectorUnitStyle):
            raise ConfigError(f"style must be VectorUnitStyle, got {self.style!r}")
        if self.isa not in ("rvv", "sve"):
            raise ConfigError(f"isa must be 'rvv' or 'sve', got {self.isa!r}")
        if self.lmul not in (1, 2, 4, 8):
            raise ConfigError(f"lmul must be 1, 2, 4 or 8, got {self.lmul!r}")
        if self.isa == "sve" and self.lmul != 1:
            raise ConfigError("LMUL register grouping is an RVV feature")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def l1_bytes(self) -> int:
        return self.l1_kib * KiB

    @property
    def l2_bytes(self) -> int:
        return int(self.l2_mib * MiB)

    @property
    def vlmax_f32(self) -> int:
        """Elements per vector register *group* at 32-bit SEW.

        The kernels strip-mine at this granularity; with LMUL > 1 it covers
        ``lmul`` physical registers while the datapath width is unchanged.
        """
        return self.lmul * self.vlen_bits // 32

    @property
    def datapath_f32_per_cycle(self) -> int:
        """Single-precision elements the vector unit processes per cycle.

        Integrated units (Paper II RVV, ARM-SVE@gem5) scale their datapath
        with the vector length; decoupled units have ``lanes`` 64-bit lanes,
        i.e. ``2*lanes`` f32 elements per cycle.
        """
        if self.style is VectorUnitStyle.INTEGRATED:
            return max(1, self.vlen_bits // 32)
        return max(1, 2 * self.vector_lanes)

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Peak DRAM bandwidth expressed in bytes per core cycle."""
        bytes_per_s = self.dram_bw_gib_s * (1 << 30)
        cycles_per_s = self.freq_ghz * 1e9
        return bytes_per_s / cycles_per_s

    @property
    def l2_bytes_per_cycle(self) -> float:
        """Sustained L2->core bandwidth (one line per ``beat`` cycles)."""
        # A 64B line every 2 cycles is in line with the gem5 MinorCPU port
        # width used by the paper's fork.
        return self.line_bytes / 2.0

    def with_(self, **kwargs) -> "HardwareConfig":
        """Return a modified copy (convenience over ``dataclasses.replace``)."""
        return replace(self, **kwargs)

    def label(self) -> str:
        """Short label used in experiment tables, e.g. ``512b x 1MB``."""
        l2 = f"{self.l2_mib:g}"
        return f"{self.vlen_bits} bits x {l2} MB"

    # ------------------------------------------------------------------ #
    # platform presets
    # ------------------------------------------------------------------ #
    @staticmethod
    def paper2_rvv(vlen_bits: int = 512, l2_mib: float = 1.0) -> "HardwareConfig":
        """The Paper II platform: integrated RVV, 20-cycle L2, DDR3-1600."""
        return HardwareConfig(
            name=f"rvv-{vlen_bits}b-{l2_mib:g}MB",
            vlen_bits=vlen_bits,
            style=VectorUnitStyle.INTEGRATED,
            l2_mib=l2_mib,
            l2_latency=20,
        )

    @staticmethod
    def paper1_riscvv(
        vlen_bits: int = 512, l2_mib: float = 1.0, lanes: int = 8
    ) -> "HardwareConfig":
        """Paper I decoupled RISC-VV@gem5 (VPU attached to L2, no prefetch)."""
        return HardwareConfig(
            name=f"riscvv-{vlen_bits}b-{l2_mib:g}MB-{lanes}l",
            vlen_bits=vlen_bits,
            style=VectorUnitStyle.DECOUPLED,
            vector_lanes=lanes,
            l2_mib=l2_mib,
            l2_latency=12,
        )

    @staticmethod
    def paper1_armsve(vlen_bits: int = 512, l2_mib: float = 1.0) -> "HardwareConfig":
        """Paper I ARM-SVE@gem5 (integrated, lanes proportional to VL)."""
        if vlen_bits > 2048:
            raise ConfigError("ARM-SVE supports at most 2048-bit vectors")
        return HardwareConfig(
            name=f"armsve-{vlen_bits}b-{l2_mib:g}MB",
            vlen_bits=vlen_bits,
            style=VectorUnitStyle.INTEGRATED,
            l2_mib=l2_mib,
            l2_latency=12,
            isa="sve",
        )

    @staticmethod
    def a64fx() -> "HardwareConfig":
        """The Fujitsu A64FX evaluation platform of Paper I."""
        return HardwareConfig(
            name="a64fx",
            vlen_bits=512,
            style=VectorUnitStyle.INTEGRATED,
            l2_mib=8.0,
            l2_assoc=16,
            l2_latency=37,
            line_bytes=256,
            software_prefetch=True,
            hardware_prefetch=True,
            out_of_order=True,
            dram_bw_gib_s=28.0,
            isa="sve",
        )
