"""Roofline analysis of convolutional layers (Paper I §VI-C-a, Table IV).

Paper I characterizes the sustained performance of YOLOv3's 14 distinct
convolutional layers against their arithmetic intensity on the A64FX
(62.5 GFLOP/s peak per core).  This module reproduces that methodology:

* ``arithmetic_intensity`` — the paper's metric, FLOPs over the GEMM
  operand bytes (Table IV's AI column is exact arithmetic and matches to
  the printed precision);
* ``attainable_fraction`` — the roofline bound min(1, AI / machine balance);
* ``sustained_fraction`` — the analytical model's achieved fraction of the
  vector unit's peak for a given algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.registry import get_algorithm, layer_cycles
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline."""

    spec: ConvSpec
    arithmetic_intensity: float
    attainable_fraction: float  # roofline bound (fraction of peak)
    sustained_fraction: float  # model-achieved fraction of peak

    @property
    def memory_bound(self) -> bool:
        return self.attainable_fraction < 1.0


def peak_flops_per_cycle(hw: HardwareConfig) -> float:
    """Peak single-precision FLOPs per cycle: FMA on the full datapath."""
    return 2.0 * hw.datapath_f32_per_cycle


def machine_balance(hw: HardwareConfig) -> float:
    """FLOPs per DRAM byte needed to saturate the vector unit."""
    return peak_flops_per_cycle(hw) / hw.dram_bytes_per_cycle


def attainable_fraction(spec: ConvSpec, hw: HardwareConfig) -> float:
    """Roofline bound as a fraction of peak, from the paper's AI metric."""
    return min(1.0, spec.arithmetic_intensity() / machine_balance(hw))


def sustained_fraction(
    spec: ConvSpec, hw: HardwareConfig, algorithm: str = "im2col_gemm6"
) -> float:
    """Fraction of peak the analytical model sustains for the layer."""
    cycles = layer_cycles(algorithm, spec, hw, fallback=True).cycles
    ideal = spec.flops / peak_flops_per_cycle(hw)
    return min(1.0, ideal / cycles)


def roofline(
    specs: list[ConvSpec], hw: HardwareConfig, algorithm: str = "im2col_gemm6"
) -> list[RooflinePoint]:
    """Roofline points for a list of layers."""
    return [
        RooflinePoint(
            spec=s,
            arithmetic_intensity=s.arithmetic_intensity(),
            attainable_fraction=attainable_fraction(s, hw),
            sustained_fraction=sustained_fraction(s, hw, algorithm),
        )
        for s in specs
    ]
