"""Sharded parallel cache replay: fan the line stream across processes.

Under set-associative LRU, each set's reference stream is completely
independent: an access to set *s* reads and writes only row *s* of the
tags/dirty/LRU arrays, and its LRU tick is a pure function of its
*global* stream position (``tick0 + 1 + position``).  The set-index
partition that PR 3's NumPy engine exploits within one process therefore
also parallelizes across processes with **exact** results:

1. split accesses into ``workers`` shards by ``set_index % workers``;
2. ship each shard its slice of accesses, its rows of the cache state,
   and the accesses' global stream positions;
3. each worker replays its shard with the best backend *it* has
   registered (:mod:`repro.simulator.replay_backend` — compiled where
   Numba is installed, NumPy otherwise; both bit-identical);
4. scatter the returned state rows and per-access results back — the
   merged tags/dirty/LRU/stats and hit/writeback/victim streams equal
   the sequential replay bit for bit.

The pool is process-global and lazily built (fork-preferred via
:mod:`repro.engine.pool`, so workers inherit JIT-compiled kernels), and
every failure mode degrades to in-process sharded execution — same
results, one ``timing.replay.serial_fallbacks`` counter louder.
"""

from __future__ import annotations

import atexit

import numpy as np

from repro import obs
from repro.engine import pool as pool_plumbing
from repro.errors import SimulationError
from repro.simulator.replay_backend import resolve_backend

#: Lazily created process pool, reused across calls (keyed by its size).
_POOL = None
_POOL_SIZE = 0

#: One shard's work unit: state rows + accesses + global positions.
_ShardPayload = tuple


def _get_pool(workers: int):
    """Return a pool with at least ``workers`` workers, building lazily."""
    global _POOL, _POOL_SIZE
    if _POOL is not None and _POOL_SIZE >= workers:
        return _POOL
    shutdown_pool()
    ctx = pool_plumbing.pool_context()
    _POOL = pool_plumbing.new_pool(ctx, workers)
    _POOL_SIZE = workers
    return _POOL


def shutdown_pool() -> None:
    """Stop the shared replay pool (tests, atexit)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        pool_plumbing.stop_pool(_POOL)
        _POOL = None
        _POOL_SIZE = 0


atexit.register(shutdown_pool)


def _replay_shard(payload: _ShardPayload):
    """Worker-side replay of one shard (module-level: picklable).

    Resolves the backend *here*, in the worker process, so ``auto``
    picks up whatever this interpreter has registered.
    """
    (tags, dirty, lru, local_sets, lines, stores, positions, tick0,
     backend) = payload
    impl = resolve_backend(backend)
    hits, writebacks, victims = impl.replay_sets(
        tags, dirty, lru, local_sets, lines, stores, positions, tick0
    )
    return tags, dirty, lru, hits, writebacks, victims


def _shard_payloads(cache, sets, lines, stores, workers, backend):
    """Partition the stream by set index into per-worker payloads.

    Returns ``[(access_indices, state_rows, payload), ...]`` with empty
    shards dropped.  ``state_rows`` are the (sorted, unique) global set
    rows the shard owns; the payload's ``local_sets`` index into the
    shipped row slices.
    """
    tick0 = cache._tick
    positions = np.arange(lines.size, dtype=np.int64)
    shard_of = sets % workers
    shards = []
    for w in range(workers):
        idx = np.nonzero(shard_of == w)[0]
        if idx.size == 0:
            continue
        shard_sets = sets[idx]
        rows = np.unique(shard_sets)
        local_sets = np.searchsorted(rows, shard_sets)
        payload = (
            cache._tags[rows], cache._dirty[rows], cache._lru[rows],
            local_sets, lines[idx], stores[idx], positions[idx],
            tick0, backend,
        )
        shards.append((idx, rows, payload))
    return shards


def _merge_shard(cache, idx, rows, result, hits, writebacks, victims):
    """Scatter one shard's state rows and per-access results back."""
    tags, dirty, lru, s_hits, s_wbs, s_victims = result
    cache._tags[rows] = tags
    cache._dirty[rows] = dirty
    cache._lru[rows] = lru
    hits[idx] = s_hits
    writebacks[idx] = s_wbs
    victims[idx] = s_victims


def replay_sets_sharded(
    cache,
    sets: np.ndarray,
    lines: np.ndarray,
    stores: np.ndarray,
    *,
    workers: int,
    backend: str = "auto",
    use_pool: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replay one cache's access stream sharded by set index.

    Mutates ``cache``'s tags/dirty/LRU arrays exactly as the sequential
    walk would (the caller advances the tick and stats, as for the
    single-shard path) and returns the merged per-access
    ``(hits, writebacks, victims)``.  ``use_pool=False`` — and any pool
    acquisition or mid-flight failure — runs the identical shard/merge
    in-process instead.
    """
    if workers < 1:
        raise SimulationError(f"replay workers must be >= 1, got {workers}")
    n = lines.size
    hits = np.zeros(n, dtype=bool)
    writebacks = np.zeros(n, dtype=bool)
    victims = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return hits, writebacks, victims
    shards = _shard_payloads(cache, sets, lines, stores, workers, backend)
    with obs.span(
        "timing.replay_sharded", cat="timing",
        shards=len(shards), workers=workers, pooled=use_pool,
    ):
        results = None
        if use_pool and len(shards) > 1:
            results = _run_pooled(shards)
        if results is None:  # pool-less environment or pool failure
            results = [_replay_shard(payload) for _, _, payload in shards]
        for (idx, rows, _), result in zip(shards, results):
            _merge_shard(cache, idx, rows, result, hits, writebacks, victims)
    return hits, writebacks, victims


def _run_pooled(shards):
    """Map shards over the shared pool; ``None`` means fall back serial."""
    from concurrent.futures.process import BrokenProcessPool

    try:
        pool = _get_pool(len(shards))
    except (OSError, ImportError, RuntimeError, ValueError):
        obs.count("timing.replay.serial_fallbacks")
        return None
    try:
        return list(pool.map(_replay_shard, (p for _, _, p in shards)))
    except (BrokenProcessPool, OSError):
        # a dead pool poisons later calls too: rebuild lazily next time
        shutdown_pool()
        obs.count("timing.replay.serial_fallbacks")
        return None
