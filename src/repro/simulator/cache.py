"""Trace-driven set-associative cache models.

The timing simulator replays vector memory operations against this hierarchy
to obtain per-level hit/miss counts.  The model is a classic write-allocate,
write-back, true-LRU set-associative cache — the same organization the
paper's gem5 configurations use for L1/L2.

LRU is implemented with a per-set logical clock rather than list shuffling,
keeping Python-level work per access O(associativity) with NumPy storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TypedDict

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.isa.trace import MemoryOp
from repro.utils.validation import check_positive, check_power_of_two


class LineAccessResult(TypedDict):
    """Which hierarchy levels a line access hit.

    A value of ``None`` means the level was not probed (``l1_hit`` when the
    access bypassed L1 on a decoupled unit, ``l2_hit`` on an L1 hit).
    """

    l1_hit: bool | None
    l2_hit: bool | None


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.writebacks = 0


class SetAssociativeCache:
    """A single level: write-allocate, write-back, true LRU."""

    def __init__(
        self, name: str, size_bytes: int, assoc: int, line_bytes: int
    ) -> None:
        check_positive("size_bytes", size_bytes)
        check_power_of_two("assoc", assoc)
        check_power_of_two("line_bytes", line_bytes)
        if size_bytes % (assoc * line_bytes) != 0:
            raise ConfigError(
                f"cache size {size_bytes} not divisible by assoc*line "
                f"({assoc}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(
                f"cache with {self.num_sets} sets is not a power of two; "
                f"choose size/assoc/line accordingly"
            )
        self.stats = CacheStats()
        # tags[set, way] = line address (or -1); lru[set, way] = last-use tick
        self._tags = np.full((self.num_sets, assoc), -1, dtype=np.int64)
        self._dirty = np.zeros((self.num_sets, assoc), dtype=bool)
        self._lru = np.zeros((self.num_sets, assoc), dtype=np.int64)
        self._tick = 0

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) & (self.num_sets - 1)

    def lookup(self, line_addr: int) -> bool:
        """Probe without side effects; True if the line is resident."""
        s = self._set_index(line_addr)
        return bool((self._tags[s] == line_addr).any())

    def access(self, line_addr: int, is_store: bool) -> tuple[bool, int | None]:
        """Access one cache line.

        Returns ``(hit, victim_line)`` where ``victim_line`` is the address
        of a *dirty* line evicted to make room (else None).
        """
        if line_addr % self.line_bytes:
            raise SimulationError(
                f"{self.name}: access address {line_addr:#x} not line-aligned"
            )
        self._tick += 1
        self.stats.accesses += 1
        s = self._set_index(line_addr)
        tags = self._tags[s]
        ways = np.nonzero(tags == line_addr)[0]
        if ways.size:
            way = int(ways[0])
            self.stats.hits += 1
            self._lru[s, way] = self._tick
            if is_store:
                self._dirty[s, way] = True
            return True, None
        # miss: choose victim = invalid way if any, else LRU
        self.stats.misses += 1
        invalid = np.nonzero(tags == -1)[0]
        if invalid.size:
            way = int(invalid[0])
        else:
            way = int(np.argmin(self._lru[s]))
        victim = None
        if tags[way] != -1 and self._dirty[s, way]:
            victim = int(tags[way])
            self.stats.writebacks += 1
        self._tags[s, way] = line_addr
        self._dirty[s, way] = is_store
        self._lru[s, way] = self._tick
        return False, victim

    def flush(self) -> None:
        """Invalidate all lines and reset dirty bits (stats are kept)."""
        self._tags[:] = -1
        self._dirty[:] = False
        self._lru[:] = 0

    def resident_lines(self) -> int:
        """Number of valid lines currently held (for tests)."""
        return int((self._tags != -1).sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SetAssociativeCache({self.name}, {self.size_bytes}B, "
            f"{self.assoc}-way, sets={self.num_sets})"
        )


class CacheHierarchy:
    """A two-level hierarchy with a DRAM backing counter.

    ``vector_at_l2`` models the Paper I decoupled RISC-VV organization where
    the vector unit reads/writes through the L2 directly (via a tiny vector
    buffer), so vector accesses skip the L1.
    """

    def __init__(
        self,
        l1: SetAssociativeCache,
        l2: SetAssociativeCache,
        vector_at_l2: bool = False,
    ) -> None:
        if l1.line_bytes != l2.line_bytes:
            raise ConfigError("L1 and L2 must share a line size in this model")
        self.l1 = l1
        self.l2 = l2
        self.vector_at_l2 = vector_at_l2
        self.dram_lines = 0  # lines fetched from DRAM
        self.dram_writeback_lines = 0

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes

    def access_line(
        self, line_addr: int, is_store: bool, vector: bool = True
    ) -> LineAccessResult:
        """Access a line; returns which levels hit (see
        :class:`LineAccessResult`)."""
        result: LineAccessResult = {"l1_hit": None, "l2_hit": None}
        if vector and self.vector_at_l2:
            hit2, victim2 = self.l2.access(line_addr, is_store)
            result["l2_hit"] = hit2
            if not hit2:
                self.dram_lines += 1
            if victim2 is not None:
                self.dram_writeback_lines += 1
            return result
        hit1, victim1 = self.l1.access(line_addr, is_store)
        result["l1_hit"] = hit1
        if victim1 is not None:
            # dirty L1 victim written back into L2
            _, victim2 = self.l2.access(victim1, True)
            if victim2 is not None:
                self.dram_writeback_lines += 1
        if not hit1:
            hit2, victim2 = self.l2.access(line_addr, is_store)
            result["l2_hit"] = hit2
            if not hit2:
                self.dram_lines += 1
            if victim2 is not None:
                self.dram_writeback_lines += 1
        return result

    def access_memop(self, op: MemoryOp) -> tuple[int, int]:
        """Replay a whole vector memory op; returns (l1_misses, l2_misses)."""
        l1_misses = 0
        l2_misses = 0
        for line in op.line_addresses(self.line_bytes):
            res = self.access_line(int(line), op.is_store, vector=True)
            if res["l1_hit"] is False:
                l1_misses += 1
            if res["l2_hit"] is False:
                l2_misses += 1
        return l1_misses, l2_misses

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()

    @staticmethod
    def from_config(config) -> "CacheHierarchy":
        """Build the hierarchy described by a :class:`HardwareConfig`."""
        from repro.simulator.hwconfig import VectorUnitStyle

        l1 = SetAssociativeCache(
            "L1", config.l1_bytes, config.l1_assoc, config.line_bytes
        )
        l2 = SetAssociativeCache(
            "L2", config.l2_bytes, config.l2_assoc, config.line_bytes
        )
        return CacheHierarchy(
            l1, l2, vector_at_l2=(config.style is VectorUnitStyle.DECOUPLED)
        )
