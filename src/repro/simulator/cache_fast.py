"""Set-partitioned vectorized replay of the LRU cache hierarchy.

The sequential model in :mod:`repro.simulator.cache` walks every cache line
through Python — fine for unit tests, but a real conv layer touches 10^7+
lines, which makes per-line Python calls the bottleneck of trace-driven
timing.  This module replays the *same* model with array operations, in the
classic trace-driven style (Dinero-like): each set's reference stream is
independent under set-associative LRU, so the global line stream is
partitioned by set index and all touched sets advance one access per
NumPy step.  A step costs a constant number of array operations over
``(touched sets, assoc)``, so Python-level work per access drops by roughly
the number of touched sets.

Both entry points mutate the sequential structures
(:class:`~repro.simulator.cache.SetAssociativeCache` tags/dirty/LRU/tick
and stats, :class:`~repro.simulator.cache.CacheHierarchy` DRAM counters)
**bit-identically** to the per-access path — including the LRU tick values
— so sequential and batched replays can be freely interleaved on one
hierarchy.  Equivalence is locked by ``tests/test_replay_equivalence.py``
and the hypothesis suite in ``tests/test_property_cache_fast.py``.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.simulator.cache import CacheHierarchy, SetAssociativeCache


def simulate_cache_stream(
    cache: SetAssociativeCache, lines: np.ndarray, stores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized equivalent of ``cache.access(lines[k], stores[k])`` ∀k.

    Mutates ``cache`` (tags, dirty bits, LRU ticks, tick counter, stats)
    exactly as the sequential accesses would.  Returns per-access arrays
    ``(hits, writebacks, victims)``: ``victims[k]`` is the dirty line
    address evicted by access ``k`` and is only meaningful where
    ``writebacks[k]`` is True (it is -1 elsewhere, but a victim line can
    legitimately be address 0 — test ``writebacks``, not ``victims``).
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    stores = np.ascontiguousarray(stores, dtype=bool)
    n = lines.size
    hits = np.zeros(n, dtype=bool)
    writebacks = np.zeros(n, dtype=bool)
    victims = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return hits, writebacks, victims
    misaligned = lines % cache.line_bytes != 0
    if misaligned.any():
        bad = int(lines[misaligned][0])
        raise SimulationError(
            f"{cache.name}: access address {bad:#x} not line-aligned"
        )
    sets = (lines // cache.line_bytes) & (cache.num_sets - 1)
    order = np.argsort(sets, kind="stable")
    uniq, starts, counts = np.unique(
        sets[order], return_index=True, return_counts=True
    )
    # order touched sets by access count so the sets still active at any
    # time step are a shrinking prefix
    by_count = np.argsort(-counts, kind="stable")
    uniq, starts, counts = uniq[by_count], starts[by_count], counts[by_count]
    tags, dirty, lru = cache._tags, cache._dirty, cache._lru
    tick0 = cache._tick
    k = uniq.size
    row_ids = np.arange(k)
    for t in range(int(counts[0])):
        while counts[k - 1] <= t:
            k -= 1
        rows = uniq[:k]
        g = order[starts[:k] + t]  # original stream positions, one per set
        addr = lines[g]
        st = stores[g]
        tg = tags[rows]  # (k, assoc) gather
        match = tg == addr[:, None]
        hit = match.any(axis=1)
        invalid = tg == -1
        # victim way on a miss: first invalid way if any, else true LRU
        # (argmax/argmin both take the first way on ties, as the
        # sequential np.nonzero(...)[0] / np.argmin do)
        way = np.where(
            hit,
            match.argmax(axis=1),
            np.where(
                invalid.any(axis=1),
                invalid.argmax(axis=1),
                lru[rows].argmin(axis=1),
            ),
        )
        old_tag = tg[row_ids[:k], way]
        old_dirty = dirty[rows, way]
        wb = ~hit & (old_tag != -1) & old_dirty
        hits[g] = hit
        writebacks[g] = wb
        victims[g[wb]] = old_tag[wb]
        tags[rows, way] = addr
        dirty[rows, way] = np.where(hit, old_dirty | st, st)
        # the sequential path bumps the tick before each access, so access
        # number g (0-based) lands tick0 + g + 1 on the touched way
        lru[rows, way] = tick0 + 1 + g
    cache._tick = tick0 + n
    stats = cache.stats
    nhits = int(np.count_nonzero(hits))
    stats.accesses += n
    stats.hits += nhits
    stats.misses += n - nhits
    stats.writebacks += int(np.count_nonzero(writebacks))
    return hits, writebacks, victims


def replay_line_stream(
    hierarchy: CacheHierarchy,
    lines: np.ndarray,
    stores: np.ndarray,
    op_ids: np.ndarray,
    num_ops: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized equivalent of per-line ``CacheHierarchy.access_line``.

    ``lines``/``stores`` describe vector line accesses in stream order and
    ``op_ids[k]`` names the memory op (0..num_ops-1) access ``k`` belongs
    to.  Updates both cache levels and the hierarchy's DRAM counters
    exactly as the sequential walk would, and returns per-op
    ``(l1_misses, l2_misses)`` count arrays of length ``num_ops`` — the
    same attribution ``access_memop`` produces op by op.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    stores = np.ascontiguousarray(stores, dtype=bool)
    op_ids = np.ascontiguousarray(op_ids, dtype=np.int64)
    with obs.span("timing.cache_replay", cat="timing", lines=int(lines.size)):
        if hierarchy.vector_at_l2:
            # decoupled VPU: vector accesses go straight to the L2
            hits2, wbs2, _ = simulate_cache_stream(hierarchy.l2, lines, stores)
            miss2 = ~hits2
            dram_fills = int(np.count_nonzero(miss2))
            dram_wbs = int(np.count_nonzero(wbs2))
            hierarchy.dram_lines += dram_fills
            hierarchy.dram_writeback_lines += dram_wbs
            obs.count("cache.l2.misses", dram_fills)
            obs.count("cache.dram.fill_lines", dram_fills)
            obs.count("cache.dram.writeback_lines", dram_wbs)
            l2_per_op = np.bincount(op_ids[miss2], minlength=num_ops)
            return np.zeros(num_ops, dtype=np.int64), l2_per_op
        hits1, wbs1, victims1 = simulate_cache_stream(hierarchy.l1, lines, stores)
        miss1 = ~hits1
        obs.count("cache.l1.misses", int(np.count_nonzero(miss1)))
        l1_per_op = np.bincount(op_ids[miss1], minlength=num_ops)
        # Reconstruct the L2 reference stream in its original global order:
        # each L1 miss emits (dirty victim writeback, then the line fill); an
        # L1 hit emits nothing.
        emitted = wbs1.astype(np.int64) + miss1.astype(np.int64)
        ends = np.cumsum(emitted)
        total = int(ends[-1]) if emitted.size else 0
        if total == 0:
            return l1_per_op, np.zeros(num_ops, dtype=np.int64)
        l2_lines = np.empty(total, dtype=np.int64)
        l2_stores = np.empty(total, dtype=bool)
        wb_pos = (ends - emitted)[wbs1]
        l2_lines[wb_pos] = victims1[wbs1]
        l2_stores[wb_pos] = True
        fill_pos = ends[miss1] - 1
        l2_lines[fill_pos] = lines[miss1]
        l2_stores[fill_pos] = stores[miss1]
        hits2, wbs2, _ = simulate_cache_stream(hierarchy.l2, l2_lines, l2_stores)
        # only line fills count toward DRAM fetches and per-op L2 misses;
        # writeback probes update stats/state but are not attributed
        fill_miss = ~hits2[fill_pos]
        dram_fills = int(np.count_nonzero(fill_miss))
        dram_wbs = int(np.count_nonzero(wbs2))
        hierarchy.dram_lines += dram_fills
        hierarchy.dram_writeback_lines += dram_wbs
        obs.count("cache.l2.misses", dram_fills)
        obs.count("cache.dram.fill_lines", dram_fills)
        obs.count("cache.dram.writeback_lines", dram_wbs)
        l2_per_op = np.bincount(op_ids[miss1][fill_miss], minlength=num_ops)
        return l1_per_op, l2_per_op
