"""Batched replay of the LRU cache hierarchy (set-partitioned/compiled).

The sequential model in :mod:`repro.simulator.cache` walks every cache line
through Python — fine for unit tests, but a real conv layer touches 10^7+
lines, which makes per-line Python calls the bottleneck of trace-driven
timing.  This module replays the *same* model over whole access streams,
dispatching the hot loop through the backend registry in
:mod:`repro.simulator.replay_backend`:

* ``numpy`` (always available) — the classic trace-driven
  set-partitioning (Dinero-like): each set's reference stream is
  independent under set-associative LRU, so the global line stream is
  partitioned by set index and all touched sets advance one access per
  NumPy step;
* ``compiled`` (``[compiled]`` extra) — a single-pass Numba kernel over
  the stream, no per-step Python at all;
* ``auto`` — the fastest registered backend.

``workers > 1`` additionally shards the stream across a process pool by
set index (see :mod:`repro.simulator.replay_parallel`) — legal because
set streams are independent, and exact because per-access LRU ticks are
derived from *global* stream positions.

Every path mutates the sequential structures
(:class:`~repro.simulator.cache.SetAssociativeCache` tags/dirty/LRU/tick
and stats, :class:`~repro.simulator.cache.CacheHierarchy` DRAM counters)
**bit-identically** to the per-access path — including the LRU tick values
— so sequential, batched, compiled and sharded replays can be freely
interleaved on one hierarchy.  Equivalence is locked by
``tests/test_replay_equivalence.py`` and the hypothesis suite in
``tests/test_property_cache_fast.py``.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.simulator.cache import CacheHierarchy, SetAssociativeCache
from repro.simulator.replay_backend import resolve_backend

#: How many offending addresses a misaligned-access error names.
_MISALIGNED_EXAMPLES = 4


def _check_alignment(cache: SetAssociativeCache, lines: np.ndarray) -> None:
    """Raise a :class:`SimulationError` describing *all* misaligned accesses.

    The message carries the total count and the first few offending
    addresses (not just the first), so a bad address generator is
    diagnosable from one failure.
    """
    misaligned = lines % cache.line_bytes != 0
    bad_count = int(np.count_nonzero(misaligned))
    if not bad_count:
        return
    examples = ", ".join(
        f"{int(addr):#x}" for addr in lines[misaligned][:_MISALIGNED_EXAMPLES]
    )
    suffix = ", ..." if bad_count > _MISALIGNED_EXAMPLES else ""
    raise SimulationError(
        f"{cache.name}: {bad_count} of {lines.size} accesses not "
        f"line-aligned to {cache.line_bytes} bytes (first offenders: "
        f"{examples}{suffix})"
    )


def simulate_cache_stream(
    cache: SetAssociativeCache,
    lines: np.ndarray,
    stores: np.ndarray,
    *,
    backend: str = "auto",
    workers: int = 1,
    use_pool: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched equivalent of ``cache.access(lines[k], stores[k])`` ∀k.

    Mutates ``cache`` (tags, dirty bits, LRU ticks, tick counter, stats)
    exactly as the sequential accesses would.  Returns per-access arrays
    ``(hits, writebacks, victims)``: ``victims[k]`` is the dirty line
    address evicted by access ``k`` and is only meaningful where
    ``writebacks[k]`` is True (it is -1 elsewhere, but a victim line can
    legitimately be address 0 — test ``writebacks``, not ``victims``).

    ``backend`` selects the hot-loop implementation (bit-identical
    either way); ``workers > 1`` shards the stream by set index across a
    process pool (``use_pool=False`` runs the same sharded merge
    in-process, for tests and pool-less environments).
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    stores = np.ascontiguousarray(stores, dtype=bool)
    n = lines.size
    if n == 0:
        return (
            np.zeros(0, dtype=bool),
            np.zeros(0, dtype=bool),
            np.full(0, -1, dtype=np.int64),
        )
    _check_alignment(cache, lines)
    sets = (lines // cache.line_bytes) & (cache.num_sets - 1)
    tick0 = cache._tick
    if workers > 1:
        from repro.simulator.replay_parallel import replay_sets_sharded

        hits, writebacks, victims = replay_sets_sharded(
            cache, sets, lines, stores, workers=workers,
            backend=backend, use_pool=use_pool,
        )
    else:
        impl = resolve_backend(backend)
        hits, writebacks, victims = impl.replay_sets(
            cache._tags, cache._dirty, cache._lru,
            sets, lines, stores, np.arange(n, dtype=np.int64), tick0,
        )
    cache._tick = tick0 + n
    stats = cache.stats
    nhits = int(np.count_nonzero(hits))
    stats.accesses += n
    stats.hits += nhits
    stats.misses += n - nhits
    stats.writebacks += int(np.count_nonzero(writebacks))
    return hits, writebacks, victims


def replay_line_stream(
    hierarchy: CacheHierarchy,
    lines: np.ndarray,
    stores: np.ndarray,
    op_ids: np.ndarray,
    num_ops: int,
    *,
    backend: str = "auto",
    workers: int = 1,
    use_pool: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched equivalent of per-line ``CacheHierarchy.access_line``.

    ``lines``/``stores`` describe vector line accesses in stream order and
    ``op_ids[k]`` names the memory op (0..num_ops-1) access ``k`` belongs
    to.  Updates both cache levels and the hierarchy's DRAM counters
    exactly as the sequential walk would, and returns per-op
    ``(l1_misses, l2_misses)`` count arrays of length ``num_ops`` — the
    same attribution ``access_memop`` produces op by op.  ``backend`` and
    ``workers`` are forwarded to :func:`simulate_cache_stream` for each
    cache level.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    stores = np.ascontiguousarray(stores, dtype=bool)
    op_ids = np.ascontiguousarray(op_ids, dtype=np.int64)
    kwargs = dict(backend=backend, workers=workers, use_pool=use_pool)
    with obs.span("timing.cache_replay", cat="timing", lines=int(lines.size)):
        if hierarchy.vector_at_l2:
            # decoupled VPU: vector accesses go straight to the L2
            hits2, wbs2, _ = simulate_cache_stream(
                hierarchy.l2, lines, stores, **kwargs
            )
            miss2 = ~hits2
            dram_fills = int(np.count_nonzero(miss2))
            dram_wbs = int(np.count_nonzero(wbs2))
            hierarchy.dram_lines += dram_fills
            hierarchy.dram_writeback_lines += dram_wbs
            obs.count("cache.l2.misses", dram_fills)
            obs.count("cache.dram.fill_lines", dram_fills)
            obs.count("cache.dram.writeback_lines", dram_wbs)
            l2_per_op = np.bincount(op_ids[miss2], minlength=num_ops)
            return np.zeros(num_ops, dtype=np.int64), l2_per_op
        hits1, wbs1, victims1 = simulate_cache_stream(
            hierarchy.l1, lines, stores, **kwargs
        )
        miss1 = ~hits1
        obs.count("cache.l1.misses", int(np.count_nonzero(miss1)))
        l1_per_op = np.bincount(op_ids[miss1], minlength=num_ops)
        # Reconstruct the L2 reference stream in its original global order:
        # each L1 miss emits (dirty victim writeback, then the line fill); an
        # L1 hit emits nothing.
        emitted = wbs1.astype(np.int64) + miss1.astype(np.int64)
        ends = np.cumsum(emitted)
        total = int(ends[-1]) if emitted.size else 0
        if total == 0:
            return l1_per_op, np.zeros(num_ops, dtype=np.int64)
        l2_lines = np.empty(total, dtype=np.int64)
        l2_stores = np.empty(total, dtype=bool)
        wb_pos = (ends - emitted)[wbs1]
        l2_lines[wb_pos] = victims1[wbs1]
        l2_stores[wb_pos] = True
        fill_pos = ends[miss1] - 1
        l2_lines[fill_pos] = lines[miss1]
        l2_stores[fill_pos] = stores[miss1]
        hits2, wbs2, _ = simulate_cache_stream(
            hierarchy.l2, l2_lines, l2_stores, **kwargs
        )
        # only line fills count toward DRAM fetches and per-op L2 misses;
        # writeback probes update stats/state but are not attributed
        fill_miss = ~hits2[fill_pos]
        dram_fills = int(np.count_nonzero(fill_miss))
        dram_wbs = int(np.count_nonzero(wbs2))
        hierarchy.dram_lines += dram_fills
        hierarchy.dram_writeback_lines += dram_wbs
        obs.count("cache.l2.misses", dram_fills)
        obs.count("cache.dram.fill_lines", dram_fills)
        obs.count("cache.dram.writeback_lines", dram_wbs)
        l2_per_op = np.bincount(op_ids[miss1][fill_miss], minlength=num_ops)
        return l1_per_op, l2_per_op
