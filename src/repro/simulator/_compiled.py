"""Optional Numba-compiled hot loops for trace replay (``[compiled]`` extra).

Two Python-level loops survive the columnar rewrites of PR 2–3:

* the per-step true-LRU set update inside
  :func:`repro.simulator.cache_fast.simulate_cache_stream` — the NumPy
  set-partitioned engine still pays one Python iteration per time step;
* the left-to-right chime/cost fold in :mod:`repro.simulator.timing` —
  NumPy evaluates it as ~10 full-length temporaries before the
  ``np.add.accumulate``.

This module holds single-pass replacements for both, written as plain
Python functions over NumPy arrays and JIT-compiled with
:func:`numba.njit` when Numba is importable.  **Importing this module
never fails**: without Numba, :data:`HAVE_NUMBA` is ``False``, the
``compiled`` backend is simply not registered, and the undecorated
Python functions remain importable so the test suite can validate the
kernel *algorithms* (slowly) on any machine.

Bit-identical semantics are a hard contract, not an aspiration:

* :func:`replay_sets_kernel` is the literal per-access algorithm of
  :meth:`repro.simulator.cache.SetAssociativeCache.access` (first
  matching way, first invalid way, first-minimum LRU way, tick =
  ``tick0 + 1 + position``) — integer state, so equality is exact;
* the cost folds replicate the batched NumPy expressions of
  ``timing._run_batched`` operation for operation in the same order, so
  every IEEE-754 intermediate — and therefore the final accumulated
  float — is bit-identical.  Locked by ``tests/test_replay_equivalence``
  and the hypothesis suite in ``tests/test_property_cache_fast.py``.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only on the [compiled] CI leg
    import numba

    HAVE_NUMBA = True
except ImportError:  # the always-available fallback path
    numba = None
    HAVE_NUMBA = False

#: Version of the optional dependency, or None (for diagnostics/tests).
NUMBA_VERSION = getattr(numba, "__version__", None)


def _jit(func):
    """``numba.njit`` when available, identity otherwise.

    ``cache=True`` persists the compiled machine code next to the module
    so repeated runs (and spawned pool workers) skip recompilation;
    ``fastmath`` stays off — reassociation would break the bit-identical
    contract with the NumPy folds.
    """
    if numba is None:
        return func
    return numba.njit(cache=True, fastmath=False)(func)


@_jit
def replay_sets_kernel(
    tags: np.ndarray,
    dirty: np.ndarray,
    lru: np.ndarray,
    sets: np.ndarray,
    lines: np.ndarray,
    stores: np.ndarray,
    positions: np.ndarray,
    tick0: int,
    hits: np.ndarray,
    writebacks: np.ndarray,
    victims: np.ndarray,
) -> None:
    """Sequential true-LRU replay of one access stream, compiled.

    ``sets[k]`` is the row of ``tags``/``dirty``/``lru`` access ``k``
    maps to (already masked/remapped by the caller — global set indices
    for a whole cache, local rows for a shard) and ``positions[k]`` its
    global stream position, which fixes the LRU tick at
    ``tick0 + 1 + positions[k]`` exactly as the per-access path does.
    Mutates the state arrays and the preallocated output arrays in
    place.
    """
    n = lines.shape[0]
    assoc = tags.shape[1]
    for k in range(n):
        s = sets[k]
        addr = lines[k]
        st = stores[k]
        way = -1
        for w in range(assoc):
            if tags[s, w] == addr:
                way = w
                break
        if way >= 0:  # hit: refresh LRU, a store marks the line dirty
            hits[k] = True
            if st:
                dirty[s, way] = True
        else:  # miss: first invalid way, else the true-LRU way
            for w in range(assoc):
                if tags[s, w] == -1:
                    way = w
                    break
            if way < 0:
                way = 0
                best = lru[s, 0]
                for w in range(1, assoc):
                    if lru[s, w] < best:
                        best = lru[s, w]
                        way = w
            if tags[s, way] != -1 and dirty[s, way]:
                writebacks[k] = True
                victims[k] = tags[s, way]
            tags[s, way] = addr
            dirty[s, way] = st
        lru[s, way] = tick0 + 1 + positions[k]


@_jit
def vector_cost_fold_kernel(
    vl: np.ndarray,
    sew_bits: np.ndarray,
    datapath: float,
    issue_cycles: float,
) -> float:
    """Fused chime computation + left-to-right fold for vector rows.

    Replicates ``max(issue, ceil(vl / max(1, datapath*32/sew)))``
    accumulated strictly left to right — the exact op sequence of the
    NumPy fold (``np.maximum``/``np.ceil``/``np.add.accumulate``).
    """
    scale = datapath * 32.0
    acc = 0.0
    for i in range(vl.shape[0]):
        denom = scale / sew_bits[i]
        if denom < 1.0:
            denom = 1.0
        cost = np.ceil(vl[i] / denom)
        if cost < issue_cycles:
            cost = issue_cycles
        acc = acc + cost
    return acc


@_jit
def analytical_grid_kernel(
    cell_of_row: np.ndarray,
    vector_ops: np.ndarray,
    vector_active: np.ndarray,
    vmem_ops: np.ndarray,
    vmem_active: np.ndarray,
    nonunit_fraction: np.ndarray,
    scalar_ops: np.ndarray,
    stream_bytes: np.ndarray,
    stream_passes: np.ndarray,
    stream_reuse_ws: np.ndarray,
    stream_scalar: np.ndarray,
    stream_resident: np.ndarray,
    chime_den_unit: np.ndarray,
    chime_den_nonunit: np.ndarray,
    deadtime: np.ndarray,
    vector_issue: np.ndarray,
    vmem_issue: np.ndarray,
    scalar_cpi: np.ndarray,
    l2_bytes_per_cycle: np.ndarray,
    cache_bytes: np.ndarray,
    vec_exposure: np.ndarray,
    line_bytes: np.ndarray,
    dram_latency: np.ndarray,
    mlp: np.ndarray,
    dram_bw: np.ndarray,
    phase_startup: np.ndarray,
    scalar_exposure_on: np.ndarray,
    resident_source_on: np.ndarray,
    out_vector: np.ndarray,
    out_scalar: np.ndarray,
    out_l2: np.ndarray,
    out_dram: np.ndarray,
    out_latency: np.ndarray,
    out_startup: np.ndarray,
    out_dram_bytes: np.ndarray,
    out_l2_bytes: np.ndarray,
) -> None:
    """Per-row analytical phase timing over a whole PhaseTable, compiled.

    One scalar loop over the (cell, phase) rows of
    :class:`repro.simulator.analytical.grid.PhaseTable`, replicating the
    elementwise NumPy backend (`grid._evaluate_rows_numpy`) — and hence
    the per-cell :meth:`AnalyticalTimingModel.phase_cycles` — operation
    for operation: ``np.ceil`` chimes against the per-cell hoisted
    denominators, the exact ``(a + b) + c`` associations of the vmem
    terms, and left-to-right folds over the zero-padded stream columns.
    All inputs are float64 (masks bool); outputs are written in place.
    """
    n_rows = cell_of_row.shape[0]
    n_streams = stream_bytes.shape[1]
    for r in range(n_rows):
        c = cell_of_row[r]
        dt = deadtime[c]

        chime_v = np.ceil(vector_active[r] / chime_den_unit[c])
        if chime_v < 1.0:
            chime_v = 1.0
        lane = chime_v
        if vector_issue[c] > lane:
            lane = vector_issue[c]
        vec = vector_ops[r] * (lane + dt)
        if vmem_ops[r] > 0.0:
            unit_ops = vmem_ops[r] * (1.0 - nonunit_fraction[r])
            strided_ops = vmem_ops[r] * nonunit_fraction[r]
            chime_m = np.ceil(vmem_active[r] / chime_den_unit[c])
            if chime_m < 1.0:
                chime_m = 1.0
            chime_mn = np.ceil(vmem_active[r] / chime_den_nonunit[c])
            if chime_mn < 1.0:
                chime_mn = 1.0
            vec = vec + unit_ops * ((vmem_issue[c] + chime_m) + dt)
            vec = vec + strided_ops * ((vmem_issue[c] + chime_mn) + dt)
        out_vector[r] = vec

        out_scalar[r] = scalar_ops[r] * scalar_cpi[c]

        cache = cache_bytes[c]
        l2b = 0.0
        dramb = 0.0
        lat = 0.0
        for j in range(n_streams):
            b = stream_bytes[r, j]
            passes = stream_passes[r, j]
            ws = stream_reuse_ws[r, j]
            l2b = l2b + b * passes
            if ws > 0.0:
                res = cache / ws
                if res > 1.0:
                    res = 1.0
            else:
                res = 1.0
            compulsory = b
            if stream_resident[r, j] and resident_source_on[c]:
                if b > 0.0:
                    res_src = cache / b
                    if res_src > 1.0:
                        res_src = 1.0
                else:
                    res_src = 1.0
                compulsory = b * (1.0 - res_src)
            extra = b * (passes - 1.0) * (1.0 - res)
            sbytes = compulsory + extra
            dramb = dramb + sbytes
            if stream_scalar[r, j] and scalar_exposure_on[c]:
                exposure = 1.0
            else:
                exposure = vec_exposure[c]
            lat = lat + (
                exposure * (sbytes / line_bytes[c]) * dram_latency[c] / mlp[c]
            )
        out_l2_bytes[r] = l2b
        out_dram_bytes[r] = dramb
        out_latency[r] = lat
        out_l2[r] = l2b / l2_bytes_per_cycle[c]
        out_dram[r] = dramb / dram_bw[c]
        out_startup[r] = phase_startup[c]


@_jit
def memory_cost_fold_kernel(
    vl: np.ndarray,
    elem_bytes: np.ndarray,
    stride: np.ndarray,
    indexed: np.ndarray,
    l1_misses: np.ndarray,
    l2_misses: np.ndarray,
    datapath: float,
    nonunit_factor: float,
    startup_cycles: float,
    l2_latency: float,
    mlp: float,
    dram_latency: float,
    prefetch_factor: float,
    line_bytes: int,
    bytes_per_cycle: float,
    vector_at_l2: bool,
) -> float:
    """Fused per-memory-op pricing + left-to-right fold, compiled.

    Every arithmetic step mirrors the batched NumPy expression in
    ``timing._run_batched`` (same operations, same order, scalar
    subexpressions hoisted exactly as NumPy evaluates them once), so the
    returned float is bit-identical to
    ``_exact_sum((startup + chime) + penalty)``.
    """
    strided_dp = datapath / nonunit_factor
    dram_den = mlp * prefetch_factor
    acc = 0.0
    for i in range(vl.shape[0]):
        s = stride[i]
        if s < 0:
            s = -s
        unit = (not indexed[i]) and s == elem_bytes[i]
        eff_dp = datapath if unit else strided_dp
        if eff_dp < 1.0:
            eff_dp = 1.0
        chime = np.ceil(vl[i] / eff_dp)
        penalty = (l1_misses[i] * l2_latency) / mlp
        penalty = penalty + (l2_misses[i] * dram_latency) / dram_den
        if vector_at_l2:
            round_trips = (vl[i] * elem_bytes[i]) / line_bytes
            if round_trips < 1.0:
                round_trips = 1.0
            penalty = penalty + (round_trips * l2_latency) / mlp
        floor = (l2_misses[i] * line_bytes) / bytes_per_cycle
        if penalty < floor:
            penalty = floor
        acc = acc + ((startup_cycles + chime) + penalty)
    return acc
