"""Energy model for the co-design study.

Both papers motivate vector CPUs with *energy efficiency* ("high performance
and power efficiency", "lower energy consumption") but report only
performance and area.  This extension closes the loop with an event-based
energy model in the style of accelerator estimators (Timeloop/Accelergy):
each phase's activity counts are priced with per-event energies at 7 nm,
plus a leakage term proportional to chip area and runtime.

Per-event constants are representative published magnitudes for a 7 nm
class process (vector MAC ~0.5 pJ/lane-op, SRAM ~1 pJ/B, DRAM ~15 pJ/B,
scalar op ~5 pJ, leakage ~3 mW/mm^2); results should be read as *relative*
energies across configurations, consistent with the rest of the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.registry import effective_algorithm
from repro.errors import ConfigError
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.cachemodel import phase_l2_bytes, stream_dram_bytes
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.area.chip import chip_area_mm2
from repro.simulator.hwconfig import HardwareConfig


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event energies (picojoules) and leakage at 7 nm."""

    vector_lane_op_pj: float = 0.5  # per active f32 lane-operation
    vector_issue_pj: float = 2.0  # per vector instruction (control)
    scalar_op_pj: float = 5.0  # per scalar instruction
    l2_byte_pj: float = 1.0
    dram_byte_pj: float = 15.0
    leakage_mw_per_mm2: float = 3.0

    def __post_init__(self) -> None:
        for f in ("vector_lane_op_pj", "scalar_op_pj", "l2_byte_pj",
                  "dram_byte_pj", "leakage_mw_per_mm2"):
            if getattr(self, f) <= 0:
                raise ConfigError(f"{f} must be positive")


DEFAULT_ENERGY = EnergyConstants()


@dataclass
class EnergyBreakdown:
    """Energy (joules) by component for one layer/network execution."""

    compute_j: float = 0.0
    scalar_j: float = 0.0
    l2_j: float = 0.0
    dram_j: float = 0.0
    leakage_j: float = 0.0

    @property
    def total_j(self) -> float:
        return (
            self.compute_j + self.scalar_j + self.l2_j + self.dram_j
            + self.leakage_j
        )

    def merge(self, other: "EnergyBreakdown") -> None:
        self.compute_j += other.compute_j
        self.scalar_j += other.scalar_j
        self.l2_j += other.l2_j
        self.dram_j += other.dram_j
        self.leakage_j += other.leakage_j


def layer_energy(
    algorithm: str,
    spec: ConvSpec,
    hw: HardwareConfig,
    constants: EnergyConstants = DEFAULT_ENERGY,
    freq_ghz: float = 2.0,
) -> EnergyBreakdown:
    """Energy of one layer under one algorithm/config (Winograd* fallback)."""
    algo = effective_algorithm(algorithm, spec)
    phases = algo.schedule(spec, hw)
    model = AnalyticalTimingModel(hw)
    out = EnergyBreakdown()
    pj = 1e-12
    total_cycles = 0.0
    for phase in phases:
        pc = model.phase_cycles(phase)
        total_cycles += pc.cycles
        lane_ops = (phase.vector_ops + phase.vmem_ops) * max(
            1.0, phase.vector_active or phase.vmem_active
        )
        instrs = phase.vector_ops + phase.vmem_ops
        out.compute_j += pj * (
            lane_ops * constants.vector_lane_op_pj
            + instrs * constants.vector_issue_pj
        )
        out.scalar_j += pj * phase.scalar_ops * constants.scalar_op_pj
        out.l2_j += pj * phase_l2_bytes(phase.streams) * constants.l2_byte_pj
        out.dram_j += pj * sum(
            stream_dram_bytes(s, hw) for s in phase.streams
        ) * constants.dram_byte_pj
    area = chip_area_mm2(hw.vlen_bits, hw.l2_mib)
    seconds = total_cycles / (freq_ghz * 1e9)
    out.leakage_j += constants.leakage_mw_per_mm2 * 1e-3 * area * seconds
    return out


def network_energy(
    specs: list[ConvSpec],
    hw: HardwareConfig,
    policy: str = "optimal",
    constants: EnergyConstants = DEFAULT_ENERGY,
) -> EnergyBreakdown:
    """Energy of a network's conv layers under a policy (see throughput)."""
    from repro.algorithms.registry import ALGORITHM_NAMES, best_algorithm

    out = EnergyBreakdown()
    for spec in specs:
        if policy == "optimal":
            name, _ = best_algorithm(spec, hw)
        elif policy in ALGORITHM_NAMES:
            name = policy
        else:
            raise ConfigError(f"unknown policy {policy!r}")
        out.merge(layer_energy(name, spec, hw, constants))
    return out
