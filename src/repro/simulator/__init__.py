"""Hardware models: configs, caches, DRAM, trace timing, analytical timing, area.

Two timing engines share one :class:`~repro.simulator.hwconfig.HardwareConfig`:

* :mod:`repro.simulator.timing` replays instruction traces from the
  functional machine against a set-associative LRU cache hierarchy —
  cycle-approximate, used on small kernels;
* :mod:`repro.simulator.analytical` evaluates algorithm *schedules*
  (loop-nest + data-stream descriptions) in closed form — used on full
  convolutional layers, where per-instruction simulation is infeasible.

The analytical model is validated against the trace engine in
``tests/test_model_validation.py``.
"""

from repro.simulator.hwconfig import HardwareConfig, VectorUnitStyle
from repro.simulator.cache import SetAssociativeCache, CacheHierarchy, CacheStats
from repro.simulator.cache_fast import replay_line_stream, simulate_cache_stream
from repro.simulator.memory import DramModel
from repro.simulator.replay_backend import (
    BACKEND_CHOICES,
    ReplayBackend,
    available_backends,
    resolve_backend,
)
from repro.simulator.analytical.grid import (
    GRID_BACKEND_CHOICES,
    PhaseTable,
    available_grid_backends,
    configure_grid,
    evaluate_phase_table,
    grid_defaults,
    resolve_grid_backend,
)
from repro.simulator.timing import (
    TraceTimingModel,
    TimingResult,
    configure_replay,
    replay_defaults,
)

__all__ = [
    "BACKEND_CHOICES",
    "GRID_BACKEND_CHOICES",
    "PhaseTable",
    "available_grid_backends",
    "configure_grid",
    "evaluate_phase_table",
    "grid_defaults",
    "resolve_grid_backend",
    "HardwareConfig",
    "VectorUnitStyle",
    "SetAssociativeCache",
    "CacheHierarchy",
    "CacheStats",
    "DramModel",
    "ReplayBackend",
    "TraceTimingModel",
    "TimingResult",
    "available_backends",
    "configure_replay",
    "replay_defaults",
    "replay_line_stream",
    "resolve_backend",
    "simulate_cache_stream",
]
