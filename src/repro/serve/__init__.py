"""A real async serving layer over the co-design stack.

Where :mod:`repro.serving` *simulates* request-level dynamics,
:mod:`repro.serve` actually serves: ``repro-serve`` is an asyncio
service that answers algorithm-selection queries (which convolution
algorithm should this layer use on this hardware, and what will it
cost?) from the trained predictor, with an engine-backed fallback
through the shared content-addressed memo cache, micro-batching, and
PR 5's overload policies — admission control, shedding, SLO accounting,
a circuit breaker — promoted from simulator internals to real
middleware.

The package ships its own proving ground: :mod:`repro.serve.loadgen`
generates seeded diurnal/bursty traces and replays them against the
in-process service on a virtual clock, which is how the integration
suite (``tests/test_serve_integration.py``) pins response parity,
SLO safety under overload and breaker behavior deterministically.
See ``docs/SERVING.md``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.clock import Clock, MonotonicClock, VirtualClock
from repro.serve.loadgen import (
    ReplayResult,
    TimedRequest,
    TraceSpec,
    default_workload,
    generate_trace,
    replay,
)
from repro.serve.middleware import (
    AdmissionController,
    CircuitBreaker,
    ServingLedger,
)
from repro.serve.protocol import (
    ServeRequest,
    ServeResponse,
    error_response,
    shed_response,
)
from repro.serve.server import AsyncServeServer, ServeApp, main, stats_dict
from repro.serve.service import FALLBACK_POLICIES, PredictionService

__all__ = [
    "AdmissionController",
    "AsyncServeServer",
    "CircuitBreaker",
    "Clock",
    "FALLBACK_POLICIES",
    "MicroBatcher",
    "MonotonicClock",
    "PredictionService",
    "ReplayResult",
    "ServeApp",
    "ServeRequest",
    "ServeResponse",
    "ServingLedger",
    "TimedRequest",
    "TraceSpec",
    "VirtualClock",
    "default_workload",
    "error_response",
    "generate_trace",
    "main",
    "replay",
    "shed_response",
    "stats_dict",
]
