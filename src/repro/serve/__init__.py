"""A real async serving layer over the co-design stack.

Where :mod:`repro.serving` *simulates* request-level dynamics,
:mod:`repro.serve` actually serves: ``repro-serve`` is an asyncio
service that answers algorithm-selection queries (which convolution
algorithm should this layer use on this hardware, and what will it
cost?) from the trained predictor, with an engine-backed fallback
through the shared content-addressed memo cache, micro-batching, and
PR 5's overload policies — admission control, shedding, SLO accounting,
a circuit breaker — promoted from simulator internals to real
middleware.

Since PR 10 the endpoint also survives replica failure:
:mod:`repro.serve.router` runs N service replicas behind one
consistent-hash front end (``repro-serve --replicas 4``) with
per-replica health tracking (:mod:`repro.serve.health`), deadline
budgets, retry-on-a-different-replica, optional request hedging and
graceful drain/rejoin — all deterministic under the fault plane's
``replica.*``/``probe.drop`` sites.

The package ships its own proving ground: :mod:`repro.serve.loadgen`
generates seeded diurnal/bursty traces and replays them against the
in-process service (or a whole replica pool, :func:`routed_replay`) on
a virtual clock, which is how the integration suite
(``tests/test_serve_integration.py``, ``tests/test_serve_router.py``)
pins response parity, SLO safety under overload and failover behavior
deterministically.  See ``docs/SERVING.md``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.clock import Clock, MonotonicClock, VirtualClock
from repro.serve.health import ReplicaHealth
from repro.serve.loadgen import (
    ReplayResult,
    RoutedReplayResult,
    TimedRequest,
    TraceSpec,
    default_workload,
    generate_trace,
    replay,
    routed_replay,
)
from repro.serve.middleware import (
    AdmissionController,
    CircuitBreaker,
    ServingLedger,
)
from repro.serve.protocol import (
    ServeRequest,
    ServeResponse,
    error_response,
    shed_response,
)
from repro.serve.router import (
    InProcessReplica,
    ReplicaHandle,
    ReplicaRouter,
    RoutedOutcome,
    RouterStats,
)
from repro.serve.server import AsyncServeServer, ServeApp, main, stats_dict
from repro.serve.service import FALLBACK_POLICIES, PredictionService

__all__ = [
    "AdmissionController",
    "AsyncServeServer",
    "CircuitBreaker",
    "Clock",
    "FALLBACK_POLICIES",
    "InProcessReplica",
    "MicroBatcher",
    "MonotonicClock",
    "PredictionService",
    "ReplayResult",
    "ReplicaHandle",
    "ReplicaHealth",
    "ReplicaRouter",
    "RoutedOutcome",
    "RoutedReplayResult",
    "RouterStats",
    "ServeApp",
    "ServeRequest",
    "ServeResponse",
    "ServingLedger",
    "TimedRequest",
    "TraceSpec",
    "VirtualClock",
    "default_workload",
    "error_response",
    "generate_trace",
    "main",
    "replay",
    "routed_replay",
    "shed_response",
    "stats_dict",
]
