"""The replica-pool front end: shard, dispatch, retry, hedge, survive.

:class:`ReplicaRouter` runs a pool of prediction-service replicas behind
one ``handle_batch`` interface and makes the endpoint survive replica
failure:

* **Sharding** — requests are routed by hardware configuration over a
  consistent-hash ring (each replica holds ``ring_weight`` virtual
  nodes), so repeat traffic for one configuration lands on the same
  replica (warm selection caches) and the ring's walk order doubles as
  the deterministic **spillover** order when that replica is down.
* **Health** — every replica carries a
  :class:`~repro.serve.health.ReplicaHealth` tracker fed by passive
  dispatch outcomes and periodic active probes; ejected replicas take no
  traffic until their seeded half-open recovery window readmits them.
* **Deadlines, retries, hedging** — each request carries a deadline
  budget (``arrival + deadline_s``) that is checked at every hop: a
  failed dispatch (replica crash, hang, transport error) is retried with
  exponential backoff on a *different* replica while budget remains, and
  in priced (virtual-clock) mode a request whose projected queue wait
  exceeds ``hedge_after_s`` is hedged — dispatched a second time on the
  next replica, first finish wins, both replicas pay the capacity.
* **Drain / restart** — :meth:`drain` removes a replica from rotation
  (in-flight work finishes; no new dispatches), :meth:`rejoin` brings it
  back through the half-open gate.

The router runs in two modes sharing one dispatch/health core:
``handle_batch`` (wall clock — the asyncio server's batch handler) and
``route_priced`` (virtual clock — the deterministic routed replay in
:func:`repro.serve.loadgen.routed_replay`, where each replica is a
single-server queue and every latency is derived from engine-priced
service times).  The :mod:`repro.faults` sites ``replica.crash``,
``replica.hang``, ``replica.slow`` and ``probe.drop`` fire at dispatch
and probe points keyed by per-replica ordinals, so chaos runs are
bit-reproducible.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro import faults, obs
from repro.errors import ServeError
from repro.faults.plan import _hash_unit
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.health import DRAINING, HEALTHY, ReplicaHealth
from repro.serve.protocol import ServeRequest, ServeResponse
from repro.serve.service import PredictionService

#: An injected ``replica.slow`` dispatch serves at this multiple of the
#: modeled service time (the passive latency signal the health tracker
#: degrades on).
SLOW_FACTOR = 10.0


class ReplicaError(ServeError):
    """A replica failed to serve a dispatch (crash, hang, transport)."""


class ReplicaHandle:
    """The interface a router replica implements.

    In-process replicas wrap a :class:`PredictionService`; a TCP backend
    would implement the same three methods over a connection.
    """

    name: str = ""

    def dispatch(
        self, requests: list[ServeRequest]
    ) -> list[ServeResponse]:  # pragma: no cover - interface
        raise NotImplementedError

    def probe(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {}


class InProcessReplica(ReplicaHandle):
    """A :class:`PredictionService` as a router replica."""

    def __init__(self, name: str, service: PredictionService) -> None:
        if not name:
            raise ServeError("replica name must be non-empty")
        self.name = name
        self.service = service

    def dispatch(self, requests: list[ServeRequest]) -> list[ServeResponse]:
        return self.service.handle_batch(requests)

    def probe(self) -> bool:
        return self.service.probe()

    def snapshot(self) -> dict:
        return self.service.snapshot()


@dataclass
class RoutedOutcome:
    """One request's final disposition, with full routing provenance."""

    response: ServeResponse
    preferred: str
    replica: str  # "" when no replica could serve it
    attempts: int
    start: float
    finish: float
    hedged: bool = False


@dataclass
class RouterStats:
    """Router-level counters; response classes partition admitted traffic.

    Conservation (asserted by the property suite): every admitted request
    lands in exactly one of ``completed_direct`` (first attempt, preferred
    replica), ``completed_failover`` (served by another replica, via
    retry or spillover), ``completed_hedge`` (the hedge won),
    ``deadline_misses`` or ``unrouted``.
    """

    dispatches: int = 0
    dispatch_failures: int = 0
    retries: int = 0
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    ejections: int = 0
    degradations: int = 0
    recoveries: int = 0
    probes: int = 0
    probe_drops: int = 0
    replica_crashes: int = 0
    replica_hangs: int = 0
    replica_slows: int = 0
    deadline_misses: int = 0
    unrouted: int = 0
    completed_direct: int = 0
    completed_failover: int = 0
    completed_hedge: int = 0

    def completed(self) -> int:
        return (
            self.completed_direct
            + self.completed_failover
            + self.completed_hedge
        )

    def as_dict(self) -> dict[str, int]:
        out = {
            name: getattr(self, name)
            for name in (
                "dispatches", "dispatch_failures", "retries", "failovers",
                "hedges", "hedge_wins", "ejections", "degradations",
                "recoveries", "probes", "probe_drops", "replica_crashes",
                "replica_hangs", "replica_slows", "deadline_misses",
                "unrouted", "completed_direct", "completed_failover",
                "completed_hedge",
            )
        }
        out["completed"] = self.completed()
        return out


@dataclass
class _Attempt:
    responses: list[ServeResponse] | None
    penalty_s: float
    slow: bool


class ReplicaRouter:
    """Health-aware consistent-hash routing over a replica pool."""

    def __init__(
        self,
        replicas: Sequence[ReplicaHandle],
        clock: Clock | None = None,
        seed: int = 0,
        deadline_s: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.005,
        hedge_after_s: float | None = None,
        dispatch_timeout_s: float = 1.0,
        probe_interval_s: float | None = None,
        spill_wait_s: float | None = None,
        ring_weight: int = 32,
        health_kwargs: dict | None = None,
    ) -> None:
        if not replicas:
            raise ServeError("router needs at least one replica")
        names = [r.name for r in replicas]
        if len(set(names)) != len(names):
            raise ServeError(f"replica names must be unique, got {names}")
        if max_retries < 0:
            raise ServeError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise ServeError("retry_backoff_s must be >= 0")
        if deadline_s is not None and deadline_s <= 0:
            raise ServeError(f"deadline_s must be positive, got {deadline_s}")
        if hedge_after_s is not None and hedge_after_s < 0:
            raise ServeError("hedge_after_s must be >= 0")
        if dispatch_timeout_s <= 0:
            raise ServeError("dispatch_timeout_s must be positive")
        if probe_interval_s is not None and probe_interval_s <= 0:
            raise ServeError("probe_interval_s must be positive")
        if ring_weight < 1:
            raise ServeError(f"ring_weight must be >= 1, got {ring_weight}")
        self.replicas: dict[str, ReplicaHandle] = {r.name: r for r in replicas}
        self.clock = clock or MonotonicClock()
        self.seed = seed
        self.deadline_s = deadline_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.hedge_after_s = hedge_after_s
        self.dispatch_timeout_s = dispatch_timeout_s
        self.probe_interval_s = probe_interval_s
        self.spill_wait_s = spill_wait_s
        self.stats = RouterStats()
        self.health: dict[str, ReplicaHealth] = {
            name: ReplicaHealth(name, seed=seed, **(health_kwargs or {}))
            for name in names
        }
        self._free_at: dict[str, float] = {name: 0.0 for name in names}
        self._inflight: dict[str, list[float]] = {name: [] for name in names}
        self._dispatch_seq: dict[str, int] = {name: 0 for name in names}
        self._probe_seq: dict[str, int] = {name: 0 for name in names}
        first = probe_interval_s if probe_interval_s is not None else 0.0
        self._next_probe: dict[str, float] = {name: first for name in names}
        # the ring: ring_weight seeded virtual nodes per replica
        points: list[tuple[float, str]] = []
        for name in names:
            for v in range(ring_weight):
                points.append(
                    (_hash_unit(seed, "router.ring", f"{name}:{v}"), name)
                )
        points.sort()
        self._ring_pos = [p for p, _ in points]
        self._ring_name = [n for _, n in points]
        self._order_cache: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------ #
    # sharding
    # ------------------------------------------------------------------ #
    @staticmethod
    def shard_key(request: ServeRequest) -> str:
        """The hardware-configuration key a request shards on."""
        hw = request.hw
        return (
            f"{hw.vlen_bits}b:{hw.l2_mib:g}MiB:"
            f"{hw.freq_ghz:g}GHz:{hw.l1_kib}k"
        )

    def ring_order(self, key: str) -> tuple[str, ...]:
        """All replica names in ring-walk order for ``key``.

        The first entry is the preferred replica; the rest are the
        spillover sequence.  Pure function of (seed, replica names), so
        every process routes identically.
        """
        cached = self._order_cache.get(key)
        if cached is not None:
            return cached
        pos = _hash_unit(self.seed, "router.shard", key)
        start = bisect_right(self._ring_pos, pos) % len(self._ring_pos)
        order: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._ring_name)):
            name = self._ring_name[(start + i) % len(self._ring_name)]
            if name not in seen:
                seen.add(name)
                order.append(name)
            if len(order) == len(self.replicas):
                break
        result = tuple(order)
        self._order_cache[key] = result
        return result

    def preferred(self, request: ServeRequest) -> str:
        return self.ring_order(self.shard_key(request))[0]

    def _candidates(
        self, key: str, now: float, tried: Iterable[str] = ()
    ) -> list[str]:
        """Traffic-eligible replicas: healthy, then degraded, then
        half-open — each group in ring order, minus already-tried ones."""
        order = [n for n in self.ring_order(key) if n not in set(tried)]
        healthy = [n for n in order if self.health[n].state == HEALTHY]
        degraded = [
            n for n in order
            if self.health[n].state == "degraded"
        ]
        halfopen = [
            n for n in order
            if self.health[n].half_open(now) and n not in healthy
        ]
        return healthy + degraded + halfopen

    # ------------------------------------------------------------------ #
    # health plumbing
    # ------------------------------------------------------------------ #
    def _note(self, transition: str | None) -> None:
        if transition in ("ejected", "re-ejected"):
            self.stats.ejections += 1
            obs.count("router.ejections")
        elif transition == "degraded":
            self.stats.degradations += 1
            obs.count("router.degradations")
        elif transition == "recovered":
            self.stats.recoveries += 1
            obs.count("router.recoveries")

    def run_probes(self, now: float) -> None:
        """Fire every active probe scheduled at or before ``now``."""
        if self.probe_interval_s is None:
            return
        for name in self.replicas:
            while self._next_probe[name] <= now:
                at = self._next_probe[name]
                self._next_probe[name] += self.probe_interval_s
                self._probe_one(name, at)

    def _probe_one(self, name: str, at: float) -> None:
        tracker = self.health[name]
        if tracker.state == DRAINING:
            return
        seq = self._probe_seq[name]
        self._probe_seq[name] = seq + 1
        self.stats.probes += 1
        plan = faults.active_plan()
        if plan is not None and plan.drops_probe(name, seq):
            faults.mark_injected("probe.drop")
            self.stats.probe_drops += 1
            obs.count("router.probe_drops")
            ok = False
        else:
            try:
                ok = self.replicas[name].probe()
            except Exception:
                ok = False
        if tracker.state == "ejected" and not tracker.half_open(at):
            return  # still cooling down; the probe cannot readmit it early
        self._note(
            tracker.record_success(at) if ok else tracker.record_failure(at)
        )

    def drain(self, name: str) -> None:
        """Take ``name`` out of rotation; in-flight work finishes."""
        if name not in self.health:
            raise ServeError(f"unknown replica {name!r}")
        self.health[name].drain()
        obs.count("router.drains")

    def rejoin(self, name: str, now: float | None = None) -> None:
        """Bring a drained replica back through the half-open gate."""
        if name not in self.health:
            raise ServeError(f"unknown replica {name!r}")
        self.health[name].rejoin(self.clock.now() if now is None else now)

    def backlog(self, now: float) -> int:
        """Priced-mode queue depth: requests dispatched but unfinished."""
        total = 0
        for name, finishes in self._inflight.items():
            kept = [f for f in finishes if f > now]
            self._inflight[name] = kept
            total += len(kept)
        return total

    # ------------------------------------------------------------------ #
    # the dispatch core (shared by both modes)
    # ------------------------------------------------------------------ #
    def _attempt(
        self, name: str, requests: list[ServeRequest], at: float
    ) -> _Attempt:
        """One dispatch attempt on one replica, fault sites included."""
        seq = self._dispatch_seq[name]
        self._dispatch_seq[name] = seq + 1
        tracker = self.health[name]
        plan = faults.active_plan()
        fault = plan.replica_fault(name, seq) if plan is not None else None
        if fault == "crash":
            faults.mark_injected("replica.crash")
            self.stats.replica_crashes += 1
            self.stats.dispatch_failures += 1
            self._note(tracker.force_eject(at))
            return _Attempt(None, 0.0, False)
        if fault == "hang":
            faults.mark_injected("replica.hang")
            self.stats.replica_hangs += 1
            self.stats.dispatch_failures += 1
            self._note(tracker.record_failure(at))
            penalty = min(plan.hang_seconds, self.dispatch_timeout_s)
            return _Attempt(None, penalty, False)
        try:
            responses = self.replicas[name].dispatch(requests)
            if len(responses) != len(requests):
                raise ReplicaError(
                    f"replica {name!r} returned {len(responses)} responses "
                    f"for {len(requests)} requests"
                )
        except Exception:
            self.stats.dispatch_failures += 1
            self._note(tracker.record_failure(at))
            return _Attempt(None, 0.0, False)
        self.stats.dispatches += 1
        if fault == "slow":
            faults.mark_injected("replica.slow")
            self.stats.replica_slows += 1
            self._note(tracker.record_slow(at))
        else:
            self._note(tracker.record_success(at))
        return _Attempt(responses, 0.0, fault == "slow")

    def _classify(self, outcome: RoutedOutcome) -> None:
        """Fold one final outcome into the partition counters."""
        response = outcome.response
        if response.status == "deadline":
            self.stats.deadline_misses += 1
            obs.count("router.deadline_misses")
        elif outcome.replica == "":
            self.stats.unrouted += 1
            obs.count("router.unrouted")
        elif outcome.hedged:
            self.stats.completed_hedge += 1
        elif outcome.replica != outcome.preferred or outcome.attempts > 1:
            self.stats.completed_failover += 1
            self.stats.failovers += 1
            obs.count("router.failovers")
        else:
            self.stats.completed_direct += 1

    # ------------------------------------------------------------------ #
    # wall-clock mode: the asyncio server's batch handler
    # ------------------------------------------------------------------ #
    def handle_batch(
        self, requests: list[ServeRequest]
    ) -> list[ServeResponse]:
        """Route one micro-batch now; arrivals default to dispatch time."""
        now = self.clock.now()
        return self.handle_timed_batch([(now, r) for r in requests])

    def handle_timed_batch(
        self, timed: list[tuple[float, ServeRequest]]
    ) -> list[ServeResponse]:
        """Wall-clock routing with real arrival instants (deadline budgets
        run from arrival).  Sharding, retries and health signals are the
        priced path's; queue pricing and hedging are not (real time just
        elapses)."""
        now = self.clock.now()
        self.run_probes(now)
        out: list[ServeResponse | None] = [None] * len(timed)
        groups: dict[str, list[int]] = {}
        for i, (_, request) in enumerate(timed):
            groups.setdefault(self.preferred(request), []).append(i)
        for preferred, indices in groups.items():
            batch = [timed[i] for i in indices]
            outcomes = self._route_group(batch, preferred, now, priced=False)
            for i, outcome in zip(indices, outcomes):
                self._classify(outcome)
                out[i] = outcome.response
        assert all(r is not None for r in out)
        return [r for r in out if r is not None]

    # ------------------------------------------------------------------ #
    # priced (virtual-clock) mode: the routed replay's engine
    # ------------------------------------------------------------------ #
    def route_priced(
        self, batch: list[tuple[float, ServeRequest]], at: float
    ) -> list[RoutedOutcome]:
        """Route one shard's micro-batch at virtual instant ``at``.

        Each replica is a single-server FCFS queue (``free_at``); service
        times are the engine-priced ``response.seconds`` (times
        :data:`SLOW_FACTOR` under an injected slow fault).  Returns one
        outcome per request, classification counters updated.
        """
        if not batch:
            return []
        preferred = self.preferred(batch[0][1])
        outcomes = self._route_group(batch, preferred, at, priced=True)
        for outcome in outcomes:
            self._classify(outcome)
        return outcomes

    # ------------------------------------------------------------------ #
    def _deadline(self, arrival: float) -> float | None:
        return None if self.deadline_s is None else arrival + self.deadline_s

    def _expire(
        self,
        batch: list[tuple[float, ServeRequest]],
        live: list[int],
        outcomes: list[RoutedOutcome | None],
        preferred: str,
        t: float,
    ) -> list[int]:
        """Resolve live requests whose deadline has passed by instant t."""
        kept: list[int] = []
        for i in live:
            arrival, request = batch[i]
            deadline = self._deadline(arrival)
            if deadline is not None and t > deadline:
                response = ServeResponse(
                    id=request.id, status="deadline",
                    error=f"deadline exceeded after {t - arrival:.6f}s",
                )
                outcomes[i] = RoutedOutcome(
                    response=response, preferred=preferred, replica="",
                    attempts=0, start=t, finish=t,
                )
            else:
                kept.append(i)
        return kept

    def _route_group(
        self,
        batch: list[tuple[float, ServeRequest]],
        preferred: str,
        at: float,
        priced: bool,
    ) -> list[RoutedOutcome]:
        key = self.shard_key(batch[0][1])
        outcomes: list[RoutedOutcome | None] = [None] * len(batch)
        live = list(range(len(batch)))
        tried: list[str] = []
        t = at
        attempts = 0
        server: str | None = None
        responses: list[ServeResponse] | None = None
        slow = False
        while True:
            live = self._expire(batch, live, outcomes, preferred, t)
            if not live:
                break
            if attempts > self.max_retries:
                break
            cands = self._candidates(key, t, tried)
            if not cands:
                break
            if (
                priced
                and self.spill_wait_s is not None
                and len(cands) > 1
                and self._free_at[cands[0]] - t > self.spill_wait_s
            ):
                # backpressure spillover: the preferred queue is deep;
                # stable re-sort by projected wait, ring order breaks ties
                cands = sorted(
                    cands, key=lambda n: max(0.0, self._free_at[n] - t)
                )
            target = cands[0]
            tried.append(target)
            requests = [batch[i][1] for i in live]
            attempt = self._attempt(target, requests, t)
            if attempt.responses is not None:
                server, responses, slow = target, attempt.responses, attempt.slow
                break
            attempts += 1
            if attempts <= self.max_retries:
                self.stats.retries += 1
                obs.count("router.retries")
            backoff = self.retry_backoff_s * (2.0 ** (attempts - 1))
            if priced:
                t = t + attempt.penalty_s + backoff
        if responses is None or server is None:
            for i in live:
                arrival, request = batch[i]
                response = ServeResponse(
                    id=request.id, status="error",
                    error=(
                        "no replica available after "
                        f"{attempts} failed attempt(s)"
                    ),
                )
                outcomes[i] = RoutedOutcome(
                    response=response, preferred=preferred, replica="",
                    attempts=attempts, start=t, finish=t,
                )
            return [o for o in outcomes if o is not None]
        n_attempts = attempts + 1
        for i, response in zip(live, responses):
            arrival, request = batch[i]
            outcomes[i] = self._finish_one(
                arrival, request, response, key, server, preferred,
                n_attempts, t, at, slow, priced,
            )
        result = [o for o in outcomes if o is not None]
        assert len(result) == len(batch)
        return result

    def _finish_one(
        self,
        arrival: float,
        request: ServeRequest,
        response: ServeResponse,
        key: str,
        server: str,
        preferred: str,
        attempts: int,
        t: float,
        at: float,
        slow: bool,
        priced: bool,
    ) -> RoutedOutcome:
        """Price one served request (queue + optional hedge + deadline)."""
        response = replace(response, replica=server, attempts=attempts)
        if not priced or response.status != "ok":
            finish = t
            obs.observe(f"router.replica.{server}.latency_s", finish - arrival)
            return RoutedOutcome(
                response=response, preferred=preferred, replica=server,
                attempts=attempts, start=t, finish=finish,
            )
        service = response.seconds * (SLOW_FACTOR if slow else 1.0)
        start = max(t, self._free_at[server])
        finish = start + service
        hedged = False
        if (
            self.hedge_after_s is not None
            and start - at > self.hedge_after_s
        ):
            alt_outcome = self._hedge(
                request, key, server, at + self.hedge_after_s
            )
            if alt_outcome is not None:
                alt_name, alt_response, alt_start, alt_finish = alt_outcome
                if alt_finish < finish:
                    self.stats.hedge_wins += 1
                    obs.count("router.hedge_wins")
                    # primary still burns its slot; the hedge's answer wins
                    self._free_at[server] = finish
                    self._inflight[server].append(finish)
                    response = replace(
                        alt_response, replica=alt_name, attempts=attempts
                    )
                    obs.observe(
                        f"router.replica.{alt_name}.latency_s",
                        alt_finish - arrival,
                    )
                    return RoutedOutcome(
                        response=response, preferred=preferred,
                        replica=alt_name, attempts=attempts,
                        start=alt_start, finish=alt_finish, hedged=True,
                    )
        self._free_at[server] = finish
        self._inflight[server].append(finish)
        deadline = self._deadline(arrival)
        if deadline is not None and finish > deadline:
            response = ServeResponse(
                id=request.id, status="deadline", replica=server,
                attempts=attempts,
                error=f"deadline exceeded after {finish - arrival:.6f}s",
            )
            return RoutedOutcome(
                response=response, preferred=preferred, replica="",
                attempts=attempts, start=start, finish=finish,
            )
        obs.observe(f"router.replica.{server}.latency_s", finish - arrival)
        return RoutedOutcome(
            response=response, preferred=preferred, replica=server,
            attempts=attempts, start=start, finish=finish, hedged=hedged,
        )

    def _hedge(
        self, request: ServeRequest, key: str, primary: str, fire_at: float
    ) -> tuple[str, ServeResponse, float, float] | None:
        """Dispatch a hedged copy on the next replica; None if impossible."""
        cands = [
            n for n in self._candidates(key, fire_at, tried=(primary,))
        ]
        if not cands:
            return None
        alt = cands[0]
        self.stats.hedges += 1
        obs.count("router.hedges")
        attempt = self._attempt(alt, [request], fire_at)
        if attempt.responses is None:
            return None
        response = attempt.responses[0]
        if response.status != "ok":
            return None
        service = response.seconds * (SLOW_FACTOR if attempt.slow else 1.0)
        start = max(fire_at, self._free_at[alt])
        finish = start + service
        self._free_at[alt] = finish
        self._inflight[alt].append(finish)
        return alt, response, start, finish

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Health + counters payload (merged into ``GET /v1/stats``)."""
        return {
            "replicas": {
                name: {
                    **self.health[name].snapshot(),
                    **self.replicas[name].snapshot(),
                }
                for name in self.replicas
            },
            "router": self.stats.as_dict(),
        }

    def health_summary(self) -> dict:
        states = {
            name: tracker.state for name, tracker in self.health.items()
        }
        serving = sum(1 for s in states.values() if s in (HEALTHY, "degraded"))
        return {
            "status": "ok" if serving else "down",
            "replicas": states,
            "serving": serving,
        }
