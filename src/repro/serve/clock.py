"""Clock abstraction: real time for the server, virtual time for tests.

Everything in :mod:`repro.serve` that needs "now" asks a :class:`Clock`
instead of :func:`time.monotonic`, so the deterministic load-test harness
(:mod:`repro.serve.loadgen`) can drive the whole service on a
:class:`VirtualClock` — time advances only when the harness says so, and
two replays of the same trace see bit-identical timestamps.
"""

from __future__ import annotations

import time

from repro.errors import ServeError


class Clock:
    """Interface: a monotonically nondecreasing source of seconds."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Wall-clock time (``time.monotonic``) — what ``repro-serve`` runs on."""

    def now(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """Manually advanced time for deterministic replay.

    ``advance_to`` refuses to move backwards — a harness bug that would
    silently produce negative latencies becomes a loud :class:`ServeError`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        if t < self._now:
            raise ServeError(
                f"virtual clock cannot move backwards ({t} < {self._now})"
            )
        self._now = float(t)
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ServeError(f"virtual clock cannot advance by {dt} < 0")
        return self.advance_to(self._now + dt)
