"""Wire schema of the prediction service.

A **request** names one convolution layer and the hardware configuration
of the replica that will run it; the service answers with the selected
algorithm and the engine-evaluated cost of running the layer with it.
JSON on the wire (one object per newline-delimited line, or the body of
an HTTP ``POST /v1/select``)::

    {"id": "r-1",
     "layer": {"ic": 64, "oc": 64, "ih": 224, "iw": 224,
               "kh": 3, "kw": 3, "stride": 1},
     "hw": {"vlen_bits": 512, "l2_mib": 1.0}}

Response::

    {"id": "r-1", "status": "ok", "algorithm": "winograd",
     "served_by": "predictor", "cycles": 123456.0,
     "seconds": 6.17e-05, "dram_bytes": 98304.0}

``status`` is ``"ok"``, ``"shed"`` (admission control rejected the
request; no algorithm was selected), ``"deadline"`` (the request's
deadline budget expired before a replica could finish it) or ``"error"``
(the request was malformed or unroutable; ``error`` carries the reason).
When the response was routed through a
:class:`~repro.serve.router.ReplicaRouter`, ``replica`` names the
replica that served it and ``attempts`` counts dispatch attempts
(1 = first try; >1 means failover retries happened).  Floats round-trip
through ``json`` at full precision, so a response is **bit-identical**
to the direct engine evaluation of the same cell — the property the
integration suite pins.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.errors import ProtocolError
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig

#: Layer fields a request may carry (ConvSpec constructor subset).
_LAYER_KEYS = frozenset(
    ("ic", "oc", "ih", "iw", "kh", "kw", "stride", "pad", "index")
)
#: Hardware fields a request may override on the Paper II RVV preset.
_HW_KEYS = frozenset(
    ("vlen_bits", "l2_mib", "freq_ghz", "l1_kib", "l2_assoc", "lmul")
)


@dataclass(frozen=True)
class ServeRequest:
    """One parsed, validated algorithm-selection query."""

    spec: ConvSpec
    hw: HardwareConfig
    id: str = ""

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ServeRequest":
        """Parse and validate one request object (:class:`ProtocolError`)."""
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"id", "layer", "hw"}
        if unknown:
            raise ProtocolError(f"unknown request fields {sorted(unknown)}")
        layer = payload.get("layer")
        if not isinstance(layer, Mapping):
            raise ProtocolError("request must carry a 'layer' object")
        bad = set(layer) - _LAYER_KEYS
        if bad:
            raise ProtocolError(f"unknown layer fields {sorted(bad)}")
        hw_fields = payload.get("hw", {})
        if not isinstance(hw_fields, Mapping):
            raise ProtocolError("'hw' must be an object")
        bad = set(hw_fields) - _HW_KEYS
        if bad:
            raise ProtocolError(f"unknown hw fields {sorted(bad)}")
        try:
            spec = ConvSpec(**{k: v for k, v in layer.items()})
            hw = HardwareConfig.paper2_rvv(
                int(hw_fields.get("vlen_bits", 512)),
                float(hw_fields.get("l2_mib", 1.0)),
            )
            rest = {
                k: v for k, v in hw_fields.items()
                if k not in ("vlen_bits", "l2_mib")
            }
            if rest:
                hw = replace(hw, **rest)
        except ProtocolError:
            raise
        except Exception as exc:  # ConfigError, TypeError, ValueError ...
            raise ProtocolError(f"invalid request: {exc}") from exc
        req_id = payload.get("id", "")
        if not isinstance(req_id, str):
            raise ProtocolError(f"'id' must be a string, got {req_id!r}")
        return ServeRequest(spec=spec, hw=hw, id=req_id)

    @staticmethod
    def from_json(line: str) -> "ServeRequest":
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"request is not valid JSON: {exc}") from exc
        return ServeRequest.from_dict(payload)

    def to_dict(self) -> dict:
        """The wire form (inverse of :meth:`from_dict`)."""
        layer = {
            k: getattr(self.spec, k)
            for k in ("ic", "oc", "ih", "iw", "kh", "kw", "stride", "pad",
                      "index")
        }
        return {
            "id": self.id,
            "layer": layer,
            "hw": {"vlen_bits": self.hw.vlen_bits, "l2_mib": self.hw.l2_mib,
                   "freq_ghz": self.hw.freq_ghz},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass(frozen=True)
class ServeResponse:
    """One answered (or shed / rejected) request."""

    id: str = ""
    status: str = "ok"  # "ok" | "shed" | "deadline" | "error"
    algorithm: str = ""
    served_by: str = ""  # "predictor" | "fallback"
    cycles: float = 0.0
    seconds: float = 0.0
    dram_bytes: float = 0.0
    error: str = ""
    replica: str = ""  # router: the replica that served this response
    attempts: int = 0  # router: dispatch attempts (>1 = failover retries)

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "ServeResponse":
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"response is not valid JSON: {exc}") from exc
        try:
            return ServeResponse(**payload)
        except TypeError as exc:
            raise ProtocolError(f"invalid response: {exc}") from exc


def shed_response(request: ServeRequest) -> ServeResponse:
    return ServeResponse(id=request.id, status="shed")


def error_response(req_id: str, message: str) -> ServeResponse:
    return ServeResponse(id=req_id, status="error", error=message)
