"""PR 5's overload machinery, lifted out of the simulator into middleware.

:class:`ResilientServingSimulator` proved the policies — queue-bounded
admission control, a consecutive-failure circuit breaker, SLO-breach
accounting — inside a discrete-event loop.  The real service needs the
same policies as free-standing objects it can consult per request; this
module provides them, and :class:`ServingLedger` folds the outcome of a
run back into the *same* :class:`~repro.serving.simulator.ServingStats`
aggregate the simulators report, so dashboards and invariant checks
(``offered == admitted + shed``) carry over unchanged.
"""

from __future__ import annotations

from bisect import bisect_right, insort

from repro import obs
from repro.errors import ServeError
from repro.serving.simulator import RequestRecord, ServingStats


class CircuitBreaker:
    """Open after ``max_failures`` *consecutive* failures; manual reset.

    The policy is exactly the simulator's: every success resets the
    streak, and the open transition is counted once under
    ``serve.circuit_opened``.
    """

    def __init__(self, max_failures: int = 3) -> None:
        if max_failures < 1:
            raise ServeError(
                f"max_failures must be >= 1, got {max_failures}"
            )
        self.max_failures = max_failures
        self._consecutive = 0
        self._open = False

    @property
    def open(self) -> bool:
        return self._open

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive

    def record_success(self) -> None:
        self._consecutive = 0

    def record_failure(self) -> None:
        self._consecutive += 1
        if self._consecutive >= self.max_failures and not self._open:
            self._open = True
            obs.count("serve.circuit_opened")

    def reset(self) -> None:
        self._consecutive = 0
        self._open = False


class AdmissionController:
    """Queue-bounded admission: shed when ``depth >= queue_limit``.

    ``queue_limit=None`` admits everything (accounting still runs).  The
    caller reports depth transitions (:meth:`enqueued` /
    :meth:`started`), so the controller works for both the asyncio
    batcher queue and the replay harness's virtual queue.
    """

    def __init__(self, queue_limit: int | None = None) -> None:
        if queue_limit is not None and queue_limit < 0:
            raise ServeError(f"queue_limit must be >= 0, got {queue_limit}")
        self.queue_limit = queue_limit
        self._depth = 0
        self.admitted = 0
        self.shed = 0

    @property
    def depth(self) -> int:
        return self._depth

    def admit(self, extra_depth: int = 0) -> bool:
        """Decide one arrival; updates admitted/shed accounting.

        ``extra_depth`` is backpressure from beyond the local queue — a
        router adds its replica-side backlog (dispatched-but-waiting
        requests), so a deep downstream queue sheds at the front door.
        """
        if extra_depth < 0:
            raise ServeError(f"extra_depth must be >= 0, got {extra_depth}")
        depth = self._depth + extra_depth
        if self.queue_limit is not None and depth >= self.queue_limit:
            self.shed += 1
            obs.count("serve.shed")
            return False
        self.admitted += 1
        self._depth += 1
        return True

    def started(self, n: int = 1) -> None:
        """``n`` admitted requests left the queue and entered service."""
        if n > self._depth:
            raise ServeError(
                f"cannot start {n} requests with queue depth {self._depth}"
            )
        self._depth -= n


class ServingLedger:
    """Per-request timeline accounting shared by server and replay harness.

    Collects :class:`RequestRecord` timelines for admitted requests and
    arrival instants for shed ones, then renders the run as a
    :class:`ServingStats` — the exact aggregate PR 5's simulators emit,
    including SLO-breach and fallback accounting.
    """

    def __init__(self, slo_s: float | None = None) -> None:
        if slo_s is not None and slo_s <= 0:
            raise ServeError("slo_s must be positive")
        self.slo_s = slo_s
        self.records: list[RequestRecord] = []
        self.shed_arrivals: list[float] = []
        self.fallbacks = 0
        self._starts: list[float] = []  # sorted start instants

    # ------------------------------------------------------------------ #
    def record(self, arrival: float, start: float, finish: float) -> None:
        if not arrival <= start <= finish:
            raise ServeError(
                f"non-causal request timeline {arrival}/{start}/{finish}"
            )
        rec = RequestRecord(arrival, start, finish)
        self.records.append(rec)
        insort(self._starts, start)
        obs.observe("serve.latency_s", rec.latency)
        obs.observe("serve.queue_wait_s", rec.queue_wait)

    def record_shed(self, arrival: float) -> None:
        self.shed_arrivals.append(arrival)

    def record_fallback(self, n: int = 1) -> None:
        self.fallbacks += n
        obs.count("serve.fallbacks", n)

    # ------------------------------------------------------------------ #
    def waiting_at(self, t: float) -> int:
        """Admitted-but-unstarted requests at instant ``t`` (recorded only)."""
        return len(self._starts) - bisect_right(self._starts, t)

    @property
    def n_requests(self) -> int:
        return len(self.records)

    def stats(self, servers: int = 1) -> ServingStats:
        """The run so far as PR 5's :class:`ServingStats` aggregate."""
        return ServingStats.collect(
            self.records,
            servers=servers,
            shed_arrivals=self.shed_arrivals,
            fallbacks=self.fallbacks,
            slo_s=self.slo_s,
        )
