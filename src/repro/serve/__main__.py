"""``python -m repro.serve`` — same entry point as the ``repro-serve`` script."""

import sys

from repro.serve.server import main

sys.exit(main())
