"""The ``repro-serve`` asyncio server: NDJSON and HTTP over one port.

:class:`ServeApp` glues the middleware to the service — per-request
admission against the micro-batcher's queue depth, SLO-accounted
timelines in a :class:`~repro.serve.middleware.ServingLedger` — and
:class:`AsyncServeServer` exposes it over a TCP port or a unix socket.
The transport sniffs the first line of each connection:

* an HTTP verb (``POST /v1/select``, ``GET /v1/health``,
  ``GET /v1/stats``) gets a one-shot ``HTTP/1.1`` response;
* anything else is treated as newline-delimited JSON — one
  :mod:`repro.serve.protocol` request per line, one response line each,
  pipelined (responses carry the request ``id``; lines on one
  connection are batched together when they arrive inside the
  micro-batch window).

``main()`` is the ``repro-serve`` console entry point.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from collections import deque
from pathlib import Path

from repro import faults
from repro.engine.cache import MemoCache
from repro.engine.executor import EvaluationEngine
from repro.errors import ProtocolError, ReproError, ServeError
from repro.serve.batcher import MicroBatcher
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.middleware import AdmissionController, ServingLedger
from repro.serve.protocol import (
    ServeRequest,
    ServeResponse,
    error_response,
    shed_response,
)
from repro.serve.router import InProcessReplica, ReplicaRouter
from repro.serve.service import FALLBACK_POLICIES, PredictionService
from repro.serving.simulator import ServingStats

_HTTP_VERBS = (b"GET ", b"POST ", b"PUT ", b"DELETE ", b"HEAD ")

#: Largest HTTP body the server accepts; anything bigger is a 413.
MAX_BODY_BYTES = 1 << 20


def stats_dict(stats: ServingStats) -> dict:
    """The JSON shape of a run's serving statistics."""
    return {
        "requests": stats.n_requests,
        "shed": stats.shed,
        "offered": stats.offered,
        "shed_rate": stats.shed_rate,
        "fallbacks": stats.fallbacks,
        "slo_s": stats.slo_s,
        "slo_breaches": stats.slo_breaches,
        "mean_latency_s": stats.mean_latency,
        "p50_s": stats.p50,
        "p99_s": stats.p99,
        "throughput_rps": stats.throughput_rps,
    }


class ServeApp:
    """Admission + ledger + micro-batcher around one backend.

    The backend is either a single :class:`PredictionService` or a
    :class:`~repro.serve.router.ReplicaRouter` pool — both answer
    ``handle_batch`` and ``snapshot``; the router additionally gets the
    real arrival instants so per-request deadline budgets run from
    arrival rather than from batch flush.
    """

    def __init__(
        self,
        service: PredictionService | ReplicaRouter,
        queue_limit: int | None = None,
        slo_s: float | None = None,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        clock: Clock | None = None,
    ) -> None:
        self.service = service
        self.clock = clock or MonotonicClock()
        self.admission = AdmissionController(queue_limit)
        self.ledger = ServingLedger(slo_s=slo_s)
        self.batcher = MicroBatcher(
            self._run_batch, max_batch=max_batch, max_wait_s=max_wait_s
        )
        self._arrivals: deque[float] = deque()

    # ------------------------------------------------------------------ #
    def _run_batch(self, requests: list[ServeRequest]) -> list[ServeResponse]:
        arrivals = [self._arrivals.popleft() for _ in requests]
        self.admission.started(len(requests))
        start = self.clock.now()
        if isinstance(self.service, ReplicaRouter):
            responses = self.service.handle_timed_batch(
                list(zip(arrivals, requests))
            )
        else:
            responses = self.service.handle_batch(requests)
        finish = self.clock.now()
        for arrival, response in zip(arrivals, responses):
            self.ledger.record(arrival, max(arrival, start),
                               max(arrival, finish))
            if response.served_by == "fallback":
                self.ledger.record_fallback()
        return responses

    async def submit(self, request: ServeRequest) -> ServeResponse:
        """Admission-checked entry: shed immediately or await the batch."""
        now = self.clock.now()
        if not self.admission.admit():
            self.ledger.record_shed(now)
            return shed_response(request)
        self._arrivals.append(now)
        return await self.batcher.submit(request)

    def stats(self) -> ServingStats:
        servers = (
            len(self.service.replicas)
            if isinstance(self.service, ReplicaRouter)
            else 1
        )
        return self.ledger.stats(servers=servers)

    def snapshot(self) -> dict:
        payload = self.service.snapshot()
        payload["serving"] = stats_dict(self.stats())
        payload["queue_depth"] = self.admission.depth
        return payload


class AsyncServeServer:
    """NDJSON/HTTP transport for a :class:`ServeApp`."""

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 8377,
        unix_path: str | Path | None = None,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.unix_path = Path(unix_path) if unix_path is not None else None
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=str(self.unix_path)
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port
            )

    async def stop(self) -> None:
        await self.app.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def endpoint(self) -> str:
        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(_HTTP_VERBS):
                await self._serve_http(first, reader, writer)
            else:
                await self._serve_ndjson(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------ #
    # newline-delimited JSON
    # ------------------------------------------------------------------ #
    async def _serve_ndjson(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        lock = asyncio.Lock()
        tasks: list[asyncio.Task] = []

        async def answer(line: bytes) -> None:
            response = await self._answer_line(line)
            async with lock:
                writer.write(response.to_json().encode() + b"\n")
                await writer.drain()

        line = first
        while line:
            if line.strip():
                tasks.append(asyncio.ensure_future(answer(line)))
            line = await reader.readline()
        if tasks:
            await asyncio.gather(*tasks)

    async def _answer_line(self, line: bytes) -> ServeResponse:
        try:
            request = ServeRequest.from_json(line.decode())
        except (ProtocolError, UnicodeDecodeError) as exc:
            return error_response("", str(exc))
        return await self.app.submit(request)

    # ------------------------------------------------------------------ #
    # minimal HTTP/1.1
    # ------------------------------------------------------------------ #
    async def _serve_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            verb, path, _ = first.decode().split(None, 2)
        except ValueError:
            await self._http_reply(writer, 400, {"error": "bad request line"})
            return
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode().partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    await self._http_reply(
                        writer, 400, {"error": "bad content-length"}
                    )
                    return
        if length < 0:
            await self._http_reply(
                writer, 400, {"error": f"bad content-length {length}"}
            )
            return
        if length > MAX_BODY_BYTES:
            await self._http_reply(
                writer, 413,
                {"error": f"body too large ({length} > {MAX_BODY_BYTES} bytes)"},
            )
            return
        try:
            body = await reader.readexactly(length) if length else b""
        except asyncio.IncompleteReadError:
            await self._http_reply(writer, 400, {"error": "truncated body"})
            return

        if verb == "GET" and path in ("/v1/health", "/healthz"):
            await self._http_reply(writer, 200, self._health_payload())
        elif verb == "GET" and path == "/v1/stats":
            await self._http_reply(writer, 200, self.app.snapshot())
        elif verb == "POST" and path == "/v1/select":
            await self._http_select(writer, body)
        elif verb == "POST" and path.startswith("/v1/replicas/"):
            await self._http_admin(writer, path)
        else:
            await self._http_reply(
                writer, 404, {"error": f"no route {verb} {path}"}
            )

    def _health_payload(self) -> dict:
        service = self.app.service
        if isinstance(service, ReplicaRouter):
            return service.health_summary()
        return {"status": "ok", "circuit_open": service.breaker.open}

    async def _http_admin(
        self, writer: asyncio.StreamWriter, path: str
    ) -> None:
        """``POST /v1/replicas/<name>/{drain,rejoin}`` — pool admin."""
        service = self.app.service
        if not isinstance(service, ReplicaRouter):
            await self._http_reply(
                writer, 404, {"error": "not serving a replica pool"}
            )
            return
        parts = path.strip("/").split("/")
        if len(parts) != 4 or parts[3] not in ("drain", "rejoin"):
            await self._http_reply(
                writer, 404, {"error": f"no route POST {path}"}
            )
            return
        name, action = parts[2], parts[3]
        try:
            if action == "drain":
                service.drain(name)
            else:
                service.rejoin(name)
        except ServeError as exc:
            await self._http_reply(writer, 400, {"error": str(exc)})
            return
        await self._http_reply(
            writer, 200,
            {"replica": name, "state": service.health[name].state},
        )

    async def _http_select(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            await self._http_reply(writer, 400, {"error": f"bad JSON: {exc}"})
            return
        batch = payload if isinstance(payload, list) else [payload]
        out = []
        for item in batch:
            try:
                request = ServeRequest.from_dict(item)
            except ProtocolError as exc:
                out.append(error_response("", str(exc)).to_dict())
                continue
            response = await self.app.submit(request)
            out.append(response.to_dict())
        await self._http_reply(
            writer, 200, out if isinstance(payload, list) else out[0]
        )

    @staticmethod
    async def _http_reply(
        writer: asyncio.StreamWriter, status: int, payload: object
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            413: "Payload Too Large",
        }.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def _build_one_service(
    args: argparse.Namespace, engine: EvaluationEngine, selector: object
) -> PredictionService:
    return PredictionService(
        engine=engine,
        selector=selector,  # type: ignore[arg-type]
        safe_algorithm=args.safe_algorithm,
        fallback_policy=args.fallback,
        max_selector_failures=args.max_selector_failures,
    )


def _build_backing(
    args: argparse.Namespace,
) -> tuple[EvaluationEngine, object]:
    """The engine (shared cache tiers) and trained selector, built once."""
    cache = MemoCache(
        disk_dir=Path(args.cache_dir) if args.cache_dir else None,
        sqlite_path=Path(args.sqlite_cache) if args.sqlite_cache else None,
    )
    engine = EvaluationEngine(cache=cache)
    selector = None
    if not args.no_predictor:
        from repro.selection.predictor import AlgorithmSelector

        selector = AlgorithmSelector(
            n_estimators=args.trees, random_state=args.seed
        ).fit()
    return engine, selector


def build_service(args: argparse.Namespace) -> PredictionService:
    """Assemble cache, engine, selector and service from CLI arguments."""
    engine, selector = _build_backing(args)
    return _build_one_service(args, engine, selector)


def build_router(args: argparse.Namespace) -> ReplicaRouter:
    """Assemble an N-replica pool behind one router from CLI arguments.

    Replicas share the engine (and its cache tiers) and the trained
    selector — each keeps its own selection memo, breaker and counters,
    which is the failure-isolation boundary the router manages.
    """
    engine, selector = _build_backing(args)
    replicas = [
        InProcessReplica(
            f"replica-{i}", _build_one_service(args, engine, selector)
        )
        for i in range(args.replicas)
    ]
    return ReplicaRouter(
        replicas,
        seed=args.router_seed,
        deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        max_retries=args.max_retries,
        hedge_after_s=(
            args.hedge_after_ms / 1e3
            if args.hedge_after_ms is not None
            else None
        ),
        probe_interval_s=(
            args.probe_interval_ms / 1e3
            if args.probe_interval_ms is not None
            else None
        ),
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve algorithm-selection queries over NDJSON/HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377)
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a unix socket instead of TCP",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="JSON disk tier for the memo cache",
    )
    parser.add_argument(
        "--sqlite-cache", default=None, metavar="DB",
        help="SQLite cross-process tier for the memo cache",
    )
    parser.add_argument("--queue-limit", type=int, default=256)
    parser.add_argument(
        "--slo-ms", type=float, default=None,
        help="latency SLO for breach accounting (milliseconds)",
    )
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--batch-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--fallback", choices=FALLBACK_POLICIES, default="safe"
    )
    parser.add_argument("--safe-algorithm", default="im2col_gemm6")
    parser.add_argument("--max-selector-failures", type=int, default=3)
    parser.add_argument(
        "--no-predictor", action="store_true",
        help="skip training; serve every request from the fallback path",
    )
    parser.add_argument("--trees", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--replicas", type=int, default=1, metavar="N",
        help="run N service replicas behind the health-aware router "
        "(1 = single service, no router)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline budget from arrival (router mode)",
    )
    parser.add_argument(
        "--hedge-after-ms", type=float, default=None, metavar="MS",
        help="hedge a second dispatch when the projected queue wait "
        "exceeds MS (router mode, priced replay)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="failed dispatches are retried on a different replica up "
        "to N times (router mode)",
    )
    parser.add_argument(
        "--probe-interval-ms", type=float, default=None, metavar="MS",
        help="active health-probe period per replica (router mode)",
    )
    parser.add_argument(
        "--router-seed", type=int, default=0,
        help="seed for the consistent-hash ring and recovery jitter",
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    service: PredictionService | ReplicaRouter
    if args.replicas > 1:
        service = build_router(args)
    else:
        service = build_service(args)
    app = ServeApp(
        service,
        queue_limit=args.queue_limit,
        slo_s=args.slo_ms / 1e3 if args.slo_ms is not None else None,
        max_batch=args.max_batch,
        max_wait_s=args.batch_wait_ms / 1e3,
    )
    server = AsyncServeServer(
        app, host=args.host, port=args.port, unix_path=args.socket
    )
    await server.start()
    print(f"repro-serve listening on {server.endpoint}", file=sys.stderr)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        await server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """``repro-serve`` entry point (exit codes match repro-experiments)."""
    from repro.experiments.cli import ERROR_EXIT_CODES

    args = _parser().parse_args(argv)
    try:
        faults.active_plan()  # fail fast on a malformed REPRO_FAULTS
        if args.queue_limit is not None and args.queue_limit < 0:
            raise ServeError(
                f"--queue-limit must be >= 0, got {args.queue_limit}"
            )
        if args.replicas < 1:
            raise ServeError(f"--replicas must be >= 1, got {args.replicas}")
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        line = str(exc).splitlines()[0] if str(exc) else "(no detail)"
        print(f"error [{type(exc).__name__}]: {line}", file=sys.stderr)
        for cls, code in ERROR_EXIT_CODES:
            if isinstance(exc, cls):
                return code
        return 10


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
