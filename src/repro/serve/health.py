"""Per-replica health: a deterministic healthy → degraded → ejected machine.

Each replica in a :class:`~repro.serve.router.ReplicaRouter` pool carries
one :class:`ReplicaHealth`.  The router feeds it **passive** signals
(dispatch successes, failures, slow responses) and **active** ones (the
outcome of periodic probes); the tracker answers the only question the
router asks — ``available(now)`` — and reports every state transition so
the router can count it.

The state machine::

            failures >= degrade_after          failures >= eject_after
    HEALTHY ─────────────────────────▶ DEGRADED ─────────────────────▶ EJECTED
        ▲                                 │  ▲                            │
        │   successes >= recover_after    │  │ half-open success         │
        └─────────────────────────────────┘  └────────────────────────── │
                                                 (now >= eject_until) ◀──┘

* **HEALTHY** / **DEGRADED** replicas take traffic; DEGRADED ones are
  deprioritized by the router's spillover order.
* **EJECTED** replicas take no traffic until their cooldown expires, then
  go **half-open**: the next probe or trial dispatch decides.  Success
  readmits the replica (as DEGRADED, one success from HEALTHY); failure
  re-ejects it with the cooldown doubled (capped).
* **DRAINING** is an administrative state (:meth:`drain`): the replica
  finishes in-flight work but takes no new dispatches until
  :meth:`rejoin`, which re-enters through the half-open gate.

Cooldowns are **seeded**: each ejection's length is the base cooldown
times a backoff times a deterministic jitter drawn from the same pure
``(seed, site, token)`` hash the fault plane uses — so a chaos replay
recovers the same replica at the same virtual instant in every process.
"""

from __future__ import annotations

from repro.errors import ServeError
from repro.faults.plan import _hash_unit

#: The four externally visible states.
HEALTHY = "healthy"
DEGRADED = "degraded"
EJECTED = "ejected"
DRAINING = "draining"

STATES = (HEALTHY, DEGRADED, EJECTED, DRAINING)


class ReplicaHealth:
    """Health state for one replica, driven by passive + active signals."""

    def __init__(
        self,
        name: str,
        seed: int = 0,
        degrade_after: int = 1,
        eject_after: int = 3,
        recover_after: int = 2,
        slow_after: int = 3,
        eject_for_s: float = 1.0,
        cooldown_jitter: float = 0.5,
        max_eject_backoff: float = 8.0,
    ) -> None:
        if not 1 <= degrade_after <= eject_after:
            raise ServeError(
                "need 1 <= degrade_after <= eject_after, got "
                f"{degrade_after}/{eject_after}"
            )
        if recover_after < 1 or slow_after < 1:
            raise ServeError("recover_after and slow_after must be >= 1")
        if eject_for_s <= 0:
            raise ServeError(f"eject_for_s must be positive, got {eject_for_s}")
        if cooldown_jitter < 0 or max_eject_backoff < 1:
            raise ServeError("bad cooldown_jitter / max_eject_backoff")
        self.name = name
        self.seed = seed
        self.degrade_after = degrade_after
        self.eject_after = eject_after
        self.recover_after = recover_after
        self.slow_after = slow_after
        self.eject_for_s = eject_for_s
        self.cooldown_jitter = cooldown_jitter
        self.max_eject_backoff = max_eject_backoff
        self.state = HEALTHY
        self.ejections = 0
        self.eject_until: float | None = None
        self._fail_streak = 0
        self._success_streak = 0
        self._slow_streak = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def available(self, now: float) -> bool:
        """May the router send this replica traffic at instant ``now``?"""
        if self.state in (HEALTHY, DEGRADED):
            return True
        if self.state == EJECTED:
            return self.half_open(now)
        return False  # DRAINING

    def half_open(self, now: float) -> bool:
        """Ejected, cooldown over: eligible for exactly one trial."""
        return (
            self.state == EJECTED
            and self.eject_until is not None
            and now >= self.eject_until
        )

    # ------------------------------------------------------------------ #
    # signals (each returns the transition it caused, or None)
    # ------------------------------------------------------------------ #
    def record_success(self, now: float) -> str | None:
        """A dispatch or probe succeeded on this replica."""
        self._fail_streak = 0
        self._slow_streak = 0
        self._success_streak += 1
        if self.state == EJECTED and self.half_open(now):
            # half-open trial passed: readmit, one success from HEALTHY
            self.state = DEGRADED
            self.eject_until = None
            self._success_streak = 1
            return "recovered"
        if (
            self.state == DEGRADED
            and self._success_streak >= self.recover_after
        ):
            self.state = HEALTHY
            return "healthy"
        return None

    def record_failure(self, now: float) -> str | None:
        """A dispatch or probe failed (error, hang, dropped probe)."""
        self._success_streak = 0
        self._fail_streak += 1
        if self.state == EJECTED:
            if self.half_open(now):
                # half-open trial failed: back out, doubled cooldown
                self._eject(now)
                return "re-ejected"
            return None
        if self.state == DRAINING:
            return None
        if self._fail_streak >= self.eject_after:
            self._eject(now)
            return "ejected"
        if self.state == HEALTHY and self._fail_streak >= self.degrade_after:
            self.state = DEGRADED
            return "degraded"
        return None

    def record_slow(self, now: float) -> str | None:
        """A dispatch landed but took far longer than modeled."""
        self._slow_streak += 1
        if self.state == HEALTHY and self._slow_streak >= self.slow_after:
            self.state = DEGRADED
            self._slow_streak = 0
            return "degraded"
        return None

    def force_eject(self, now: float) -> str:
        """Eject immediately (a crash observed at dispatch)."""
        self._success_streak = 0
        self._fail_streak = 0
        self._eject(now)
        return "ejected"

    # ------------------------------------------------------------------ #
    # administrative drain / rejoin
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Stop taking new work; in-flight work finishes normally."""
        self.state = DRAINING
        self.eject_until = None

    def rejoin(self, now: float) -> None:
        """Leave DRAINING through the half-open gate (must prove itself)."""
        if self.state != DRAINING:
            raise ServeError(
                f"replica {self.name!r} is {self.state}, not draining"
            )
        self.state = EJECTED
        self.eject_until = now  # immediately half-open
        self._fail_streak = 0
        self._success_streak = 0

    # ------------------------------------------------------------------ #
    def _eject(self, now: float) -> None:
        backoff = min(2.0**self.ejections, self.max_eject_backoff)
        jitter = 1.0 + self.cooldown_jitter * _hash_unit(
            self.seed, "router.cooldown", f"{self.name}:{self.ejections}"
        )
        self.state = EJECTED
        self.eject_until = now + self.eject_for_s * backoff * jitter
        self.ejections += 1
        self._fail_streak = 0
        self._success_streak = 0

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "ejections": self.ejections,
            "eject_until": self.eject_until,
            "fail_streak": self._fail_streak,
        }
