"""The prediction service core: select an algorithm, price the layer.

:class:`PredictionService` is the transport-independent heart of
``repro-serve``.  One call — :meth:`handle_batch` — takes a micro-batch
of parsed :class:`~repro.serve.protocol.ServeRequest` objects and
returns one response per request:

1. **Selection** — the trained
   :class:`~repro.selection.predictor.AlgorithmSelector` picks the
   algorithm for the whole batch in a single forest pass
   (:meth:`~repro.selection.predictor.AlgorithmSelector.select_many`),
   memoized per distinct (layer, hardware) pair so repeat traffic costs
   a dict hit.  When the predictor raises — or a
   :mod:`repro.faults` plan injects ``serving.predictor_error`` — the
   request is served by the **fallback path** instead, and after
   ``max_selector_failures`` consecutive failures the circuit breaker
   opens and the predictor is bypassed entirely.
2. **Fallback** — either the configurable safe algorithm
   (``im2col_gemm6``, applicable to every layer; policy ``"safe"``) or
   the engine-backed oracle (evaluate every applicable candidate through
   the shared cache and take the cycle-optimal one; policy
   ``"oracle"``).  Both are deterministic and never raise for a valid
   layer, which is what keeps the error rate at zero with the breaker
   open.
3. **Evaluation** — every chosen (algorithm, layer, hardware) cell is
   priced through the shared :class:`~repro.engine.executor.
   EvaluationEngine` in one ``evaluate_many`` call, so responses are
   bit-identical to direct engine evaluation and the content-addressed
   :class:`~repro.engine.cache.MemoCache` (memory / SQLite / JSON tiers)
   absorbs repeat traffic.
"""

from __future__ import annotations

from repro import faults, obs
from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine.executor import CellError, EvalTask, EvaluationEngine
from repro.errors import InjectedFaultError, ServeError
from repro.nn.layer import ConvSpec
from repro.selection.predictor import AlgorithmSelector
from repro.serve.middleware import CircuitBreaker
from repro.serve.protocol import ServeRequest, ServeResponse
from repro.simulator.hwconfig import HardwareConfig

#: Fallback policies: a fixed safe algorithm, or the engine-backed oracle.
FALLBACK_POLICIES = ("safe", "oracle")

#: The health-probe canary cell: tiny, applicable to every algorithm,
#: memoized after the first probe so repeat probes cost a cache hit.
_PROBE_SPEC = ConvSpec(ic=16, oc=16, ih=14, iw=14, kh=3, kw=3, stride=1)
_PROBE_HW = HardwareConfig.paper2_rvv(512, 1.0)


class PredictionService:
    """Algorithm selection + engine-backed evaluation over micro-batches."""

    def __init__(
        self,
        engine: EvaluationEngine | None = None,
        selector: AlgorithmSelector | None = None,
        safe_algorithm: str = "im2col_gemm6",
        fallback_policy: str = "safe",
        max_selector_failures: int = 3,
        selection_cache_size: int = 65536,
    ) -> None:
        if fallback_policy not in FALLBACK_POLICIES:
            raise ServeError(
                f"fallback_policy must be one of {FALLBACK_POLICIES}, "
                f"got {fallback_policy!r}"
            )
        get_algorithm(safe_algorithm)  # fail fast on unknown names
        if selection_cache_size < 0:
            raise ServeError("selection_cache_size must be >= 0")
        self.engine = engine if engine is not None else EvaluationEngine()
        self.selector = selector
        self.safe_algorithm = safe_algorithm
        self.fallback_policy = fallback_policy
        self.breaker = CircuitBreaker(max_selector_failures)
        self.selection_cache_size = selection_cache_size
        self._selection_cache: dict[
            tuple[ConvSpec, HardwareConfig], str
        ] = {}
        self._seq = 0  # request ordinal: the fault plane's token
        self.served = 0
        self.fallback_served = 0

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def _oracle_algorithm(self, spec: ConvSpec, hw: HardwareConfig) -> str:
        """Cycle-optimal applicable algorithm, priced through the cache."""
        names = [
            n for n in ALGORITHM_NAMES if get_algorithm(n).applicable(spec)
        ]
        records = self.engine.evaluate_many(
            [EvalTask(n, spec, hw, fallback=False) for n in names]
        )
        by_cycles = {
            n: r.cycles for n, r in zip(names, records)
            if not isinstance(r, CellError)
        }
        if not by_cycles:
            return self.safe_algorithm
        best = min(by_cycles.values())
        # ties break in the papers' legend order (names preserves it)
        return next(n for n in names if by_cycles.get(n) == best)

    def _fallback_algorithm(self, spec: ConvSpec, hw: HardwareConfig) -> str:
        if self.fallback_policy == "oracle":
            return self._oracle_algorithm(spec, hw)
        return self.safe_algorithm

    def _select_batch(
        self, requests: list[ServeRequest]
    ) -> list[tuple[str, str]]:
        """``(algorithm, served_by)`` per request, breaker-aware."""
        plan = faults.active_plan()
        choices: list[tuple[str, str] | None] = [None] * len(requests)
        ask: list[int] = []  # indices that still need the predictor
        for i, req in enumerate(requests):
            seq = self._seq
            self._seq += 1
            if self.selector is None or self.breaker.open:
                choices[i] = ("", "fallback")
                continue
            if plan is not None and plan.predictor_fails(seq):
                faults.mark_injected("serving.predictor_error")
                self.breaker.record_failure()
                choices[i] = ("", "fallback")
                continue
            cached = self._selection_cache.get((req.spec, req.hw))
            if cached is not None:
                self.breaker.record_success()
                choices[i] = (cached, "predictor")
                continue
            ask.append(i)
        if ask:
            pairs = [(requests[i].spec, requests[i].hw) for i in ask]
            try:
                assert self.selector is not None
                picked = self.selector.select_many(pairs)
            except InjectedFaultError:  # pragma: no cover - defensive
                raise
            except Exception:
                # one failure per affected request: the breaker semantics
                # of ResilientServingSimulator, applied batch-wide
                for i in ask:
                    self.breaker.record_failure()
                    choices[i] = ("", "fallback")
            else:
                for i, algo in zip(ask, picked):
                    self.breaker.record_success()
                    key = (requests[i].spec, requests[i].hw)
                    if len(self._selection_cache) < self.selection_cache_size:
                        self._selection_cache[key] = algo
                    choices[i] = (algo, "predictor")
        out: list[tuple[str, str]] = []
        for i, choice in enumerate(choices):
            assert choice is not None
            algo, served_by = choice
            if served_by == "fallback":
                algo = self._fallback_algorithm(
                    requests[i].spec, requests[i].hw
                )
            out.append((algo, served_by))
        return out

    # ------------------------------------------------------------------ #
    # the one entry point
    # ------------------------------------------------------------------ #
    def handle_batch(
        self, requests: list[ServeRequest]
    ) -> list[ServeResponse]:
        """Select and price a micro-batch; one response per request."""
        if not requests:
            return []
        with obs.span("serve.batch", cat="serve", requests=len(requests)):
            choices = self._select_batch(requests)
            tasks = [
                EvalTask(algo, req.spec, req.hw, fallback=True)
                for (algo, _), req in zip(choices, requests)
            ]
            records = self.engine.evaluate_many(tasks, on_error="record")
            responses: list[ServeResponse] = []
            for req, (algo, served_by), record in zip(
                requests, choices, records
            ):
                if isinstance(record, CellError):
                    responses.append(
                        ServeResponse(
                            id=req.id, status="error",
                            algorithm=algo, served_by=served_by,
                            error=record.describe(),
                        )
                    )
                    continue
                if served_by == "fallback":
                    self.fallback_served += 1
                responses.append(
                    ServeResponse(
                        id=req.id, status="ok", algorithm=algo,
                        served_by=served_by, cycles=record.cycles,
                        seconds=record.seconds(req.hw.freq_ghz),
                        dram_bytes=record.dram_bytes,
                    )
                )
            self.served += len(responses)
            obs.count("serve.requests", len(responses))
            return responses

    def handle(self, request: ServeRequest) -> ServeResponse:
        """Single-request convenience wrapper over :meth:`handle_batch`."""
        return self.handle_batch([request])[0]

    def probe(self) -> bool:
        """Active health canary: price the safe algorithm on a tiny layer.

        Routers call this to confirm a replica can still reach its engine
        and cache.  The cell is fixed, so after the first probe it is a
        memo-cache hit; a False (or raising) probe is a health failure.
        """
        try:
            record = self.engine.evaluate_many(
                [
                    EvalTask(
                        self.safe_algorithm, _PROBE_SPEC, _PROBE_HW,
                        fallback=True,
                    )
                ],
                on_error="record",
            )[0]
        except Exception:
            return False
        return not isinstance(record, CellError)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Health/stats payload (the ``GET /v1/stats`` body)."""
        return {
            "served": self.served,
            "fallback_served": self.fallback_served,
            "circuit_open": self.breaker.open,
            "selection_cache_entries": len(self._selection_cache),
            "cache": self.engine.cache.stats.as_dict(),
        }
