"""Asyncio micro-batcher: coalesce concurrent requests into engine batches.

Requests submitted within ``max_wait_s`` of the batch opening (or until
``max_batch`` fills, whichever is first) are handed to the service as
**one** ``handle_batch`` call — one forest pass, one ``evaluate_many``
— and each submitter gets its own response back through a future.  The
same flush policy is mirrored synchronously by the load-test harness
(:func:`repro.serve.loadgen.replay`), so assertions made on the virtual
clock transfer to the live server.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro import obs
from repro.errors import ServeError
from repro.serve.protocol import ServeRequest, ServeResponse

#: The service callback: a batch of requests to a batch of responses.
BatchHandler = Callable[[list[ServeRequest]], list[ServeResponse]]


def validate_batch_params(max_batch: int, max_wait_s: float) -> None:
    if max_batch < 1:
        raise ServeError(f"max_batch must be >= 1, got {max_batch}")
    if max_wait_s < 0:
        raise ServeError(f"max_wait_s must be >= 0, got {max_wait_s}")


class MicroBatcher:
    """Accumulate submissions; flush on size or age, never both late."""

    def __init__(
        self,
        handler: BatchHandler,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
    ) -> None:
        validate_batch_params(max_batch, max_wait_s)
        self.handler = handler
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._pending: list[tuple[ServeRequest, asyncio.Future]] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self.batches_flushed = 0

    @property
    def depth(self) -> int:
        """Requests accumulated but not yet flushed (the admission queue)."""
        return len(self._pending)

    # ------------------------------------------------------------------ #
    def submit(self, request: ServeRequest) -> "Awaitable[ServeResponse]":
        """Enqueue one request; the returned future resolves at flush."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        if len(self._pending) >= self.max_batch:
            self._cancel_timer()
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(
                self.max_wait_s, self._timer_flush
            )
        return future

    async def drain(self) -> None:
        """Flush whatever is pending now (shutdown path)."""
        self._cancel_timer()
        if self._pending:
            self._flush()

    # ------------------------------------------------------------------ #
    def _cancel_timer(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None

    def _timer_flush(self) -> None:
        self._flush_handle = None
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        batch, self._pending = self._pending, []
        self.batches_flushed += 1
        obs.observe("serve.batch_size", float(len(batch)))
        requests = [request for request, _ in batch]
        try:
            responses = self.handler(requests)
            if len(responses) != len(requests):
                raise ServeError(
                    f"handler returned {len(responses)} responses for "
                    f"{len(requests)} requests"
                )
        except Exception as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)
