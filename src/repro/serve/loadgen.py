"""Deterministic load generation and virtual-clock replay.

Two pieces:

* :func:`generate_trace` — a seeded trace of timed requests.  Arrival
  processes: ``uniform`` (Poisson), ``diurnal`` (Poisson with a
  sinusoidally modulated rate — the day/night cycle compressed to
  ``period_s``) and ``bursty`` (Poisson with the middle window
  accelerated by ``burst_factor`` — the same shape the fault plane's
  ``serving.burst`` injects).  Layer/hardware payloads are drawn from a
  workload pool (default: the VGG-16 conv layers on two Paper II
  configurations) by the same seeded generator, so a (seed, spec) pair
  names one exact trace forever.

* :func:`replay` — a discrete-event replay of a trace against an
  in-process :class:`~repro.serve.service.PredictionService` on a
  :class:`~repro.serve.clock.VirtualClock`.  It mirrors the live
  server's pipeline exactly — queue-bounded admission, micro-batch
  flush on size-or-age, one ``handle_batch`` per flush, FCFS dispatch
  over ``servers`` replicas at the engine-priced per-request service
  time — but on virtual time, so a 10k-request overload run takes
  milliseconds of wall clock and two runs produce bit-identical
  responses, timelines and :class:`~repro.serving.simulator.ServingStats`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ServeError
from repro.nn.layer import ConvSpec
from repro.nn.models.vgg16 import vgg16_conv_specs
from repro.serve.batcher import validate_batch_params
from repro.serve.clock import VirtualClock
from repro.serve.middleware import AdmissionController, ServingLedger
from repro.serve.protocol import ServeRequest, ServeResponse
from repro.serve.router import ReplicaRouter, RoutedOutcome
from repro.serve.service import PredictionService
from repro.serving.simulator import ServingStats
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.prng import make_rng

#: Arrival patterns :func:`generate_trace` knows how to draw.
PATTERNS = ("uniform", "diurnal", "bursty")


@dataclass(frozen=True)
class TraceSpec:
    """A reproducible description of one load trace."""

    pattern: str = "bursty"
    n_requests: int = 1000
    rate_rps: float = 100.0
    seed: int = 0
    #: bursty: arrival-rate multiplier over the middle third of the trace.
    burst_factor: float = 4.0
    #: diurnal: rate(t) = rate_rps * (1 + amplitude * sin(2*pi*t/period)).
    diurnal_period_s: float = 60.0
    diurnal_amplitude: float = 0.6

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ServeError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.n_requests < 1:
            raise ServeError("n_requests must be >= 1")
        if self.rate_rps <= 0:
            raise ServeError("rate_rps must be positive")
        if self.burst_factor < 1.0:
            raise ServeError("burst_factor must be >= 1")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ServeError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_s <= 0:
            raise ServeError("diurnal_period_s must be positive")


@dataclass(frozen=True)
class TimedRequest:
    """One trace entry: a request and the instant it arrives."""

    arrival: float
    request: ServeRequest


def default_workload() -> list[tuple[ConvSpec, HardwareConfig]]:
    """The default payload pool: VGG-16 convs x two Paper II configs."""
    specs = vgg16_conv_specs()
    hws = [HardwareConfig.paper2_rvv(512, 1.0),
           HardwareConfig.paper2_rvv(512, 2.0)]
    return [(s, hw) for hw in hws for s in specs]


def _arrival_times(spec: TraceSpec) -> list[float]:
    rng = make_rng(spec.seed)
    if spec.pattern == "diurnal":
        # thinning-free sequential draw: each gap uses the rate at the
        # current instant, which is exact enough for a load test and
        # keeps generation O(n) and bit-deterministic
        t = 0.0
        out: list[float] = []
        for _ in range(spec.n_requests):
            rate = spec.rate_rps * (
                1.0 + spec.diurnal_amplitude
                * math.sin(2.0 * math.pi * t / spec.diurnal_period_s)
            )
            t += float(rng.exponential(1.0 / rate))
            out.append(t)
        return out
    gaps = rng.exponential(1.0 / spec.rate_rps, spec.n_requests)
    if spec.pattern == "bursty" and spec.burst_factor > 1.0:
        start, stop = spec.n_requests // 3, 2 * spec.n_requests // 3
        gaps[start:stop] /= spec.burst_factor
    times = gaps.cumsum()
    return [float(t) for t in times]


def generate_trace(
    spec: TraceSpec,
    workload: Sequence[tuple[ConvSpec, HardwareConfig]] | None = None,
) -> list[TimedRequest]:
    """The seeded trace: ``n_requests`` timed requests, fully determined."""
    pool = list(workload) if workload is not None else default_workload()
    if not pool:
        raise ServeError("workload pool must not be empty")
    arrivals = _arrival_times(spec)
    rng = make_rng(spec.seed + 1)  # payload stream independent of gaps
    picks = rng.integers(0, len(pool), size=spec.n_requests)
    out = []
    for i, (arrival, pick) in enumerate(zip(arrivals, picks)):
        layer, hw = pool[int(pick)]
        out.append(
            TimedRequest(
                arrival=arrival,
                request=ServeRequest(spec=layer, hw=hw, id=f"r-{i}"),
            )
        )
    return out


# ---------------------------------------------------------------------- #
# replay
# ---------------------------------------------------------------------- #
@dataclass
class ReplayResult:
    """Everything one replay produced, in trace order."""

    #: response per admitted request, in admission (flush) order.
    responses: list[ServeResponse]
    #: request ids shed by admission control.
    shed_ids: list[str]
    stats: ServingStats
    service_snapshot: dict = field(default_factory=dict)

    def responses_by_id(self) -> dict[str, ServeResponse]:
        return {r.id: r for r in self.responses}


def replay(
    service: PredictionService,
    trace: Sequence[TimedRequest],
    servers: int = 1,
    queue_limit: int | None = None,
    slo_s: float | None = None,
    max_batch: int = 32,
    max_wait_s: float = 0.0,
    clock: VirtualClock | None = None,
) -> ReplayResult:
    """Replay a trace through a live service on the virtual clock.

    The event loop mirrors the asyncio server: an arrival is admitted iff
    fewer than ``queue_limit`` admitted requests are waiting (batched but
    unflushed, or flushed but not yet started); admitted requests join
    the open micro-batch, which flushes when it holds ``max_batch``
    requests or is ``max_wait_s`` old; each flush is one
    ``service.handle_batch`` call; dispatch is FCFS over ``servers``
    replicas, each request occupying a replica for the engine-priced
    ``response.seconds``.
    """
    if servers < 1:
        raise ServeError(f"servers must be >= 1, got {servers}")
    validate_batch_params(max_batch, max_wait_s)
    clock = clock or VirtualClock()
    ledger = ServingLedger(slo_s=slo_s)
    free_at = [clock.now()] * servers
    heapq.heapify(free_at)
    responses: list[ServeResponse] = []
    shed_ids: list[str] = []
    pending: list[TimedRequest] = []
    batch_opened: float | None = None

    def flush(at: float) -> None:
        nonlocal batch_opened
        if not pending:
            batch_opened = None
            return
        clock.advance_to(at)
        batch = service.handle_batch([t.request for t in pending])
        for timed, response in zip(pending, batch):
            start = max(at, heapq.heappop(free_at))
            if response.status == "ok":
                finish = start + response.seconds
                ledger.record(timed.arrival, start, finish)
            else:
                finish = start  # an errored request occupies no replica
                ledger.record(timed.arrival, start, finish)
            if response.served_by == "fallback":
                ledger.record_fallback()
            heapq.heappush(free_at, finish)
            responses.append(response)
        pending.clear()
        batch_opened = None

    for timed in sorted(trace, key=lambda t: t.arrival):
        # age-based flush happens *before* this arrival is considered
        if (batch_opened is not None
                and timed.arrival > batch_opened + max_wait_s):
            flush(batch_opened + max_wait_s)
        waiting = len(pending) + ledger.waiting_at(timed.arrival)
        if queue_limit is not None and waiting >= queue_limit:
            ledger.record_shed(timed.arrival)
            shed_ids.append(timed.request.id)
            continue
        if not pending:
            batch_opened = timed.arrival
        pending.append(timed)
        if len(pending) >= max_batch:
            flush(timed.arrival)
    if pending:
        assert batch_opened is not None
        flush(batch_opened + max_wait_s)

    return ReplayResult(
        responses=responses,
        shed_ids=shed_ids,
        stats=ledger.stats(servers=servers),
        service_snapshot=service.snapshot(),
    )


# ---------------------------------------------------------------------- #
# routed replay
# ---------------------------------------------------------------------- #
@dataclass
class RoutedReplayResult:
    """Everything one routed replay produced, in admission order."""

    #: response per admitted request, in admission (flush) order.
    responses: list[ServeResponse]
    #: full routing provenance per admitted request (same order).
    outcomes: list[RoutedOutcome]
    #: request ids shed by admission control.
    shed_ids: list[str]
    stats: ServingStats
    #: the router's classification counters (:class:`RouterStats` dict).
    router_stats: dict = field(default_factory=dict)
    router_snapshot: dict = field(default_factory=dict)

    def responses_by_id(self) -> dict[str, ServeResponse]:
        return {r.id: r for r in self.responses}

    def conserved(self) -> bool:
        """The routed conservation law: every admitted request lands in
        exactly one completion class (see :class:`RouterStats`)."""
        rs = self.router_stats
        admitted = len(self.responses)
        return (
            admitted
            == rs["completed_direct"] + rs["completed_failover"]
            + rs["completed_hedge"] + rs["deadline_misses"] + rs["unrouted"]
        )


def routed_replay(
    router: ReplicaRouter,
    trace: Sequence[TimedRequest],
    queue_limit: int | None = None,
    slo_s: float | None = None,
    max_batch: int = 32,
    max_wait_s: float = 0.0,
    clock: VirtualClock | None = None,
) -> RoutedReplayResult:
    """Replay a trace through a replica pool on the virtual clock.

    The single-service :func:`replay` loop, routed: arrivals shard by
    hardware configuration and each shard keeps its own micro-batch
    (flushed on size-or-age); each flush is one
    :meth:`~repro.serve.router.ReplicaRouter.route_priced` call, where
    the router's health/retry/hedge machinery and the fault plane's
    ``replica.*`` sites decide which replica serves and when it finishes.
    Admission consults the :class:`AdmissionController` with the
    router-side backlog as extra depth, so replica outages backpressure
    the front door.  Everything is driven by seeded hashes on the
    virtual clock: two processes replaying the same (trace, router
    config, fault plan) produce bit-identical results.
    """
    validate_batch_params(max_batch, max_wait_s)
    clock = clock or VirtualClock()
    admission = AdmissionController(queue_limit)
    ledger = ServingLedger(slo_s=slo_s)
    responses: list[ServeResponse] = []
    outcomes: list[RoutedOutcome] = []
    shed_ids: list[str] = []
    pending: dict[str, list[TimedRequest]] = {}
    opened: dict[str, float] = {}

    def flush(key: str, at: float) -> None:
        batch = pending.pop(key, [])
        opened.pop(key, None)
        if not batch:
            return
        clock.advance_to(at)
        router.run_probes(at)
        admission.started(len(batch))
        routed = router.route_priced(
            [(t.arrival, t.request) for t in batch], at
        )
        for timed, outcome in zip(batch, routed):
            ledger.record(timed.arrival, outcome.start, outcome.finish)
            if outcome.response.served_by == "fallback":
                ledger.record_fallback()
            responses.append(outcome.response)
            outcomes.append(outcome)

    def flush_due(before: float) -> None:
        due = sorted(
            (t + max_wait_s, key)
            for key, t in opened.items()
            if before > t + max_wait_s
        )
        for at, key in due:
            flush(key, at)

    for timed in sorted(trace, key=lambda t: t.arrival):
        flush_due(timed.arrival)
        # admission.depth is the unflushed pending count; the extra depth
        # is the router-side backlog (flushed but still queued at a replica)
        backlog = ledger.waiting_at(timed.arrival)
        if not admission.admit(extra_depth=backlog):
            ledger.record_shed(timed.arrival)
            shed_ids.append(timed.request.id)
            continue
        key = router.shard_key(timed.request)
        if key not in pending:
            pending[key] = []
            opened[key] = timed.arrival
        pending[key].append(timed)
        if len(pending[key]) >= max_batch:
            flush(key, timed.arrival)
    for at, key in sorted((t + max_wait_s, k) for k, t in opened.items()):
        flush(key, at)

    return RoutedReplayResult(
        responses=responses,
        outcomes=outcomes,
        shed_ids=shed_ids,
        stats=ledger.stats(servers=len(router.replicas)),
        router_stats=router.stats.as_dict(),
        router_snapshot=router.snapshot(),
    )
