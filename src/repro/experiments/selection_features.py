"""Extension — which features carry the algorithm selector.

The paper argues the classifier must see *both* the convolution dimensions
and the hardware configuration (vector length, L2 size).  This study reads
the trained forest's split-frequency feature importances and re-trains a
layer-features-only selector to quantify the claim: dropping the two
hardware features costs measurable accuracy, because the optimal algorithm
genuinely flips with VL/L2 (Figs. 3-8).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.selection.crossval import accuracy_score, kfold_indices
from repro.selection.dataset import FEATURE_NAMES, build_dataset
from repro.selection.forest import RandomForestClassifier
from repro.utils.tables import Table


def _cv_accuracy(X: np.ndarray, y: np.ndarray, seed: int = 0) -> float:
    scores = []
    for train, test in kfold_indices(len(X), 5, shuffle=True, random_state=seed):
        model = RandomForestClassifier(
            n_estimators=60, max_depth=10, max_features=None, random_state=seed
        )
        model.fit(X[train], y[train])
        scores.append(accuracy_score(y[test], model.predict(X[test])))
    return float(np.mean(scores))


def run(dataset=None) -> ExperimentResult:
    dataset = dataset or build_dataset()
    forest = RandomForestClassifier(
        n_estimators=60, max_depth=10, max_features=6, random_state=0
    )
    forest.fit(dataset.X, dataset.y)
    importances = forest.feature_importances()

    table = Table(
        ["feature", "split importance"],
        title="Selector feature importances (split frequency, trained RF)",
    )
    ranked = sorted(
        zip(FEATURE_NAMES, importances), key=lambda kv: kv[1], reverse=True
    )
    for name, imp in ranked:
        table.add_row([name, imp])

    full_acc = _cv_accuracy(dataset.X, dataset.y)
    layers_only = _cv_accuracy(dataset.X[:, 2:], dataset.y)
    hw_importance = float(importances[0] + importances[1])
    table.add_row(["== CV accuracy, all 12 features ==", full_acc])
    table.add_row(["== CV accuracy, layer features only ==", layers_only])
    return ExperimentResult(
        experiment="selection-features",
        description="Hardware features matter to the selector",
        table=table,
        data={
            "importances": dict(zip(FEATURE_NAMES, importances.tolist())),
            "hw_importance": hw_importance,
            "full_accuracy": full_acc,
            "layers_only_accuracy": layers_only,
        },
    )
