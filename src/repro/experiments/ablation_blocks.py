"""Ablation — re-tuning the 6-loop blocks per cache size.

The papers fix the BLIS-like blocks at the 1 MB-tuned 16x512x128 throughout
the L2 sweep.  This study re-tunes them per configuration with the
analytical model: at 1 MB the paper's choice is (near-)optimal — validating
their tuning — while larger caches admit bigger packed panels and recover a
few percent on the deep layers.  The gains stay small, which is itself a
finding: the 6-loop kernel's cache behaviour is dominated by *having*
blocking at all, not by the exact sizes (consistent with Paper I Table II's
~2 % spread).
"""

from __future__ import annotations

from repro.algorithms.blocktuner import PAPER_BLOCKS, tuned_speedup
from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

L2_SIZES_MIB: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0)
#: Deep VGG-16 layers (where GEMM-6 is the paper's winner).
LAYER_INDICES: tuple[int, ...] = (5, 8, 9, 11)


def run(vlen_bits: int = 512) -> ExperimentResult:
    specs = {s.index: s for s in workload("vgg16")}
    table = Table(
        ["layer", "L2", "tuned blocks (MxNxK)", "speedup vs 16x512x128"],
        title=f"Block re-tuning across cache sizes, VGG-16 deep layers @ "
              f"{vlen_bits}b",
    )
    speedups: dict[tuple[int, float], float] = {}
    blocks_used: dict[tuple[int, float], tuple] = {}
    for idx in LAYER_INDICES:
        spec = specs[idx]
        for l2 in L2_SIZES_MIB:
            hw = HardwareConfig.paper2_rvv(vlen_bits, l2)
            blocks, gain = tuned_speedup(
                spec.gemm_m, spec.gemm_k, spec.gemm_n, hw
            )
            speedups[(idx, l2)] = gain
            blocks_used[(idx, l2)] = blocks
            table.add_row(
                [f"L{idx}", f"{l2:g}MB", "x".join(map(str, blocks)), gain]
            )
    return ExperimentResult(
        experiment="ablation-blocks",
        description="Per-cache block tuning vs the paper's fixed blocks",
        table=table,
        data={"speedups": speedups, "blocks": blocks_used,
              "paper_blocks": PAPER_BLOCKS},
    )
