"""Ablation — cache contention changes the optimal algorithm per layer.

Paper II §1: "concurrent execution competes for cache resources, making the
convolutional algorithms dependent on co-running inference tasks".  This
study quantifies the claim: on a fixed chip (2048-bit vectors, 64 MB shared
L2), the effective L2 slice per model instance shrinks as replicas are
co-located (static partitioning), and the cycle-optimal algorithm flips for
several layers — so a serving-time selector must know the co-location level,
exactly the hardware features the paper feeds its random forest.
"""

from __future__ import annotations

from repro.algorithms.registry import best_algorithm
from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

CO_RUNNERS: tuple[int, ...] = (1, 4, 16, 64)
SHARED_L2_MIB = 64.0
VLEN_BITS = 2048


def run(model: str = "vgg16") -> ExperimentResult:
    specs = workload(model)
    table = Table(
        ["co-located instances", "L2 slice/model"]
        + [f"L{s.index}" for s in specs],
        title=f"Contention ablation: optimal algorithm per {model} layer as "
              f"replicas share a {SHARED_L2_MIB:g}MB L2 @ {VLEN_BITS}b",
    )
    short = {"direct": "dir", "im2col_gemm3": "g3", "im2col_gemm6": "g6",
             "winograd": "wg"}
    winners: dict[int, list[str]] = {}
    for n in CO_RUNNERS:
        slice_mib = SHARED_L2_MIB / n
        hw = HardwareConfig.paper2_rvv(VLEN_BITS, slice_mib)
        row_winners = [best_algorithm(s, hw)[0] for s in specs]
        winners[n] = row_winners
        table.add_row(
            [n, f"{slice_mib:g}MB"] + [short[w] for w in row_winners]
        )
    # which layers flip their optimal algorithm under contention?
    flipped = [
        specs[i].index
        for i in range(len(specs))
        if len({winners[n][i] for n in CO_RUNNERS}) > 1
    ]
    return ExperimentResult(
        experiment="ablation-contention",
        description="Co-runner cache contention flips per-layer choices",
        table=table,
        data={"winners": winners, "flipped_layers": flipped},
    )
