"""Schedule search over loop transformations, per (layer, VL, L2) cell.

For every grid cell the search enumerates the kernel templates' schedule
candidates (Direct's output-row unroll, the 3-loop GEMM's i-block unroll,
the 6-loop GEMM's BLIS blocks — the old ``blocktuner`` grid — and the
fixed Winograd point) and scores them with the analytical model through
the memoized engine.  The table reports the searched best against the
fixed four-algorithm menu; by construction the searched schedule never
loses (the menu defaults are candidates) and ties keep the menu name.

Scope is environment-tunable for CI:

* ``REPRO_SCHEDULE_QUICK=1`` — bounded smoke scope (3 VGG-16 layers,
  VL in {512, 2048} bits, L2 in {1, 16} MB);
* ``REPRO_SCHEDULE_LAYERS=1,5,9`` — explicit layer indices;
* ``REPRO_SCHEDULE_SEED`` — subsample seed (default: the global seed).
"""

from __future__ import annotations

import os

from repro.errors import ExperimentError
from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.nn.layer import ConvSpec
from repro.schedule.search import SearchBounds, SearchReport, search_schedules
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.prng import DEFAULT_SEED
from repro.utils.tables import Table

#: Full-scope grid (the paper's VL x L2 axes).
VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096)
L2_SIZES_MIB: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0)

#: Quick-scope grid and layers (the CI smoke leg).
QUICK_VECTOR_LENGTHS: tuple[int, ...] = (512, 2048)
QUICK_L2_SIZES_MIB: tuple[float, ...] = (1.0, 16.0)
QUICK_LAYER_INDICES: tuple[int, ...] = (1, 5, 9)


def _scope() -> tuple[list[ConvSpec], list[HardwareConfig], int]:
    """(specs, configs, seed) from the environment knobs."""
    quick = os.environ.get("REPRO_SCHEDULE_QUICK", "") not in ("", "0")
    specs = {s.index: s for s in workload("vgg16")}
    layers_env = os.environ.get("REPRO_SCHEDULE_LAYERS", "")
    if layers_env:
        try:
            indices = tuple(int(t) for t in layers_env.split(",") if t.strip())
        except ValueError:
            raise ExperimentError(
                f"REPRO_SCHEDULE_LAYERS must be comma-separated integers, "
                f"got {layers_env!r}"
            )
    elif quick:
        indices = QUICK_LAYER_INDICES
    else:
        indices = tuple(sorted(specs))
    unknown = [i for i in indices if i not in specs]
    if unknown:
        raise ExperimentError(
            f"REPRO_SCHEDULE_LAYERS indices {unknown} not in VGG-16 "
            f"(known: {sorted(specs)})"
        )
    vls = QUICK_VECTOR_LENGTHS if quick else VECTOR_LENGTHS
    l2s = QUICK_L2_SIZES_MIB if quick else L2_SIZES_MIB
    configs = [HardwareConfig.paper2_rvv(vl, l2) for vl in vls for l2 in l2s]
    seed_env = os.environ.get("REPRO_SCHEDULE_SEED", "")
    try:
        seed = int(seed_env) if seed_env else DEFAULT_SEED
    except ValueError:
        raise ExperimentError(
            f"REPRO_SCHEDULE_SEED must be an integer, got {seed_env!r}"
        )
    return [specs[i] for i in indices], configs, seed


def result_from_report(report: SearchReport) -> ExperimentResult:
    """Render a search report as an experiment artifact."""
    table = Table(
        [
            "layer", "VL", "L2", "menu best", "menu cycles",
            "searched best", "searched cycles", "ratio",
        ],
        title="Schedule search vs the fixed four-algorithm menu (VGG-16)",
    )
    for c in report.cells:
        table.add_row([
            f"L{c.layer}",
            f"{c.vlen_bits}b",
            f"{c.l2_mib:g}MB",
            c.menu_best,
            round(c.menu_cycles, 1),
            c.best,
            round(c.best_cycles, 1),
            round(c.ratio, 4),
        ])
    return ExperimentResult(
        experiment="schedule-search",
        description="Searched loop schedules vs the hand-written menu",
        table=table,
        data={
            "rows": report.rows(),
            "cells": len(report.cells),
            "beat_fraction": report.beat_fraction,
            "geomean_ratio": report.geomean_ratio,
            "min_ratio": report.min_ratio,
            "winners": report.winner_names(),
            "seed": report.bounds.seed,
        },
    )


def run() -> ExperimentResult:
    specs, configs, seed = _scope()
    report = search_schedules(
        specs, configs, bounds=SearchBounds(seed=seed)
    )
    return result_from_report(report)
