"""Fig. 2 — per-layer algorithm comparison on YOLOv3 at 512 bits / 1 MB."""

from __future__ import annotations

from repro.algorithms.registry import best_algorithm, get_algorithm
from repro.experiments.common import comparison_table, per_layer_seconds
from repro.experiments.configs import BASELINE, workload
from repro.experiments.report import ExperimentResult
from repro.utils.ascii_chart import bar_chart

MODEL = "yolov3"


def run() -> ExperimentResult:
    """Execution time of all four algorithms per YOLOv3 conv layer (first 15)."""
    specs = workload(MODEL)
    data = per_layer_seconds(specs, BASELINE)
    winners = [best_algorithm(s, BASELINE)[0] for s in specs]
    chart = bar_chart(
        {get_algorithm(n).label: data[n] for n in data},
        categories=[f"L{s.index}" for s in specs],
        title="per-layer time (s), shared scale:",
    )
    table = comparison_table(
        f"Fig. 2: {MODEL} per-layer time (s) @ {BASELINE.label()}", specs, data
    )
    return ExperimentResult(
        experiment="fig02",
        description=f"Per-layer algorithm comparison, {MODEL}, {BASELINE.label()}",
        table=table,
        data={"seconds": data, "winners": winners},
        chart=chart,
    )
