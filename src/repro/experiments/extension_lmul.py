"""Extension — LMUL register grouping vs physically longer vectors.

RVV offers two routes to longer effective vectors: widen VLEN (more silicon:
the VRF/VPU area fractions of the Pareto studies) or raise LMUL (group
existing registers; near-free in area, but the datapath width is unchanged,
so only the *per-instruction* overheads amortize).  On the decoupled Paper I
platform — where the dispatch deadtime is exactly such an overhead — LMUL
should recover much of the longer-VLEN benefit without any extra register
file.  This study sweeps both routes on YOLOv3 with the 3-loop GEMM.
"""

from __future__ import annotations

from repro.algorithms.registry import layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_conv_specs
from repro.simulator.area.chip import core_area_mm2
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

EFFECTIVE_BITS: tuple[int, ...] = (512, 1024, 2048, 4096)


def _total(hw: HardwareConfig) -> float:
    return sum(
        layer_cycles("im2col_gemm3", s, hw).cycles for s in yolov3_conv_specs()
    )


def run() -> ExperimentResult:
    table = Table(
        ["effective bits", "via VLEN (x1e9)", "via LMUL@512b (x1e9)",
         "LMUL recovers", "VLEN core mm^2", "LMUL core mm^2"],
        title="LMUL grouping vs longer VLEN, YOLOv3 (20 layers), decoupled "
              "RISC-VV @1MB",
    )
    base = _total(HardwareConfig.paper1_riscvv(512, 1.0))
    data: dict[int, dict[str, float]] = {}
    for eff in EFFECTIVE_BITS:
        via_vlen = _total(HardwareConfig.paper1_riscvv(eff, 1.0))
        via_lmul = _total(
            HardwareConfig.paper1_riscvv(512, 1.0).with_(lmul=eff // 512)
        )
        vlen_gain = base / via_vlen
        lmul_gain = base / via_lmul
        recovered = (
            1.0 if eff == 512 else (lmul_gain - 1.0) / max(1e-9, vlen_gain - 1.0)
        )
        data[eff] = {
            "via_vlen": via_vlen, "via_lmul": via_lmul,
            "vlen_gain": vlen_gain, "lmul_gain": lmul_gain,
            "recovered": recovered,
        }
        table.add_row(
            [eff, via_vlen / 1e9, via_lmul / 1e9, f"{recovered:.0%}",
             core_area_mm2(eff, model="paper1"),
             core_area_mm2(512, model="paper1")]
        )
    return ExperimentResult(
        experiment="extension-lmul",
        description="Register grouping as the area-free long vector",
        table=table,
        data=data,
    )
