"""Extension — depthwise convolutions (Paper II future work).

Compares the NHWC Direct dataflow against per-channel im2col+GEMM on
MobileNetV1's 13 depthwise layers: the GEMM formulation degenerates
(M = 1, K = 9) while Direct keeps full channel vectors — the quantitative
version of why the paper's future work singles depthwise kernels out.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.extensions.depthwise import (
    depthwise_direct_phases,
    depthwise_gemm_phases,
    mobilenet_v1_depthwise_layers,
)
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

VECTOR_LENGTHS: tuple[int, ...] = (512, 2048)


def run() -> ExperimentResult:
    specs = mobilenet_v1_depthwise_layers()
    table = Table(
        ["layer", "channels", "spatial", "stride"]
        + [f"direct@{vl}b (x1e6)" for vl in VECTOR_LENGTHS]
        + [f"gemm@{vl}b (x1e6)" for vl in VECTOR_LENGTHS]
        + ["gemm/direct @512b"],
        title="MobileNetV1 depthwise layers: Direct vs per-channel im2col+GEMM",
    )
    cycles: dict[tuple[int, int, str], float] = {}
    for spec in specs:
        row: list = [spec.index, spec.c, f"{spec.ih}x{spec.iw}", spec.stride]
        for strategy, builder in (
            ("direct", depthwise_direct_phases),
            ("gemm", depthwise_gemm_phases),
        ):
            for vl in VECTOR_LENGTHS:
                hw = HardwareConfig.paper2_rvv(vl, 1.0)
                c = AnalyticalTimingModel(hw).evaluate(
                    strategy, builder(spec, hw)
                ).cycles
                cycles[(spec.index, vl, strategy)] = c
        for strategy in ("direct", "gemm"):
            for vl in VECTOR_LENGTHS:
                row.append(cycles[(spec.index, vl, strategy)] / 1e6)
        row = row[:4] + row[4:6] + row[6:8] + [
            cycles[(spec.index, 512, "gemm")] / cycles[(spec.index, 512, "direct")]
        ]
        table.add_row(row)
    ratios = {
        s.index: cycles[(s.index, 512, "gemm")] / cycles[(s.index, 512, "direct")]
        for s in specs
    }
    return ExperimentResult(
        experiment="extension-depthwise",
        description="Depthwise conv: Direct vs degenerate im2col+GEMM",
        table=table,
        data={"cycles": cycles, "gemm_over_direct": ratios},
    )
