"""Extension — energy per image across the co-design space.

The papers argue vector CPUs on energy-efficiency grounds but evaluate only
time and area.  This study prices the same design space in joules per image
(event-based model, `repro.simulator.energy`) and contrasts the
*performance-optimal* configuration with the *energy-optimal* one: very long
vectors keep paying in time but their energy win flattens earlier (leakage
over a larger chip, DRAM traffic unchanged), and algorithm selection saves
energy, not just time.
"""

from __future__ import annotations

from repro.experiments.configs import L2_SIZES_MIB, VECTOR_LENGTHS, workload
from repro.experiments.report import ExperimentResult
from repro.serving.throughput import network_cycles
from repro.simulator.energy import network_energy
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table


def run(model: str = "vgg16") -> ExperimentResult:
    specs = workload(model)
    table = Table(
        ["config", "time (s)", "energy/image (J)", "avg power (W)",
         "energy vs GEMM-6 policy"],
        title=f"Energy per image across the design grid, {model}, "
              "optimal per-layer policy",
    )
    energy: dict[tuple[int, float], float] = {}
    times: dict[tuple[int, float], float] = {}
    selection_saving: dict[tuple[int, float], float] = {}
    for vl in VECTOR_LENGTHS:
        for l2 in L2_SIZES_MIB:
            hw = HardwareConfig.paper2_rvv(vl, l2)
            e_opt = network_energy(specs, hw, "optimal").total_j
            e_g6 = network_energy(specs, hw, "im2col_gemm6").total_j
            t = network_cycles(specs, hw, "optimal").seconds(2.0)
            key = (vl, l2)
            energy[key] = e_opt
            times[key] = t
            selection_saving[key] = e_g6 / e_opt
            table.add_row(
                [hw.label(), t, e_opt, e_opt / t, f"{e_g6 / e_opt:.2f}x"]
            )
    perf_opt = min(times, key=times.get)
    energy_opt = min(energy, key=energy.get)
    return ExperimentResult(
        experiment="extension-energy",
        description="Joules per image across VL x L2; energy- vs perf-optimal",
        table=table,
        data={
            "energy": energy,
            "times": times,
            "selection_saving": selection_saving,
            "perf_optimal": perf_opt,
            "energy_optimal": energy_opt,
        },
    )
