"""Table 1 — convolutional layer dimensions of VGG-16 and YOLOv3."""

from __future__ import annotations

from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.utils.tables import Table


def run() -> ExperimentResult:
    """Regenerate the paper's Table 1 from the model definitions."""
    table = Table(
        ["model", "layer", "IC", "OC", "IH/IW", "OH/OW", "KH/KW", "stride"],
        title="Table 1: convolutional layers of VGG-16 and YOLOv3 (first 15)",
    )
    data: dict[str, list[tuple]] = {}
    for model in ("vgg16", "yolov3"):
        rows = []
        for spec in workload(model):
            rows.append(
                (spec.index, spec.ic, spec.oc, spec.ih, spec.oh, spec.kh, spec.stride)
            )
            table.add_row(
                [model, spec.index, spec.ic, spec.oc, spec.ih, spec.oh, spec.kh,
                 spec.stride]
            )
        data[model] = rows
    return ExperimentResult(
        experiment="table1",
        description="Layer dimensions (IC, OC, IH/IW, OH/OW, KH/KW, stride)",
        table=table,
        data=data,
    )
