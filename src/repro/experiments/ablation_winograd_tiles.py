"""Ablation — Winograd tile size vs fp32 accuracy.

The papers fix the Winograd tile at 8x8 (F(6,3)) and grow *channels*
instead of the tile to feed longer vectors: "vectorizing the
transformations with longer vector lengths would require a larger tile
size, however, in this case, the numerical accuracy would drop" (Paper I
§IV-B).  This study makes the claim quantitative: single-pass fp32 error of
F(m,3) for m = 2..12 (standard Cook-Toom point sets), plus the compounded
error after a stack of Winograd layers — the regime a CNN actually runs in.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.winograd_transforms import winograd_matrices
from repro.experiments.report import ExperimentResult
from repro.utils.prng import make_rng
from repro.utils.tables import Table

TILE_OUTPUTS: tuple[int, ...] = (2, 4, 6, 8, 10, 12)
#: fp32 error budget per layer: a deep CNN stacks dozens of convolutions, so
#: per-layer error must stay well under fp16-class output precision.  At this
#: budget F(6,3) — the paper's 8x8 tile — is the largest admissible tile.
ERROR_BUDGET = 1e-5


def single_pass_error(m: int, trials: int = 300, seed: int = 0) -> float:
    """Max |F(m,3) - exact| over random unit-range inputs, in fp32."""
    wm = winograd_matrices(m, 3)
    at = wm.AT.astype(np.float32)
    g = wm.G.astype(np.float32)
    bt = wm.BT.astype(np.float32)
    rng = make_rng(seed)
    worst = 0.0
    for _ in range(trials):
        d = rng.uniform(-1, 1, wm.alpha).astype(np.float32)
        k = rng.uniform(-1, 1, 3).astype(np.float32)
        y = at @ ((g @ k) * (bt @ d))
        exact = np.array([(d[i : i + 3] * k).sum() for i in range(m)])
        worst = max(worst, float(np.abs(y - exact).max()))
    return worst


def stacked_error(m: int, depth: int = 8, seed: int = 1) -> float:
    """Relative error after ``depth`` chained 1-D Winograd convolutions.

    Each stage convolves the previous (normalized) output with a fresh
    kernel both exactly (float64 direct) and via fp32 F(m,3); error is the
    final relative deviation — how the per-tile error compounds through a
    network's depth.
    """
    wm = winograd_matrices(m, 3)
    at = wm.AT.astype(np.float32)
    g = wm.G.astype(np.float32)
    bt = wm.BT.astype(np.float32)
    rng = make_rng(seed)
    n = 16 * m  # signal length, a whole number of tiles after shrinkage
    exact = rng.uniform(-1, 1, n)
    approx = exact.astype(np.float32)
    for _ in range(depth):
        k = rng.uniform(-1, 1, 3)
        out_len = (len(exact) - 3 + 1) // m * m
        nxt_exact = np.array(
            [(exact[i : i + 3] * k).sum() for i in range(out_len)]
        )
        k32 = k.astype(np.float32)
        nxt_approx = np.empty(out_len, dtype=np.float32)
        for t in range(0, out_len, m):
            d = approx[t : t + wm.alpha]
            nxt_approx[t : t + m] = at @ ((g @ k32) * (bt @ d))
        # normalize both to unit range so error measures precision, not growth
        scale = max(1e-12, np.abs(nxt_exact).max())
        exact = nxt_exact / scale
        approx = (nxt_approx / np.float32(scale)).astype(np.float32)
        if len(exact) < wm.alpha:
            break
    return float(np.abs(approx - exact).max())


def run() -> ExperimentResult:
    table = Table(
        ["F(m,3)", "tile", "mults/output", "single-pass err", "stacked err (8 deep)",
         "within budget"],
        title="Winograd tile-size vs fp32 accuracy (the fixed-8x8-tile rationale)",
    )
    single: dict[int, float] = {}
    stacked: dict[int, float] = {}
    for m in TILE_OUTPUTS:
        single[m] = single_pass_error(m)
        stacked[m] = stacked_error(m)
        table.add_row(
            [f"F({m},3)", f"{m + 2}x{m + 2}", (m + 2) / m, single[m],
             stacked[m], "yes" if single[m] <= ERROR_BUDGET else "NO"]
        )
    largest_ok = max(m for m in TILE_OUTPUTS if single[m] <= ERROR_BUDGET)
    return ExperimentResult(
        experiment="ablation-winograd-tiles",
        description="fp32 error growth with Winograd tile size",
        data={"single": single, "stacked": stacked, "largest_ok": largest_ok},
        table=table,
    )
