"""Extension — mixed-model serving (VGG-16 + YOLOv3 on one chip).

Sweeps the VGG/YOLO instance split on a 16-core chip and compares the
optimal-per-layer policy against always-GEMM-6: per-layer selection helps
*both* tenants, and the aggregate throughput-per-area stays flat across
splits — co-location remains efficient even heterogeneously.
"""

from __future__ import annotations

from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.serving.mixed import ModelGroup, evaluate_mixed
from repro.utils.tables import Table

CORES = 16
SPLITS: tuple[tuple[int, int], ...] = ((16, 0), (12, 4), (8, 8), (4, 12), (0, 16))


def run(vlen_bits: int = 2048, shared_l2_mib: float = 16.0) -> ExperimentResult:
    vgg = tuple(workload("vgg16"))
    yolo = tuple(workload("yolov3"))
    table = Table(
        ["vgg:yolo split", "policy", "vgg img/s", "yolo img/s",
         "aggregate img/s", "img/s per mm^2"],
        title=f"Mixed-model serving on {CORES} cores @ {vlen_bits}b, "
              f"{shared_l2_mib:g}MB shared L2",
    )
    data: dict[tuple[tuple[int, int], str], dict] = {}
    for n_vgg, n_yolo in SPLITS:
        groups = []
        if n_vgg:
            groups.append(ModelGroup("vgg16", vgg, n_vgg))
        if n_yolo:
            groups.append(ModelGroup("yolov3", yolo, n_yolo))
        for policy in ("im2col_gemm6", "optimal"):
            result = evaluate_mixed(groups, vlen_bits, shared_l2_mib,
                                    policy=policy)
            vgg_tp = result.group_throughput("vgg16") if n_vgg else 0.0
            yolo_tp = result.group_throughput("yolov3") if n_yolo else 0.0
            data[((n_vgg, n_yolo), policy)] = {
                "vgg": vgg_tp, "yolo": yolo_tp,
                "aggregate": result.aggregate_images_per_second(),
                "per_area": result.throughput_per_area,
            }
            table.add_row(
                [f"{n_vgg}:{n_yolo}", policy, vgg_tp, yolo_tp,
                 result.aggregate_images_per_second(),
                 result.throughput_per_area]
            )
    gains = {
        split: data[(split, "optimal")]["aggregate"]
        / data[(split, "im2col_gemm6")]["aggregate"]
        for split, _ in {k: None for k in SPLITS}.items()
    }
    return ExperimentResult(
        experiment="serving-mixed",
        description="Heterogeneous co-location with per-model selection",
        table=table,
        data={"points": data, "selection_gains": gains},
    )
