"""Fig. 3 — VGG-16 vector-length sweep (512-4096 bits, 1 MB L2)."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.vl_sweep import vl_sweep


def run() -> ExperimentResult:
    """Scalability of the four algorithms with vector length on VGG-16."""
    return vl_sweep("vgg16", "fig03", 3)
