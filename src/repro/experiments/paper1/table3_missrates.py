"""Paper I Table III — average vector length and L2 miss rate vs VL.

With the 3-loop im2col+GEMM on the decoupled RISC-VV at 1 MB L2, Paper I
reports the consumed average vector length staying near the maximum (the
strip-mined kernels saturate the registers) while the L2 miss rate climbs
from 32 % at 512 bits to 79 % at 16384 bits — the mechanism that caps the
vector-length scaling of Fig. 6.

Average VL comes from the schedules' active-element accounting; the miss
rate is estimated as DRAM-filled lines over L2-port lines (compulsory +
capacity traffic over total traffic), per the analytical cache model.
"""

from __future__ import annotations

from repro.algorithms.registry import get_algorithm
from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_conv_specs
from repro.simulator.analytical.cachemodel import (
    phase_l2_bytes,
    stream_dram_bytes,
)
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096, 8192, 16384)

#: Paper I Table III reference values (avg VL consumed, miss rate %).
PAPER_TABLE3: dict[int, tuple[float, float]] = {
    512: (512.0, 32.0),
    1024: (1022.9, 36.0),
    2048: (2041.9, 39.0),
    4096: (4063.7, 42.0),
    8192: (8111.9, 61.0),
    16384: (15902.2, 79.0),
}


def measure(vlen_bits: int) -> tuple[float, float]:
    """(average consumed VL in bits, estimated L2 miss rate %)."""
    hw = HardwareConfig.paper1_riscvv(vlen_bits, 1.0)
    algo = get_algorithm("im2col_gemm3")
    active_sum = ops_sum = dram = l2 = 0.0
    for spec in yolov3_conv_specs():
        for phase in algo.schedule(spec, hw):
            ops = phase.vector_ops + phase.vmem_ops
            active = phase.vector_active or phase.vmem_active
            active_sum += ops * active
            ops_sum += ops
            dram += sum(stream_dram_bytes(s, hw) for s in phase.streams)
            l2 += phase_l2_bytes(phase.streams)
    avg_vl_bits = 32.0 * active_sum / ops_sum
    miss_rate = 100.0 * dram / l2
    return avg_vl_bits, miss_rate


def run() -> ExperimentResult:
    table = Table(
        ["vector length", "avg VL (paper)", "avg VL (ours)",
         "miss rate % (paper)", "miss rate % (ours)"],
        title="Paper I Table III: consumed vector length and L2 miss rate, "
              "YOLOv3 (20 layers), 3-loop GEMM, 1MB L2",
    )
    data: dict[int, tuple[float, float]] = {}
    for vl in VECTOR_LENGTHS:
        avg, miss = measure(vl)
        data[vl] = (avg, miss)
        pa, pm = PAPER_TABLE3[vl]
        table.add_row([vl, pa, avg, pm, miss])
    return ExperimentResult(
        experiment="paper1-table3",
        description="Average vector length + L2 miss rate vs vector length",
        table=table,
        data={"measured": data, "paper": PAPER_TABLE3},
    )
