"""Paper I §VI-B(c) — vector lanes 2-8 across vector lengths.

On the decoupled RISC-VV, adding lanes raises the datapath width.  Paper I:
more lanes chiefly benefit *long* vectors (which amortize the startup and
keep the lanes busy); short vectors saturate early.
"""

from __future__ import annotations

from repro.experiments.paper1.vl_sweep import total_cycles
from repro.experiments.report import ExperimentResult
from repro.utils.tables import Table

LANES: tuple[int, ...] = (2, 4, 8)
VECTOR_LENGTHS: tuple[int, ...] = (512, 2048, 8192)


def run() -> ExperimentResult:
    """Cycles per (VL, lanes) and the 2->8-lane gain per vector length."""
    cycles = {
        (vl, lanes): total_cycles(vl, 1.0, lanes)
        for vl in VECTOR_LENGTHS
        for lanes in LANES
    }
    table = Table(
        ["vector length"] + [f"{l} lanes (x1e9)" for l in LANES] + ["gain 2->8"],
        title="Paper I: vector lanes, YOLOv3 (20 layers), decoupled RISC-VV, 1MB",
    )
    gains: dict[int, float] = {}
    for vl in VECTOR_LENGTHS:
        gains[vl] = cycles[(vl, 2)] / cycles[(vl, 8)]
        table.add_row(
            [vl] + [cycles[(vl, l)] / 1e9 for l in LANES] + [gains[vl]]
        )
    return ExperimentResult(
        experiment="paper1-lanes",
        description="Vector-lane scaling (Paper I §VI-B(c))",
        table=table,
        data={"cycles": cycles, "gains": gains},
    )
