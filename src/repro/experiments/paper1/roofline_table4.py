"""Paper I Table IV — arithmetic intensity and sustained performance.

The 14 distinct convolutional layers of YOLOv3 (those with distinct GEMM
shapes) characterized on the A64FX-style configuration.  The AI column is
exact arithmetic over Table 1's dimensions and must match the paper's
printed values; the sustained fraction reproduces the qualitative finding
that low-AI layers (small weight matrices) sustain the least.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_backbone_convs
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.roofline import roofline
from repro.utils.tables import Table

#: The distinct layers Paper I's Table IV lists: (label, backbone ordinal).
TABLE4_LAYERS: tuple[tuple[str, int], ...] = (
    ("L1", 1), ("L2", 2), ("L3", 3), ("L5", 5), ("L6", 6), ("L10", 10),
    ("L11", 11), ("L38", 38), ("L44", 44), ("L45", 45),
    ("L59", 59), ("L61", 61), ("L62", 62), ("L75", 75),
)

#: The paper's printed AI values for cross-checking (Table IV).
PAPER_AI: dict[str, float] = {
    "L1": 7.32, "L2": 26.0, "L3": 11.0, "L5": 52.0, "L6": 21.0,
    "L10": 101.0, "L11": 42.0, "L38": 76.0, "L44": 126.0, "L45": 88.0,
    "L59": 65.0, "L61": 85.0, "L62": 162.0, "L75": 63.0,
}


def table4_specs():
    """(label, spec) pairs for the evaluated distinct layers."""
    convs = yolov3_backbone_convs()
    return [(label, convs[ordinal - 1]) for label, ordinal in TABLE4_LAYERS]


def run() -> ExperimentResult:
    hw = HardwareConfig.a64fx()
    pairs = table4_specs()
    points = roofline([s for _, s in pairs], hw)
    table = Table(
        ["layer", "M", "N", "K", "AI (paper)", "AI (ours)",
         "roofline bound", "sustained"],
        title="Paper I Table IV: AI and sustained performance, YOLOv3 on "
              "A64FX-style config",
    )
    ai: dict[str, float] = {}
    sustained: dict[str, float] = {}
    for (label, spec), pt in zip(pairs, points):
        ai[label] = pt.arithmetic_intensity
        sustained[label] = pt.sustained_fraction
        table.add_row(
            [label, spec.gemm_m, spec.gemm_n, spec.gemm_k,
             PAPER_AI.get(label, float("nan")), pt.arithmetic_intensity,
             f"{pt.attainable_fraction:.0%}", f"{pt.sustained_fraction:.0%}"]
        )
    return ExperimentResult(
        experiment="paper1-roofline",
        description="Arithmetic intensity & sustained performance (Table IV)",
        table=table,
        data={"ai": ai, "sustained": sustained, "paper_ai": PAPER_AI},
    )
