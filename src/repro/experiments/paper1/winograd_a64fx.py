"""Paper I §VII-A — Winograd on the A64FX (the inter-tile headline).

Paper I's evaluation of the inter-tile-parallel Winograd against the
optimized im2col+GEMM on the A64FX:

* 3x3/stride-1 layers run **2.4x** faster with Winograd;
* 3x3/stride-2 layers (computed at stride 1 and subsampled) run **1.4x
  slower** — different algorithmic treatment needed;
* whole networks: **1.35x** (YOLOv3, 38 of 75 layers are 3x3) and **1.5x**
  (VGG-16, all-Winograd) with the weight transform hoisted offline.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import layer_cycles
from repro.algorithms.winograd import WinogradConv
from repro.experiments.report import ExperimentResult
from repro.nn.models import vgg16_conv_specs, yolov3_backbone_convs
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

_WINOGRAD = WinogradConv(online_weight_transform=False, allow_strided=True)


def _wg_cycles(spec, hw, model) -> float:
    return model.evaluate("winograd", _WINOGRAD.schedule(spec, hw)).cycles


def run() -> ExperimentResult:
    hw = HardwareConfig.a64fx()
    model = AnalyticalTimingModel(hw)
    convs = yolov3_backbone_convs()
    s1 = [c for c in convs if c.kh == 3 and c.stride == 1]
    s2 = [c for c in convs if c.kh == 3 and c.stride == 2]

    def speedups(layers):
        return [
            layer_cycles("im2col_gemm6", c, hw).cycles / _wg_cycles(c, hw, model)
            for c in layers
        ]

    s1_speedups = speedups(s1)
    s2_speedups = speedups(s2)

    def network(specs) -> float:
        gemm = sum(layer_cycles("im2col_gemm6", c, hw).cycles for c in specs)
        mixed = sum(
            _wg_cycles(c, hw, model)
            if c.kh == 3 and c.stride == 1
            else layer_cycles("im2col_gemm6", c, hw).cycles
            for c in specs
        )
        return gemm / mixed

    yolo_gain = network(convs)
    vgg_gain = network(vgg16_conv_specs())

    table = Table(
        ["metric", "paper", "measured"],
        title="Paper I: inter-tile Winograd vs im2col+GEMM on the A64FX",
    )
    table.add_row(
        ["3x3 stride-1 layers (median speedup)", "2.4x",
         float(np.median(s1_speedups))]
    )
    table.add_row(
        ["3x3 stride-2 layers (median speedup)", "0.71x (1.4x slower)",
         float(np.median(s2_speedups))]
    )
    table.add_row(["YOLOv3 network (Winograd* policy)", "1.35x", yolo_gain])
    table.add_row(["VGG-16 network (all-Winograd)", "1.5x", vgg_gain])
    table.add_row(
        ["# 3x3 layers in YOLOv3", "38", len(s1) + len(s2)]
    )
    return ExperimentResult(
        experiment="paper1-winograd-a64fx",
        description="Winograd inter-tile headline speedups on the A64FX",
        table=table,
        data={
            "s1_speedups": s1_speedups,
            "s2_speedups": s2_speedups,
            "yolo_gain": yolo_gain,
            "vgg_gain": vgg_gain,
        },
    )
