"""Paper I (IPDPS '23) extension experiments.

Paper II builds on Paper I ("Accelerating CNN inference on long vector
architectures via co-design"), whose full text is part of the provided
thesis.  These harnesses reproduce Paper I's co-design artifacts on the same
substrates, using the *decoupled* RISC-VV configuration (VPU at the L2, 2-8
lanes, no prefetch) and the ARM-SVE/A64FX presets:

* Table II — 6-loop vs 3-loop block-size tuning on the decoupled RVV;
* Fig. 6 — vector lengths 512-16384 bits at 1 MB L2 (YOLOv3/20 layers);
* Fig. 7 — L2 1-256 MB across vector lengths;
* §VI-B(c) — vector lanes 2-8;
* Figs. 9-10 — Winograd (offline weight transform) VL x L2 sweeps;
* Fig. 11 — Pareto frontier with the VRF-only area scaling.
"""
