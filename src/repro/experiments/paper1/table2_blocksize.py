"""Paper I Table II — 6-loop block-size tuning vs the 3-loop GEMM.

Relative execution time of the first 4 YOLOv3 convolutional layers with the
6-loop implementation at several (blockM, blockN, blockK) choices, normalized
to the 3-loop implementation, on the decoupled RISC-VV platform (512 bits,
1 MB, 8 lanes).  Paper I found the variants within ~2-10 % of each other
with 16x512x128 closest — BLIS-like blocking does not pay off when the VPU
talks to the L2 directly.
"""

from __future__ import annotations

from repro.algorithms.gemm_kernels import gemm6_phases
from repro.algorithms.im2col import im2col_phase
from repro.algorithms.registry import layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_conv_specs
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

#: Paper I Table II block-size candidates (blockM, blockN, blockK).
BLOCK_SIZES: tuple[tuple[int, int, int], ...] = (
    (128, 1024, 256),
    (16, 1024, 128),
    (16, 512, 128),
    (16, 512, 256),
    (32, 512, 128),
    (64, 1024, 128),
)

HW = HardwareConfig.paper1_riscvv(512, 1.0, lanes=8)


def _gemm6_cycles(spec, blocks) -> float:
    bm, bn, bk = blocks
    phases = [im2col_phase(spec, HW)] + gemm6_phases(
        spec.gemm_m, spec.gemm_k, spec.gemm_n, HW,
        block_m=bm, block_n=bn, block_k=bk,
    )
    return AnalyticalTimingModel(HW).evaluate("im2col_gemm6", phases).cycles


def run() -> ExperimentResult:
    """Relative 6-loop time per block size (3-loop = 1.0)."""
    specs = yolov3_conv_specs()[:4]
    gemm3_total = sum(
        layer_cycles("im2col_gemm3", s, HW, fallback=False).cycles for s in specs
    )
    table = Table(
        ["block sizes (MxNxK)", "relative time (6-loop / 3-loop)"],
        title="Paper I Table II: block-size tuning, YOLOv3 first 4 conv layers,"
              " decoupled RISC-VV @512b/1MB",
    )
    ratios: dict[tuple[int, int, int], float] = {}
    for blocks in BLOCK_SIZES:
        total6 = sum(_gemm6_cycles(s, blocks) for s in specs)
        ratios[blocks] = total6 / gemm3_total
        table.add_row([f"{blocks[0]}x{blocks[1]}x{blocks[2]}", ratios[blocks]])
    best = min(ratios, key=ratios.get)
    return ExperimentResult(
        experiment="paper1-table2",
        description="6-loop vs 3-loop block-size tuning (decoupled RVV)",
        table=table,
        data={"ratios": ratios, "best_blocks": best},
    )
