"""Paper I §VI — optimization speedup ladder vs the naive Darknet baseline.

Paper I's headline speedups over the unvectorized Darknet im2col+GEMM:

* YOLOv3-tiny on RISC-VV (decoupled): **14x** with the manual 3-loop kernel;
* YOLOv3-tiny on A64FX (ARM-SVE): **~6.3x** from compiler auto-vectorization,
  **~9x** with forced unrolling, **~21x** with manual vectorization
  (i.e. manual beats auto-vectorization by 3x-6x);
* YOLOv3 on A64FX: **~32x** with the BLIS-like 6-loop kernel.
"""

from __future__ import annotations

from repro.algorithms.registry import layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_conv_specs, yolov3_tiny_conv_specs
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

LADDER: tuple[tuple[str, str], ...] = (
    ("im2col_gemm_autovec", "auto-vectorized"),
    ("im2col_gemm_autovec_unroll", "auto-vectorized + unroll"),
    ("im2col_gemm3", "manual 3-loop"),
    ("im2col_gemm6", "manual 6-loop (BLIS-like)"),
)


def _speedups(specs, hw) -> dict[str, float]:
    def total(name: str) -> float:
        return sum(layer_cycles(name, s, hw).cycles for s in specs)

    base = total("im2col_gemm_naive")
    return {name: base / total(name) for name, _ in LADDER}


def run() -> ExperimentResult:
    scenarios = {
        "yolov3-tiny @ RISC-VV (decoupled)": (
            yolov3_tiny_conv_specs(), HardwareConfig.paper1_riscvv(512, 1.0),
            {"im2col_gemm3": 14.0},
        ),
        "yolov3-tiny @ A64FX (ARM-SVE)": (
            yolov3_tiny_conv_specs(), HardwareConfig.a64fx(),
            {"im2col_gemm_autovec": 6.3, "im2col_gemm_autovec_unroll": 9.0,
             "im2col_gemm3": 21.0},
        ),
        "yolov3 @ A64FX (ARM-SVE)": (
            yolov3_conv_specs(), HardwareConfig.a64fx(),
            {"im2col_gemm6": 32.0},
        ),
    }
    table = Table(
        ["scenario", "kernel", "speedup vs naive", "paper"],
        title="Paper I: optimization speedups over the naive Darknet baseline",
    )
    data: dict[str, dict[str, float]] = {}
    for label, (specs, hw, paper) in scenarios.items():
        speedups = _speedups(specs, hw)
        data[label] = speedups
        for name, kernel_label in LADDER:
            table.add_row(
                [label, kernel_label, speedups[name],
                 paper.get(name, "-")]
            )
    return ExperimentResult(
        experiment="paper1-speedups",
        description="Manual vs auto-vectorization speedup ladder",
        table=table,
        data=data,
    )
