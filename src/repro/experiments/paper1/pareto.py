"""Paper I Fig. 11 — Pareto frontier with the VRF-only area scaling.

YOLOv3 (20 layers) with the 3-loop im2col+GEMM on the decoupled RISC-VV at
7 nm: vector lengths 512-8192 bits (VRF area fractions 3-36.9 %), L2 sizes
1-256 MB.  Paper I: longer vectors are almost free in area but worth a lot
in performance; caches dominate the area (up to ~125 mm^2); the
Pareto-optimal point pairs a long vector (4096 b) with the smallest cache.
"""

from __future__ import annotations

from repro.experiments.paper1.vl_sweep import total_cycles
from repro.experiments.report import ExperimentResult
from repro.serving.pareto import ParetoPoint, pareto_frontier, pareto_optimal
from repro.simulator.area.chip import sram_area_mm2
from repro.simulator.area import core_area_mm2
from repro.utils.tables import Table

VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096, 8192)
L2_SIZES_MIB: tuple[float, ...] = (1.0, 8.0, 64.0, 256.0)


def run() -> ExperimentResult:
    """Cycles-vs-area design points, frontier and knee (Paper I variant)."""
    points: list[ParetoPoint] = []
    for vl in VECTOR_LENGTHS:
        for l2 in L2_SIZES_MIB:
            area = core_area_mm2(vl, model="paper1") + sram_area_mm2(l2)
            cycles = total_cycles(vl, l2)
            points.append(
                ParetoPoint(
                    cost=area, value=-cycles,
                    payload={"vlen": vl, "l2_mib": l2, "cycles": cycles},
                )
            )
    frontier = pareto_frontier(points)
    knee = pareto_optimal(points)
    frontier_ids = {id(p) for p in frontier}

    table = Table(
        ["vlen_bits", "l2_mib", "area_mm2", "cycles (x1e9)", "on_frontier", "knee"],
        title="Paper I Fig. 11: performance-area Pareto, decoupled RISC-VV @7nm",
    )
    for p in sorted(points, key=lambda p: p.cost):
        pl = p.payload
        table.add_row(
            [pl["vlen"], pl["l2_mib"], p.cost, pl["cycles"] / 1e9,
             "*" if id(p) in frontier_ids else "", "knee" if p is knee else ""]
        )
    return ExperimentResult(
        experiment="paper1-pareto",
        description="Pareto frontier with VRF-only area scaling",
        table=table,
        data={"points": points, "frontier": frontier, "knee": knee},
    )
