"""Paper I Fig. 6 — vector lengths 512-16384 bits on the decoupled RISC-VV.

YOLOv3's first 20 network layers (15 convolutional) with the optimized
3-loop im2col+GEMM at 1 MB L2 and 8 lanes.  Paper I: ~2.5x improvement from
512 to 16384 bits, effectively saturating beyond 8192 bits (the L2 miss
rate climbs from 32 % to 79 % — here visible as the B-panel reuse window
outgrowing the cache).
"""

from __future__ import annotations

from repro.algorithms.registry import layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_conv_specs
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096, 8192, 16384)


def total_cycles(vlen_bits: int, l2_mib: float = 1.0, lanes: int = 8) -> float:
    hw = HardwareConfig.paper1_riscvv(vlen_bits, l2_mib, lanes)
    return sum(
        layer_cycles("im2col_gemm3", s, hw).cycles for s in yolov3_conv_specs()
    )


def run() -> ExperimentResult:
    """Total cycles (and speedup over 512 b) per vector length."""
    table = Table(
        ["vector length (bits)", "cycles (x1e9)", "speedup vs 512b"],
        title="Paper I Fig. 6: vector-length sweep, YOLOv3 (20 layers), "
              "decoupled RISC-VV, 1MB L2, 8 lanes",
    )
    cycles = {vl: total_cycles(vl) for vl in VECTOR_LENGTHS}
    base = cycles[512]
    for vl in VECTOR_LENGTHS:
        table.add_row([vl, cycles[vl] / 1e9, base / cycles[vl]])
    return ExperimentResult(
        experiment="paper1-vl",
        description="Decoupled RVV vector-length scaling (Paper I Fig. 6)",
        table=table,
        data={"cycles": cycles, "speedups": {vl: base / c for vl, c in cycles.items()}},
    )
