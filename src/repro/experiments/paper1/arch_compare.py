"""Paper I contribution 1 — not all optimizations help all architectures.

The BLIS-like 6-loop GEMM against the plain 3-loop kernel on the three
platforms of Paper I:

* decoupled RISC-VV@gem5 (VPU at the L2, no prefetch): the packing/blocking
  machinery buys nothing — "BLIS-like optimizations do not boost the
  performance of convolutional layers on RISC-VV";
* integrated ARM-SVE@gem5 (no prefetch): a modest 6-loop edge (~15 % in the
  paper) on cache-friendly layers;
* A64FX (hardware prefetch, out-of-order): the 6-loop kernel's prefetching
  and cache blocking pay off (2x whole-model in the paper).

We report the 6-loop/3-loop time ratio per platform over YOLOv3 (full
backbone: the deep layers are where blocking matters) and assert the
*ordering* — the 6-loop kernel looks relatively better the more integrated
and prefetch-capable the platform is.
"""

from __future__ import annotations

from repro.algorithms.registry import layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_backbone_convs
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

PLATFORMS: tuple[tuple[str, HardwareConfig], ...] = (
    ("RISC-VV@gem5 (decoupled)", HardwareConfig.paper1_riscvv(512, 1.0)),
    ("ARM-SVE@gem5 (integrated)", HardwareConfig.paper1_armsve(512, 1.0)),
    ("A64FX (integrated+prefetch)", HardwareConfig.a64fx()),
)


def run() -> ExperimentResult:
    specs = yolov3_backbone_convs()
    table = Table(
        ["platform", "3-loop (x1e9)", "6-loop (x1e9)", "6-loop / 3-loop"],
        title="Paper I: BLIS-like 6-loop vs 3-loop GEMM across architectures "
              "(YOLOv3, 75 conv layers)",
    )
    ratios: dict[str, float] = {}
    for label, hw in PLATFORMS:
        g3 = sum(layer_cycles("im2col_gemm3", s, hw).cycles for s in specs)
        g6 = sum(layer_cycles("im2col_gemm6", s, hw).cycles for s in specs)
        ratios[label] = g6 / g3
        table.add_row([label, g3 / 1e9, g6 / 1e9, g6 / g3])
    return ExperimentResult(
        experiment="paper1-archcompare",
        description="6-loop vs 3-loop GEMM per vector architecture",
        table=table,
        data={"ratios": ratios},
    )
