"""Paper I Fig. 7 — L2 cache sweep 1-256 MB across vector lengths.

YOLOv3 (first 20 network layers, 15 conv) with the 3-loop im2col+GEMM on the
decoupled RISC-VV.  Paper I: larger caches help all vector lengths, and help
the very long ones (8192/16384 b) the most — their reuse windows only fit in
the big caches.
"""

from __future__ import annotations

from repro.experiments.paper1.vl_sweep import total_cycles
from repro.experiments.report import ExperimentResult
from repro.utils.tables import Table

VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096, 8192, 16384)
L2_SIZES_MIB: tuple[float, ...] = (1.0, 8.0, 64.0, 256.0)


def run() -> ExperimentResult:
    """Cycles per (VL, L2) and the 1 MB -> 256 MB gain per vector length."""
    cycles: dict[tuple[int, float], float] = {}
    for vl in VECTOR_LENGTHS:
        for l2 in L2_SIZES_MIB:
            cycles[(vl, l2)] = total_cycles(vl, l2)
    table = Table(
        ["vector length"] + [f"{l2:g}MB (x1e9)" for l2 in L2_SIZES_MIB]
        + ["gain 1->256MB"],
        title="Paper I Fig. 7: L2 sweep, YOLOv3 (20 layers), decoupled RISC-VV",
    )
    gains: dict[int, float] = {}
    for vl in VECTOR_LENGTHS:
        gains[vl] = cycles[(vl, 1.0)] / cycles[(vl, 256.0)]
        table.add_row(
            [vl] + [cycles[(vl, l2)] / 1e9 for l2 in L2_SIZES_MIB] + [gains[vl]]
        )
    return ExperimentResult(
        experiment="paper1-cache",
        description="Decoupled RVV L2 scaling (Paper I Fig. 7)",
        table=table,
        data={"cycles": cycles, "gains": gains},
    )
