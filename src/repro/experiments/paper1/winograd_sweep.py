"""Paper I Figs. 9-10 — Winograd VL x L2 sweeps (ARM-SVE style).

Winograd with the *offline* weight transform (Paper I hoists it out of
inference) under the network policy of Paper I: Winograd on 3x3/stride-1
layers, optimized im2col+GEMM elsewhere.  Swept over 512-2048-bit vectors
(the SVE range) and 1-256 MB L2 for YOLOv3 (20 layers) and VGG-16.

Paper I: ~1.4x from 512 to 2048 bits; caches help YOLOv3 (~1.75x, its other
layers call im2col+GEMM) more than the all-Winograd VGG-16 (~1.4x, flat
beyond 64 MB) — Winograd itself has small cache demands.
"""

from __future__ import annotations

from repro.algorithms.registry import get_algorithm, layer_cycles
from repro.algorithms.winograd import WinogradConv
from repro.experiments.report import ExperimentResult
from repro.nn.models import vgg16_conv_specs, yolov3_conv_specs
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048)
L2_SIZES_MIB: tuple[float, ...] = (1.0, 8.0, 64.0, 256.0)

_OFFLINE_WINOGRAD = WinogradConv(online_weight_transform=False)


def network_winograd_cycles(model: str, vlen_bits: int, l2_mib: float) -> float:
    """Winograd* network time with the offline weight transform."""
    specs = vgg16_conv_specs() if model == "vgg16" else yolov3_conv_specs()
    hw = HardwareConfig.paper1_armsve(vlen_bits, l2_mib)
    engine = AnalyticalTimingModel(hw)
    total = 0.0
    for spec in specs:
        if _OFFLINE_WINOGRAD.applicable(spec):
            total += engine.evaluate(
                "winograd", _OFFLINE_WINOGRAD.schedule(spec, hw)
            ).cycles
        else:
            total += layer_cycles("im2col_gemm6", spec, hw).cycles
    return total


def run() -> ExperimentResult:
    """Cycles per (model, VL, L2) and the headline gains."""
    cycles: dict[tuple[str, int, float], float] = {}
    for model in ("yolov3", "vgg16"):
        for vl in VECTOR_LENGTHS:
            for l2 in L2_SIZES_MIB:
                cycles[(model, vl, l2)] = network_winograd_cycles(model, vl, l2)
    table = Table(
        ["model", "vlen"] + [f"{l2:g}MB (x1e9)" for l2 in L2_SIZES_MIB],
        title="Paper I Figs. 9-10: Winograd* VL x L2 sweep (ARM-SVE style)",
    )
    for model in ("yolov3", "vgg16"):
        for vl in VECTOR_LENGTHS:
            table.add_row(
                [model, vl] + [cycles[(model, vl, l2)] / 1e9 for l2 in L2_SIZES_MIB]
            )
    gains = {
        "vl_yolo": cycles[("yolov3", 512, 1.0)] / cycles[("yolov3", 2048, 1.0)],
        "vl_vgg": cycles[("vgg16", 512, 1.0)] / cycles[("vgg16", 2048, 1.0)],
        "cache_yolo": cycles[("yolov3", 512, 1.0)] / cycles[("yolov3", 512, 256.0)],
        "cache_vgg": cycles[("vgg16", 512, 1.0)] / cycles[("vgg16", 512, 256.0)],
    }
    return ExperimentResult(
        experiment="paper1-winograd",
        description="Winograd VL/L2 sweeps with offline weight transform",
        table=table,
        data={"cycles": cycles, "gains": gains},
    )
