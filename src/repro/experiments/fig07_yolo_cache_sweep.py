"""Fig. 07 — yolov3 L2-cache sweep (1-64 MB) at 512-bit vectors."""

from __future__ import annotations

from repro.experiments.cache_sweep import cache_sweep
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    """Cache-size benefit of the four algorithms on yolov3 at 512 bits."""
    return cache_sweep("yolov3", 512, "fig07", 7)
