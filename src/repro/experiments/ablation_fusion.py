"""Ablation — fusing the conv layer's element-wise tail.

Darknet runs ``fill_cpu``, normalize/scale/bias and ``activate_array`` as
separate passes over the output tensor; production kernels fold them into
the convolution's output store.  This study prices both tails on top of the
best algorithm per layer: fusion saves a fixed number of output-tensor round
trips, so it matters most where the convolution itself is cheap relative to
its output (1x1 reductions, early high-resolution layers).
"""

from __future__ import annotations

from repro.algorithms.registry import best_algorithm
from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.nn.aux_kernels import aux_phases
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table


def run(model: str = "yolov3", vlen_bits: int = 512, l2_mib: float = 1.0
        ) -> ExperimentResult:
    hw = HardwareConfig.paper2_rvv(vlen_bits, l2_mib)
    engine = AnalyticalTimingModel(hw)
    specs = workload(model)
    table = Table(
        ["layer", "conv (x1e6)", "unfused tail (x1e6)", "fused tail (x1e6)",
         "layer speedup from fusion"],
        title=f"Epilogue-fusion ablation: {model} @ {hw.label()}, "
              "best algorithm per layer",
    )
    speedups: dict[int, float] = {}
    for spec in specs:
        name, cycles = best_algorithm(spec, hw)
        conv = cycles[name]
        unfused = sum(
            engine.phase_cycles(p).cycles for p in aux_phases(spec, hw)
        )
        fused = sum(
            engine.phase_cycles(p).cycles
            for p in aux_phases(spec, hw, fused=True)
        )
        speedups[spec.index] = (conv + unfused) / (conv + fused)
        table.add_row(
            [spec.index, conv / 1e6, unfused / 1e6, fused / 1e6,
             speedups[spec.index]]
        )
    return ExperimentResult(
        experiment="ablation-fusion",
        description="Folding fill/batch-norm/activation into the conv store",
        table=table,
        data={"speedups": speedups},
    )
