"""Figs. 9-10 — network time: single algorithm vs Optimal vs Predicted.

For every point of the 16-config grid, the total conv time of the network
when one algorithm serves all layers (Winograd* falls back to im2col+GEMM
where inapplicable), when the cycle-optimal algorithm is chosen per layer,
and when the trained random forest predicts the per-layer algorithm.
"""

from __future__ import annotations

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.experiments.configs import FREQ_GHZ, grid, workload
from repro.experiments.report import ExperimentResult
from repro.selection import AlgorithmSelector, build_dataset
from repro.serving.throughput import network_cycles
from repro.utils.ascii_chart import bar_chart
from repro.utils.tables import Table

POLICIES: tuple[str, ...] = ALGORITHM_NAMES + ("optimal", "predicted")


def selection_figure(
    model: str, experiment: str, fig_no: int, selector: AlgorithmSelector | None = None
) -> ExperimentResult:
    """Network execution time per policy across the 16-config grid."""
    specs = workload(model)
    if selector is None:
        selector = AlgorithmSelector()
        selector.train(build_dataset())
    labels = {n: get_algorithm(n).label for n in ALGORITHM_NAMES}
    labels["winograd"] = "Winograd*"  # the network policy falls back
    labels["optimal"] = "Optimal"
    labels["predicted"] = "Predicted Optimal"

    seconds: dict[str, list[float]] = {p: [] for p in POLICIES}
    configs = grid()
    for hw in configs:
        for policy in POLICIES:
            t = network_cycles(specs, hw, policy=policy, selector=selector)
            seconds[policy].append(t.total_cycles / (FREQ_GHZ * 1e9))

    table = Table(
        ["config"] + [labels[p] for p in POLICIES],
        title=f"Fig. {fig_no}: {model} network time (s) per policy",
    )
    for i, hw in enumerate(configs):
        table.add_row([hw.label()] + [seconds[p][i] for p in POLICIES])

    chart = bar_chart(
        {labels[p]: seconds[p] for p in POLICIES},
        categories=[hw.label() for hw in configs],
        title="network time (s) per policy, shared scale:",
        width=36,
    )

    # headline ratios: best single-algorithm improvement of Optimal
    ratios = {
        p: max(s / o for s, o in zip(seconds[p], seconds["optimal"]))
        for p in ALGORITHM_NAMES
    }
    pred_err = max(
        p / o - 1.0 for p, o in zip(seconds["predicted"], seconds["optimal"])
    )
    return ExperimentResult(
        experiment=experiment,
        description=f"Single-algorithm vs Optimal vs Predicted, {model}",
        table=table,
        chart=chart,
        data={
            "seconds": seconds,
            "configs": [hw.label() for hw in configs],
            "max_speedup_vs_single": ratios,
            "max_predicted_error": pred_err,
        },
    )
