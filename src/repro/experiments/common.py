"""Shared computation helpers for the figure harnesses."""

from __future__ import annotations

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm, layer_cycles
from repro.experiments.configs import FREQ_GHZ
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table


def per_layer_seconds(
    specs: list[ConvSpec],
    hw: HardwareConfig,
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
    skip_inapplicable: bool = True,
) -> dict[str, list[float | None]]:
    """Execution time (s) of each algorithm on each layer.

    Inapplicable (algorithm, layer) pairs are ``None`` — the papers' figures
    omit those bars (e.g. Winograd on 1x1 or stride-2 layers).
    """
    out: dict[str, list[float | None]] = {name: [] for name in algorithms}
    for spec in specs:
        for name in algorithms:
            algo = get_algorithm(name)
            if skip_inapplicable and not algo.applicable(spec):
                out[name].append(None)
                continue
            cycles = layer_cycles(name, spec, hw, fallback=not skip_inapplicable)
            out[name].append(cycles.cycles / (FREQ_GHZ * 1e9))
    return out


def comparison_table(
    title: str, specs: list[ConvSpec], data: dict[str, list[float | None]]
) -> Table:
    """Per-layer seconds table, one column per algorithm (figure bars)."""
    headers = ["layer"] + [get_algorithm(n).label for n in data]
    table = Table(headers, title=title)
    for i, spec in enumerate(specs):
        row: list = [spec.index]
        for name in data:
            v = data[name][i]
            row.append("n/a" if v is None else v)
        table.add_row(row)
    return table


def sweep_seconds(
    specs: list[ConvSpec],
    configs: list[HardwareConfig],
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
) -> dict[tuple[str, str], list[float | None]]:
    """(algorithm, config-label) -> per-layer seconds across a config sweep."""
    out: dict[tuple[str, str], list[float | None]] = {}
    for hw in configs:
        data = per_layer_seconds(specs, hw, algorithms)
        for name in algorithms:
            out[(name, hw.label())] = data[name]
    return out
