"""Shared computation helpers for the figure harnesses.

Both helpers route every cell through :mod:`repro.engine`'s shared memoized
engine, so the ~15 harnesses that re-ask about the same 448-point grid pay
for each (layer, algorithm, config) cell once per process — records are
bit-identical to direct :func:`repro.algorithms.registry.layer_cycles`
calls (locked by ``tests/test_engine.py``).
"""

from __future__ import annotations

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine import EvalTask, EvaluationEngine, default_engine
from repro.experiments.configs import FREQ_GHZ
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table


def per_layer_seconds(
    specs: list[ConvSpec],
    hw: HardwareConfig,
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
    skip_inapplicable: bool = True,
    engine: EvaluationEngine | None = None,
) -> dict[str, list[float | None]]:
    """Execution time (s) of each algorithm on each layer.

    Inapplicable (algorithm, layer) pairs are ``None`` — the papers' figures
    omit those bars (e.g. Winograd on 1x1 or stride-2 layers).
    """
    engine = engine if engine is not None else default_engine()
    # one registry lookup per algorithm per call, hoisted out of the loops
    algos = {name: get_algorithm(name) for name in algorithms}
    tasks: list[EvalTask] = []
    slots: list[tuple[str, int]] = []  # (algorithm, layer position) per task
    out: dict[str, list[float | None]] = {name: [] for name in algorithms}
    for i, spec in enumerate(specs):
        for name in algorithms:
            if skip_inapplicable and not algos[name].applicable(spec):
                out[name].append(None)
                continue
            out[name].append(0.0)  # placeholder, filled from the batch below
            tasks.append(
                EvalTask(name, spec, hw, fallback=not skip_inapplicable)
            )
            slots.append((name, i))
    records = engine.evaluate_many(tasks)
    for (name, i), record in zip(slots, records):
        out[name][i] = record.cycles / (FREQ_GHZ * 1e9)
    return out


def comparison_table(
    title: str, specs: list[ConvSpec], data: dict[str, list[float | None]]
) -> Table:
    """Per-layer seconds table, one column per algorithm (figure bars)."""
    headers = ["layer"] + [get_algorithm(n).label for n in data]
    table = Table(headers, title=title)
    for i, spec in enumerate(specs):
        row: list = [spec.index]
        for name in data:
            v = data[name][i]
            row.append("n/a" if v is None else v)
        table.add_row(row)
    return table


def sweep_seconds(
    specs: list[ConvSpec],
    configs: list[HardwareConfig],
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
    engine: EvaluationEngine | None = None,
) -> dict[tuple[str, str], list[float | None]]:
    """(algorithm, config-label) -> per-layer seconds across a config sweep."""
    engine = engine if engine is not None else default_engine()
    out: dict[tuple[str, str], list[float | None]] = {}
    for hw in configs:
        data = per_layer_seconds(specs, hw, algorithms, engine=engine)
        for name in algorithms:
            out[(name, hw.label())] = data[name]
    return out
