"""Ablation — the FFT exclusion (Paper II §1, citing Zlateski et al.).

The paper excludes FFT convolution because "large kernel sizes are not
common in modern CNNs".  This ablation makes the claim reproducible: sweep
the kernel size on a representative mid-network layer and locate the
FFT-vs-spatial crossover.  For the 1x1/3x3/5x5 kernels CNNs actually use,
FFT loses by an order of magnitude (its transformed-weight footprint and
full-frame transforms dwarf the work); it only wins past ~9-11-tap kernels.
"""

from __future__ import annotations

from repro.algorithms.registry import get_algorithm, layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

KERNEL_SIZES: tuple[int, ...] = (1, 3, 5, 7, 9, 11, 13)
CONTENDERS: tuple[str, ...] = ("fft", "winograd", "im2col_gemm3", "direct")


def run(
    ic: int = 64, oc: int = 64, ihw: int = 56,
    hw: HardwareConfig | None = None,
) -> ExperimentResult:
    hw = hw or HardwareConfig.paper2_rvv(512, 1.0)
    table = Table(
        ["kernel"] + [get_algorithm(n).label for n in CONTENDERS] + ["winner"],
        title=f"FFT exclusion ablation: {ic}->{oc} ch @ {ihw}x{ihw}, {hw.label()}"
              " (cycles x1e6)",
    )
    cycles: dict[tuple[int, str], float | None] = {}
    winners: dict[int, str] = {}
    for k in KERNEL_SIZES:
        spec = ConvSpec(ic=ic, oc=oc, ih=ihw, iw=ihw, kh=k, kw=k)
        row: list = [k]
        best_name, best = None, float("inf")
        for name in CONTENDERS:
            algo = get_algorithm(name)
            if not algo.applicable(spec):
                cycles[(k, name)] = None
                row.append("n/a")
                continue
            c = layer_cycles(name, spec, hw, fallback=False).cycles
            cycles[(k, name)] = c
            row.append(c / 1e6)
            if c < best:
                best_name, best = name, c
        winners[k] = best_name
        row.append(best_name)
        table.add_row(row)
    crossover = next(
        (k for k in KERNEL_SIZES if winners[k] == "fft"), None
    )
    return ExperimentResult(
        experiment="ablation-fft",
        description="Kernel-size crossover justifying the FFT exclusion",
        table=table,
        data={"cycles": cycles, "winners": winners, "fft_crossover": crossover},
    )
