"""Extension — the complete Winograd tile trade-off (accuracy x performance).

Combines the accuracy study with parametric F(m,3) performance: per tile
size, the fp32 error (from `ablation_winograd_tiles`) next to the cycle
count on representative layers across vector lengths.  F(6,3) should win
or tie on performance *and* be the largest tile inside the accuracy budget
— the complete justification of the paper's fixed 8x8 tile.
"""

from __future__ import annotations

from repro.experiments.ablation_winograd_tiles import (
    ERROR_BUDGET,
    single_pass_error,
)
from repro.experiments.report import ExperimentResult
from repro.extensions.winograd_variants import SUPPORTED_M, WinogradFm3
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

LAYERS: tuple[ConvSpec, ...] = (
    ConvSpec(ic=64, oc=64, ih=224, iw=224, kh=3, kw=3, index=1),  # VGG L2
    ConvSpec(ic=128, oc=128, ih=112, iw=112, kh=3, kw=3, index=2),  # VGG L4
    ConvSpec(ic=64, oc=128, ih=152, iw=152, kh=3, kw=3, index=3),  # YOLO L7
)
VECTOR_LENGTHS: tuple[int, ...] = (512, 2048)


def run() -> ExperimentResult:
    table = Table(
        ["F(m,3)", "fp32 err", "in budget"]
        + [f"L{s.index}@{vl}b (x1e6)" for s in LAYERS for vl in VECTOR_LENGTHS],
        title="Winograd tile trade-off: accuracy and cycles per tile size",
    )
    cycles: dict[tuple[int, int, int], float] = {}
    errors: dict[int, float] = {}
    for m in SUPPORTED_M:
        algo = WinogradFm3(m)
        errors[m] = single_pass_error(m)
        row: list = [f"F({m},3)", errors[m],
                     "yes" if errors[m] <= ERROR_BUDGET else "NO"]
        for spec in LAYERS:
            for vl in VECTOR_LENGTHS:
                hw = HardwareConfig.paper2_rvv(vl, 1.0)
                c = AnalyticalTimingModel(hw).evaluate(
                    algo.name, algo.schedule(spec, hw)
                ).cycles
                cycles[(m, spec.index, vl)] = c
                row.append(c / 1e6)
        table.add_row(row)
    # which m wins per (layer, vl)?
    winners = {
        (spec.index, vl): min(
            SUPPORTED_M, key=lambda m: cycles[(m, spec.index, vl)]
        )
        for spec in LAYERS
        for vl in VECTOR_LENGTHS
    }
    return ExperimentResult(
        experiment="extension-tile-tradeoff",
        description="F(m,3) performance vs accuracy per tile size",
        table=table,
        data={"cycles": cycles, "errors": errors, "winners": winners},
    )
