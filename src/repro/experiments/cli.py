"""Command-line entry point: ``repro-experiments [names...]``.

Runs the requested experiment harnesses (default: all Paper II artifacts)
and prints their tables — the textual equivalent of regenerating every
figure/table in the paper's evaluation.

``repro-experiments campaign`` runs the full raw-record grid with a
crash-safe checkpoint journal; ``--resume`` continues a killed run.
Failures surface as one-line messages with distinct exit codes (see
``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path

from repro.errors import (
    CampaignAbortedError,
    ConfigError,
    EngineError,
    ExperimentError,
    FaultSpecError,
    ReproError,
)
from repro.simulator.analytical.grid import GRID_BACKEND_CHOICES
from repro.simulator.replay_backend import BACKEND_CHOICES

#: ReproError subclass -> process exit code (first match wins; order from
#: most to least specific so subclasses beat their bases).
ERROR_EXIT_CODES: tuple[tuple[type[ReproError], int], ...] = (
    (CampaignAbortedError, 20),
    (FaultSpecError, 6),
    (EngineError, 5),
    (ExperimentError, 4),
    (ConfigError, 3),
    (ReproError, 10),
)

#: Experiment name -> harness module (each exposes ``run()``).
EXPERIMENTS: dict[str, str] = {
    "table1": "repro.experiments.table1_layers",
    "fig01": "repro.experiments.fig01_vgg_baseline",
    "fig02": "repro.experiments.fig02_yolo_baseline",
    "fig03": "repro.experiments.fig03_vgg_vl_sweep",
    "fig04": "repro.experiments.fig04_yolo_vl_sweep",
    "fig05": "repro.experiments.fig05_vgg_cache_sweep",
    "fig06": "repro.experiments.fig06_vgg_cache_sweep_4096",
    "fig07": "repro.experiments.fig07_yolo_cache_sweep",
    "fig08": "repro.experiments.fig08_yolo_cache_sweep_4096",
    "selection": "repro.experiments.selection_study",
    "selection-features": "repro.experiments.selection_features",
    "fig09": "repro.experiments.fig09_vgg_selection",
    "fig10": "repro.experiments.fig10_yolo_selection",
    "fig11": "repro.experiments.fig11_pareto",
    "fig12": "repro.experiments.fig12_colocation",
    "paper1-table2": "repro.experiments.paper1.table2_blocksize",
    "paper1-vl": "repro.experiments.paper1.vl_sweep",
    "paper1-cache": "repro.experiments.paper1.cache_sweep",
    "paper1-lanes": "repro.experiments.paper1.lanes",
    "paper1-winograd": "repro.experiments.paper1.winograd_sweep",
    "paper1-winograd-a64fx": "repro.experiments.paper1.winograd_a64fx",
    "paper1-pareto": "repro.experiments.paper1.pareto",
    "paper1-table3": "repro.experiments.paper1.table3_missrates",
    "paper1-roofline": "repro.experiments.paper1.roofline_table4",
    "paper1-speedups": "repro.experiments.paper1.speedups",
    "paper1-archcompare": "repro.experiments.paper1.arch_compare",
    "ablation-fft": "repro.experiments.ablation_fft",
    "ablation-model": "repro.experiments.ablation_model",
    "ablation-contention": "repro.experiments.ablation_contention",
    "ablation-winograd-tiles": "repro.experiments.ablation_winograd_tiles",
    "ablation-fusion": "repro.experiments.ablation_fusion",
    "ablation-blocks": "repro.experiments.ablation_blocks",
    "schedule-search": "repro.experiments.schedule_search",
    "serving-latency": "repro.experiments.serving_latency",
    "serving-mixed": "repro.experiments.serving_mixed",
    "extension-vit": "repro.experiments.extension_vit",
    "extension-depthwise": "repro.experiments.extension_depthwise",
    "extension-energy": "repro.experiments.extension_energy",
    "extension-l1": "repro.experiments.extension_l1",
    "extension-tile-tradeoff": "repro.experiments.extension_tile_tradeoff",
    "extension-lmul": "repro.experiments.extension_lmul",
    "layer-report": "repro.experiments.layer_report",
    "trace-report": "repro.experiments.trace_report",
    "profile-breakdown": "repro.experiments.profile_breakdown",
    "verdict": "repro.experiments.verdict",
}


def run_experiment(name: str):
    """Import and run one experiment harness by name."""
    module = importlib.import_module(EXPERIMENTS[name])
    return module.run()


def _run_campaign_command(args, out_dir: Path | None) -> None:
    """``repro-experiments campaign``: the full grid, checkpoint-journaled."""
    from repro.experiments.campaign import paper2_campaign

    journal = Path(args.journal) if args.journal else Path("results/campaign.jsonl")
    start = time.time()
    campaign = paper2_campaign(
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
        journal=journal,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
    )
    errors = sum(1 for r in campaign.records if r["bound"] == "error")
    applicable = sum(1 for r in campaign.records if r["applicable"])
    print(f"campaign {campaign.name}: {len(campaign)} records "
          f"({applicable} applicable, {errors} errored), "
          f"journal {journal}")
    target = out_dir if out_dir is not None else Path("results")
    json_path = campaign.save(target / f"{campaign.name}_campaign.json")
    csv_path = campaign.write_csv(target / f"{campaign.name}_campaign.csv")
    print(f"saved {json_path} and {csv_path}")
    print(f"[campaign completed in {time.time() - start:.1f}s]\n")


def main(argv: list[str] | None = None) -> int:
    """Parse args and dispatch; maps :class:`ReproError` to exit codes."""
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        line = str(exc).splitlines()[0] if str(exc) else "(no detail)"
        print(f"error [{type(exc).__name__}]: {line}", file=sys.stderr)
        for cls, code in ERROR_EXIT_CODES:
            if isinstance(exc, cls):
                return code
        return 10  # pragma: no cover - ReproError entry is the catch-all


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures (as text).",
    )
    parser.add_argument(
        "names",
        nargs="*",
        default=[],
        help=f"experiments to run (default: all Paper II). Known: "
             f"{', '.join(EXPERIMENTS)}",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead")
    parser.add_argument(
        "--out", metavar="DIR", default=None,
        help="also write each experiment's table as DIR/<name>.csv",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for grid evaluation (1 = serial, default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the shared memo cache (recompute every grid cell)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="attach the on-disk cache tier at DIR (persists across runs)",
    )
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="checkpoint journal for the campaign command "
             "(default results/campaign.jsonl)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the campaign from its checkpoint journal, recomputing "
             "only unfinished cells",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="journal flush batch size for the campaign command (default 64)",
    )
    parser.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="S",
        help="seconds before a parallel work chunk is declared hung and "
             "retried (default: no timeout)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retry rounds for failed/hung parallel chunks before serial "
             "rescue (default 2)",
    )
    parser.add_argument(
        "--trace-timing", metavar="MODEL:LAYER", default=None,
        help="also run the trace-driven timing report (full-trace batched "
             "replay) for the given layer, e.g. vgg16:1",
    )
    parser.add_argument(
        "--replay-backend", choices=list(BACKEND_CHOICES), default=None,
        metavar="NAME",
        help="hot-loop backend for trace replay (auto/compiled/numpy; "
             "'compiled' needs the [compiled] extra, results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--replay-workers", type=int, default=None, metavar="N",
        help="shard trace replay across N processes by cache set index "
             "(1 = in-process, default)",
    )
    parser.add_argument(
        "--grid-backend", choices=list(GRID_BACKEND_CHOICES), default=None,
        metavar="NAME",
        help="backend for tensorized analytical-grid evaluation "
             "(auto/compiled/numpy; 'compiled' needs the [compiled] extra, "
             "results are bit-identical either way)",
    )
    parser.add_argument(
        "--profile", nargs="?", const="trace.json", default=None,
        metavar="PATH",
        help="collect spans/counters while running, print the span table, "
             "and write a Chrome trace_event file to PATH (default "
             "trace.json; open in https://ui.perfetto.dev). Use the "
             "--profile=PATH form when experiment names follow the flag.",
    )
    args = parser.parse_args(argv)

    if args.list:
        print("campaign")
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.replay_workers is not None and args.replay_workers < 1:
        print("--replay-workers must be >= 1", file=sys.stderr)
        return 2
    from repro import faults, obs
    from repro.engine import configure_default
    from repro.simulator import timing as trace_timing_mod
    from repro.simulator.analytical import grid as analytical_grid_mod

    if args.replay_backend is not None or args.replay_workers is not None:
        # validates eagerly: --replay-backend compiled without Numba is a
        # ConfigError-style exit, not a mid-experiment surprise
        trace_timing_mod.configure_replay(
            backend=args.replay_backend, workers=args.replay_workers
        )
    if args.grid_backend is not None:
        # same eager contract for the analytical-grid fast path
        analytical_grid_mod.configure_grid(backend=args.grid_backend)

    faults.active_plan()  # fail fast (exit 6) on a malformed REPRO_FAULTS
    configure_default(
        max_workers=args.workers,
        use_cache=not args.no_cache,
        disk_dir=args.cache_dir,
        chunk_timeout_s=args.chunk_timeout,
        max_retries=args.max_retries,
    )
    if args.profile is not None:
        obs.enable()

    names = args.names or [
        n for n in EXPERIMENTS
        if not n.startswith(
            ("paper1", "ablation", "serving", "extension", "layer",
             "verdict", "profile", "trace")
        )
    ]
    run_campaign_cmd = "campaign" in names
    names = [n for n in names if n != "campaign"]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    if run_campaign_cmd:
        _run_campaign_command(args, out_dir)
    for name in names:
        start = time.time()
        with obs.span(f"experiment.{name}", cat="experiment"):
            result = run_experiment(name)
        if args.csv:
            print(result.table.to_csv())
        else:
            print(result.render())
        if out_dir:
            (out_dir / f"{name}.csv").write_text(result.table.to_csv())
        print(f"[{name} completed in {time.time() - start:.1f}s]\n")
    if args.trace_timing:
        from repro.experiments import trace_report

        start = time.time()
        with obs.span("experiment.trace-report", cat="experiment"):
            result = trace_report.run(args.trace_timing)
        if args.csv:
            print(result.table.to_csv())
        else:
            print(result.render())
        if out_dir:
            (out_dir / "trace-report.csv").write_text(result.table.to_csv())
        print(f"[trace-report completed in {time.time() - start:.1f}s]\n")
    if args.profile is not None:
        recorder = obs.get_recorder()
        if isinstance(recorder, obs.Recorder):
            print(obs.render_table(recorder))
            obs.write_chrome_trace(recorder, args.profile)
            print(f"\n[chrome trace written to {args.profile} — open in "
                  f"https://ui.perfetto.dev]")
        obs.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
