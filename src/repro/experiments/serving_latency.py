"""Serving-latency study: algorithm selection under load.

Operationalizes Fig. 12's finding: on the same 16-core chip serving VGG-16
replicas, per-layer algorithm selection lowers the per-image service time,
which translates into lower tail latency at equal offered load and a higher
saturation throughput.  Offered load is swept as a fraction of the *single-
algorithm* policy's capacity so both policies face identical request
streams.
"""

from __future__ import annotations

from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.serving.colocation import ColocationScenario, evaluate_colocation
from repro.serving.simulator import ServingSimulator
from repro.utils.tables import Table

LOAD_FRACTIONS: tuple[float, ...] = (0.3, 0.6, 0.8, 0.95)


def run(
    model: str = "vgg16", cores: int = 16, vlen_bits: int = 2048,
    shared_l2_mib: float = 16.0, n_requests: int = 2000, seed: int = 7,
) -> ExperimentResult:
    specs = workload(model)
    policies = ("im2col_gemm6", "optimal")
    sims: dict[str, ServingSimulator] = {}
    for policy in policies:
        scenario = ColocationScenario(
            cores=cores, vlen_bits=vlen_bits, shared_l2_mib=shared_l2_mib,
            instances=cores, policy=policy,
        )
        result = evaluate_colocation(scenario, specs)
        sims[policy] = ServingSimulator.from_colocation(result, seed=seed)

    # both policies face the same absolute request rates, anchored to the
    # single-algorithm policy's capacity
    base_capacity = sims["im2col_gemm6"].capacity_rps
    table = Table(
        ["offered load (of GEMM-6 capacity)", "policy", "throughput rps",
         "mean latency (ms)", "p99 latency (ms)", "utilization"],
        title=f"Serving latency under load: {model}, {cores} cores @ "
              f"{vlen_bits}b, {shared_l2_mib:g}MB shared L2",
    )
    data: dict[tuple[float, str], dict] = {}
    for frac in LOAD_FRACTIONS:
        rate = frac * base_capacity
        for policy in policies:
            stats = sims[policy].run(rate, n_requests)
            data[(frac, policy)] = {
                "throughput": stats.throughput_rps,
                "mean_ms": stats.mean_latency * 1e3,
                "p99_ms": stats.p99 * 1e3,
                "utilization": stats.utilization,
            }
            table.add_row(
                [f"{frac:.0%}", policy, stats.throughput_rps,
                 stats.mean_latency * 1e3, stats.p99 * 1e3,
                 f"{stats.utilization:.0%}"]
            )
    capacity_gain = sims["optimal"].capacity_rps / base_capacity
    return ExperimentResult(
        experiment="serving-latency",
        description="Tail latency and capacity with vs without selection",
        table=table,
        data={"points": data, "capacity_gain": capacity_gain,
              "capacity_rps": {p: sims[p].capacity_rps for p in policies}},
    )
