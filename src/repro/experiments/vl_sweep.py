"""Figs. 3-4 — vector-length sweeps (512-4096 bits at 1 MB L2).

Shared implementation; :mod:`fig03_vgg_vl_sweep` and
:mod:`fig04_yolo_vl_sweep` bind the model.
"""

from __future__ import annotations

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.experiments.common import per_layer_seconds
from repro.experiments.configs import VECTOR_LENGTHS, workload
from repro.experiments.report import ExperimentResult
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.ascii_chart import bar_chart
from repro.utils.tables import Table


def vl_sweep(model: str, experiment: str, fig_no: int) -> ExperimentResult:
    """Per-layer execution time for every (algorithm, vector length)."""
    specs = workload(model)
    seconds: dict[tuple[str, int], list[float | None]] = {}
    for vl in VECTOR_LENGTHS:
        hw = HardwareConfig.paper2_rvv(vl, 1.0)
        data = per_layer_seconds(specs, hw)  # engine-memoized
        for name in ALGORITHM_NAMES:
            seconds[(name, vl)] = data[name]

    # scalability = t(512) / t(vl_max) per layer — the paper's headline
    scalability: dict[str, list[float | None]] = {}
    vmax = VECTOR_LENGTHS[-1]
    for name in ALGORITHM_NAMES:
        base, top = seconds[(name, VECTOR_LENGTHS[0])], seconds[(name, vmax)]
        scalability[name] = [
            None if b is None else b / t for b, t in zip(base, top)
        ]

    table = Table(
        ["layer"]
        + [f"{get_algorithm(n).label}@{vl}b" for n in ALGORITHM_NAMES
           for vl in VECTOR_LENGTHS],
        title=f"Fig. {fig_no}: {model} per-layer time (s), VL sweep @ 1MB L2",
    )
    for i, spec in enumerate(specs):
        row: list = [spec.index]
        for name in ALGORITHM_NAMES:
            for vl in VECTOR_LENGTHS:
                v = seconds[(name, vl)][i]
                row.append("n/a" if v is None else v)
        table.add_row(row)
    chart = bar_chart(
        {get_algorithm(n).label: scalability[n] for n in ALGORITHM_NAMES},
        categories=[f"L{s.index}" for s in specs],
        title=f"speedup {VECTOR_LENGTHS[0]}b -> {vmax}b per layer:",
        value_format="{:.2f}x",
    )
    return ExperimentResult(
        experiment=experiment,
        description=f"Vector-length sweep 512-4096b @ 1MB, {model}",
        table=table,
        chart=chart,
        data={"seconds": seconds, "scalability": scalability},
    )
