"""Ablation — which modeled mechanisms carry the paper's conclusions.

DESIGN.md §4 attributes the reproduced shapes to specific mechanisms.  This
study switches each off and re-checks three representative anchors:

* **scalar-load latency exposure** (GEMM's A operands, Direct's broadcasts)
  → without it, GEMM-3's thrashing A panel is free and GEMM-6 loses its
  deep-layer wins (Fig. 1's L5-L13 pattern collapses);
* **producer-consumer residency** (layer inputs, im2col output, Winograd
  U/V/M) → without it, large caches stop helping multi-phase algorithms and
  the "all YOLOv3 layers benefit from 64 MB" observation disappears;
* **decoupled dispatch deadtime** → without it, Paper I's vector-length
  scaling on the decoupled RVV flattens to ~1x.
"""

from __future__ import annotations

from dataclasses import replace

from repro.algorithms.registry import layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.models import yolov3_conv_specs
from repro.simulator.analytical.calibration import DEFAULT_CALIBRATION
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

VARIANTS = {
    "full model": DEFAULT_CALIBRATION,
    "no scalar exposure": replace(DEFAULT_CALIBRATION, enable_scalar_exposure=False),
    "no producer residency": replace(
        DEFAULT_CALIBRATION, enable_resident_source=False
    ),
    "no decoupled deadtime": replace(DEFAULT_CALIBRATION, decoupled_deadtime=0.0),
}


def _metrics(cal) -> dict[str, float | bool]:
    base = HardwareConfig.paper2_rvv(512, 1.0)

    def cycles(name, spec, hw):
        return layer_cycles(name, spec, hw, fallback=False, calibration=cal).cycles

    # anchor 1: GEMM-6 beats GEMM-3 on the skinny 3x3 YOLOv3 layer #10
    # (the win the paper credits to blocking/packing vs the thrashing A
    # panel of the 3-loop kernel)
    yolo10 = yolov3_conv_specs()[9]
    gemm6_wins_skinny = cycles("im2col_gemm6", yolo10, base) < cycles(
        "im2col_gemm3", yolo10, base
    )
    # anchor 2: YOLOv3 layers benefit from a 64 MB cache (count improving >2%)
    big = HardwareConfig.paper2_rvv(512, 64.0)
    improved = 0
    for s in yolov3_conv_specs():
        name = min(
            ("direct", "im2col_gemm3", "im2col_gemm6"),
            key=lambda n: cycles(n, s, base),
        )
        if cycles(name, s, base) / cycles(name, s, big) > 1.02:
            improved += 1
    # anchor 3: Paper I decoupled VL scaling 512 -> 8192 bits
    def p1_total(vl):
        hw = HardwareConfig.paper1_riscvv(vl, 1.0)
        return sum(
            layer_cycles("im2col_gemm3", s, hw, calibration=cal).cycles
            for s in yolov3_conv_specs()
        )

    vl_scaling = p1_total(512) / p1_total(8192)
    return {
        "gemm6_wins_skinny": gemm6_wins_skinny,
        "yolo_layers_gaining_64mb": improved,
        "paper1_vl_scaling": vl_scaling,
    }


def run() -> ExperimentResult:
    table = Table(
        ["variant", "GEMM-6 wins YOLO L10", "YOLO layers gaining @64MB",
         "Paper I VL scaling 512->8192"],
        title="Model-mechanism ablation (anchors from Figs. 1/7 and Paper I "
              "Fig. 6)",
    )
    results: dict[str, dict] = {}
    for label, cal in VARIANTS.items():
        m = _metrics(cal)
        results[label] = m
        table.add_row(
            [label, "yes" if m["gemm6_wins_skinny"] else "NO",
             m["yolo_layers_gaining_64mb"], m["paper1_vl_scaling"]]
        )
    return ExperimentResult(
        experiment="ablation-model",
        description="Mechanism ablation of the analytical performance model",
        table=table,
        data=results,
    )
