"""Extension — attention on long vectors (the thesis's future-work study).

Two claims from the thesis's conclusion, quantified on our substrates:

1. attention's skinny per-head matmuls (head_dim = 64) under-utilize very
   long vectors — its 512->4096-bit scaling trails a CNN conv layer's;
2. fusing the score/softmax/context chain (data reuse, citing Fu et al.)
   removes the H x S x S intermediate traffic and improves attention time.
"""

from __future__ import annotations

from repro.algorithms.registry import layer_cycles
from repro.experiments.report import ExperimentResult
from repro.extensions.attention import AttentionSpec, attention_phases
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096, 8192, 16384)
#: A CNN reference layer with a comparable MAC count (VGG-16 L11-class).
CNN_REFERENCE = ConvSpec(ic=256, oc=256, ih=28, iw=28, kh=3, kw=3)


def attention_cycles(
    spec: AttentionSpec, hw: HardwareConfig, fused: bool
) -> float:
    model = AnalyticalTimingModel(hw)
    return model.evaluate(
        "attention", attention_phases(spec, hw, fused=fused)
    ).cycles


def lane_utilization(phases, hw: HardwareConfig) -> float:
    """Op-weighted fraction of the vector datapath kept busy."""
    vle = hw.vlmax_f32
    weighted = total = 0.0
    for p in phases:
        ops = p.vector_ops + p.vmem_ops
        active = p.vector_active or p.vmem_active
        weighted += ops * min(1.0, active / vle)
        total += ops
    return weighted / total if total else 0.0


def run(spec: AttentionSpec | None = None) -> ExperimentResult:
    spec = spec or AttentionSpec()
    table = Table(
        ["vector length", "attention (x1e6)", "attention fused (x1e6)",
         "fusion gain", "CNN conv (x1e6)", "attn lane util", "conv lane util"],
        title=f"ViT extension: attention (S={spec.seq_len}, D={spec.embed_dim},"
              f" H={spec.heads}) vs a CNN layer across vector lengths @ 1MB",
    )
    cycles: dict[tuple[int, str], float] = {}
    utilization: dict[tuple[int, str], float] = {}
    from repro.algorithms.registry import get_algorithm

    for vl in VECTOR_LENGTHS:
        hw = HardwareConfig.paper2_rvv(vl, 1.0)
        unfused = attention_cycles(spec, hw, fused=False)
        fused = attention_cycles(spec, hw, fused=True)
        conv = layer_cycles("im2col_gemm3", CNN_REFERENCE, hw).cycles
        cycles[(vl, "attention")] = unfused
        cycles[(vl, "fused")] = fused
        cycles[(vl, "conv")] = conv
        utilization[(vl, "attention")] = lane_utilization(
            attention_phases(spec, hw, fused=False), hw
        )
        utilization[(vl, "conv")] = lane_utilization(
            get_algorithm("im2col_gemm3").schedule(CNN_REFERENCE, hw), hw
        )
        table.add_row(
            [vl, unfused / 1e6, fused / 1e6, unfused / fused, conv / 1e6,
             f"{utilization[(vl, 'attention')]:.0%}",
             f"{utilization[(vl, 'conv')]:.0%}"]
        )
    vmax = VECTOR_LENGTHS[-1]
    scaling = {
        kind: cycles[(512, kind)] / cycles[(vmax, kind)]
        for kind in ("attention", "fused", "conv")
    }
    return ExperimentResult(
        experiment="extension-vit",
        description="Attention utilization + fusion on long vectors",
        table=table,
        data={"cycles": cycles, "vl_scaling": scaling,
              "utilization": utilization},
    )
