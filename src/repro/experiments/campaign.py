"""Simulation campaigns: grid evaluation with persistent artifacts.

The figure harnesses answer fixed questions; a *campaign* is the raw
material — every (workload, layer, algorithm, hardware config) cell of a
grid, evaluated once and saved, so new questions can be answered from the
records without re-simulation (what gem5 users do with stats files).

Records are plain dicts; persistence is JSON (self-describing) with a CSV
exporter for spreadsheet/plotting tools.

Long campaigns are crash-safe: pass ``journal=`` to stream every completed
record into an atomic JSONL :class:`~repro.engine.CheckpointJournal` under
``results/``, and ``resume=True`` to skip the cells a previous (killed)
run already journaled — only unfinished cells are recomputed
(``repro-experiments campaign --resume`` is the CLI form; see
``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro import faults
from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine import (
    CellError,
    CheckpointJournal,
    EvalTask,
    EvaluationEngine,
    default_engine,
    grid_fingerprint,
)
from repro.errors import CampaignAbortedError, ExperimentError
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig

#: The record schema, in column order.
FIELDS: tuple[str, ...] = (
    "workload", "layer", "algorithm", "vlen_bits", "l2_mib",
    "cycles", "dram_bytes", "bound", "applicable",
)


@dataclass
class Campaign:
    """An evaluated grid of simulation records."""

    name: str
    records: list[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def filter(self, **criteria) -> list[dict]:
        """Records matching all keyword criteria exactly."""
        unknown = set(criteria) - set(FIELDS)
        if unknown:
            raise ExperimentError(f"unknown campaign fields: {sorted(unknown)}")
        return [
            r for r in self.records
            if all(r[k] == v for k, v in criteria.items())
        ]

    def best_per_layer(self, workload: str, vlen_bits: int, l2_mib: float) -> dict:
        """layer -> winning algorithm name for one configuration."""
        rows = self.filter(
            workload=workload, vlen_bits=vlen_bits, l2_mib=l2_mib,
            applicable=True,
        )
        best: dict[int, dict] = {}
        for r in rows:
            cur = best.get(r["layer"])
            if cur is None or r["cycles"] < cur["cycles"]:
                best[r["layer"]] = r
        return {layer: r["algorithm"] for layer, r in sorted(best.items())}

    def total_cycles(self, workload: str, algorithm: str, vlen_bits: int,
                     l2_mib: float) -> float:
        rows = self.filter(
            workload=workload, algorithm=algorithm, vlen_bits=vlen_bits,
            l2_mib=l2_mib,
        )
        if not rows:
            raise ExperimentError(
                f"no records for {workload}/{algorithm}/{vlen_bits}b/{l2_mib}MB"
            )
        return sum(r["cycles"] for r in rows)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write the campaign as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"name": self.name, "fields": FIELDS, "records": self.records}
        path.write_text(json.dumps(payload, indent=1))
        return path

    @staticmethod
    def load(path: str | Path) -> "Campaign":
        payload = json.loads(Path(path).read_text())
        missing = set(FIELDS) - set(payload.get("fields", ()))
        if missing:
            raise ExperimentError(f"campaign file missing fields {sorted(missing)}")
        return Campaign(name=payload["name"], records=payload["records"])

    def to_csv(self) -> str:
        lines = [",".join(FIELDS)]
        for r in self.records:
            lines.append(",".join(str(r[f]) for f in FIELDS))
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_csv())
        return path


def _record_dict(
    wname: str, spec: ConvSpec, hw: HardwareConfig, algo_name: str, lc
) -> dict:
    """One campaign record (``lc`` is a LayerCycles, CellError or None)."""
    if isinstance(lc, CellError):
        # the cell was applicable but its evaluation failed: keep the
        # grid position with an explicit error marker instead of
        # poisoning the whole campaign
        return {
            "workload": wname,
            "layer": spec.index,
            "algorithm": algo_name,
            "vlen_bits": hw.vlen_bits,
            "l2_mib": hw.l2_mib,
            "cycles": float("inf"),
            "dram_bytes": 0.0,
            "bound": "error",
            "applicable": True,
        }
    return {
        "workload": wname,
        "layer": spec.index,
        "algorithm": algo_name,
        "vlen_bits": hw.vlen_bits,
        "l2_mib": hw.l2_mib,
        "cycles": lc.cycles if lc else float("inf"),
        "dram_bytes": lc.dram_bytes if lc else 0.0,
        "bound": lc.dominant_bound() if lc else "n/a",
        "applicable": lc is not None,
    }


def _identity_of(record: dict) -> tuple:
    """The grid-cell identity of a record (journal resume key)."""
    return (
        record["workload"], record["layer"], record["algorithm"],
        record["vlen_bits"], record["l2_mib"],
    )


def run_campaign(
    workloads: dict[str, list[ConvSpec]],
    configs: Iterable[HardwareConfig],
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
    name: str = "campaign",
    progress: Callable[[str], None] | None = None,
    engine: EvaluationEngine | None = None,
    max_workers: int | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    checkpoint_every: int = 64,
) -> Campaign:
    """Evaluate the full grid through the shared memoized engine.

    Applicable cells are fanned out over the engine's executor
    (``max_workers`` overrides the engine's default); record order is the
    deterministic nested loop order regardless of worker completion order.

    With ``journal`` set, completed records stream into an atomic JSONL
    checkpoint in batches of ``checkpoint_every`` cells; ``resume=True``
    loads the journal first and recomputes only the missing cells.  A
    failing cell becomes an explicit ``bound="error"`` record (per-cell
    isolation) rather than aborting the campaign.
    """
    if checkpoint_every < 1:
        raise ExperimentError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    engine = engine if engine is not None else default_engine()
    campaign = Campaign(name=name)
    configs = list(configs)
    algos = {n: get_algorithm(n) for n in algorithms}
    cells: list[tuple[str, ConvSpec, HardwareConfig, str]] = []
    for wname, specs in workloads.items():
        if progress:
            progress(f"{wname}: {len(specs)} layers x {len(configs)} configs")
        cells.extend(
            (wname, spec, hw, algo_name)
            for spec in specs
            for hw in configs
            for algo_name in algorithms
        )
    identities = [
        (wname, spec.index, algo_name, hw.vlen_bits, hw.l2_mib)
        for wname, spec, hw, algo_name in cells
    ]

    done: dict[tuple, dict] = {}
    journal_obj: CheckpointJournal | None = None
    if journal is not None:
        journal_obj = CheckpointJournal(
            journal, grid_fingerprint(identities), name
        )
        if resume:
            for record in journal_obj.load():
                done[_identity_of(record)] = record
            if progress and done:
                progress(
                    f"resumed {len(done)}/{len(cells)} records "
                    f"from {journal_obj.path}"
                )
        elif journal_obj.path.exists():
            journal_obj.path.unlink()  # fresh run: discard the old journal

    plan = faults.active_plan()
    pending = [i for i in range(len(cells)) if identities[i] not in done]
    # without a journal there is nothing to checkpoint: one big batch
    # keeps the parallel fan-out as wide as possible
    batch_size = checkpoint_every if journal_obj is not None else max(
        1, len(pending)
    )
    try:
        for lo in range(0, len(pending), batch_size):
            batch = pending[lo:lo + batch_size]
            tasks = {
                i: EvalTask(cells[i][3], cells[i][1], cells[i][2],
                            fallback=False)
                for i in batch
                if algos[cells[i][3]].applicable(cells[i][1])
            }
            records = engine.evaluate_many(
                list(tasks.values()), max_workers=max_workers,
                on_error="record",
            )
            by_cell = dict(zip(tasks.keys(), records))
            for i in batch:
                wname, spec, hw, algo_name = cells[i]
                rec = _record_dict(wname, spec, hw, algo_name, by_cell.get(i))
                done[identities[i]] = rec
                if journal_obj is not None:
                    journal_obj.append(rec)
                    if plan is not None and plan.aborts_campaign(
                        journal_obj.appended
                    ):
                        faults.mark_injected("campaign.abort")
                        raise CampaignAbortedError(
                            f"campaign killed after {journal_obj.appended} "
                            f"records (injected fault); re-run with --resume "
                            f"to continue from {journal_obj.path}"
                        )
    finally:
        if journal_obj is not None:
            journal_obj.close()
    campaign.records = [done[identity] for identity in identities]
    return campaign


def paper2_campaign(
    progress: Callable[[str], None] | None = None,
    engine: EvaluationEngine | None = None,
    max_workers: int | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    checkpoint_every: int = 64,
) -> Campaign:
    """The full Paper II grid: 28 layers x 16 configs x 4 algorithms."""
    from repro.experiments.configs import grid, workload

    return run_campaign(
        {"vgg16": workload("vgg16"), "yolov3": workload("yolov3")},
        grid(),
        name="paper2",
        progress=progress,
        engine=engine,
        max_workers=max_workers,
        journal=journal,
        resume=resume,
        checkpoint_every=checkpoint_every,
    )
