"""Simulation campaigns: grid evaluation with persistent artifacts.

The figure harnesses answer fixed questions; a *campaign* is the raw
material — every (workload, layer, algorithm, hardware config) cell of a
grid, evaluated once and saved, so new questions can be answered from the
records without re-simulation (what gem5 users do with stats files).

Records are plain dicts; persistence is JSON (self-describing) with a CSV
exporter for spreadsheet/plotting tools.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine import EvalTask, EvaluationEngine, default_engine
from repro.errors import ExperimentError
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig

#: The record schema, in column order.
FIELDS: tuple[str, ...] = (
    "workload", "layer", "algorithm", "vlen_bits", "l2_mib",
    "cycles", "dram_bytes", "bound", "applicable",
)


@dataclass
class Campaign:
    """An evaluated grid of simulation records."""

    name: str
    records: list[dict] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def filter(self, **criteria) -> list[dict]:
        """Records matching all keyword criteria exactly."""
        unknown = set(criteria) - set(FIELDS)
        if unknown:
            raise ExperimentError(f"unknown campaign fields: {sorted(unknown)}")
        return [
            r for r in self.records
            if all(r[k] == v for k, v in criteria.items())
        ]

    def best_per_layer(self, workload: str, vlen_bits: int, l2_mib: float) -> dict:
        """layer -> winning algorithm name for one configuration."""
        rows = self.filter(
            workload=workload, vlen_bits=vlen_bits, l2_mib=l2_mib,
            applicable=True,
        )
        best: dict[int, dict] = {}
        for r in rows:
            cur = best.get(r["layer"])
            if cur is None or r["cycles"] < cur["cycles"]:
                best[r["layer"]] = r
        return {layer: r["algorithm"] for layer, r in sorted(best.items())}

    def total_cycles(self, workload: str, algorithm: str, vlen_bits: int,
                     l2_mib: float) -> float:
        rows = self.filter(
            workload=workload, algorithm=algorithm, vlen_bits=vlen_bits,
            l2_mib=l2_mib,
        )
        if not rows:
            raise ExperimentError(
                f"no records for {workload}/{algorithm}/{vlen_bits}b/{l2_mib}MB"
            )
        return sum(r["cycles"] for r in rows)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write the campaign as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"name": self.name, "fields": FIELDS, "records": self.records}
        path.write_text(json.dumps(payload, indent=1))
        return path

    @staticmethod
    def load(path: str | Path) -> "Campaign":
        payload = json.loads(Path(path).read_text())
        missing = set(FIELDS) - set(payload.get("fields", ()))
        if missing:
            raise ExperimentError(f"campaign file missing fields {sorted(missing)}")
        return Campaign(name=payload["name"], records=payload["records"])

    def to_csv(self) -> str:
        lines = [",".join(FIELDS)]
        for r in self.records:
            lines.append(",".join(str(r[f]) for f in FIELDS))
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_csv())
        return path


def run_campaign(
    workloads: dict[str, list[ConvSpec]],
    configs: Iterable[HardwareConfig],
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
    name: str = "campaign",
    progress: Callable[[str], None] | None = None,
    engine: EvaluationEngine | None = None,
    max_workers: int | None = None,
) -> Campaign:
    """Evaluate the full grid through the shared memoized engine.

    Applicable cells are batched per workload and fanned out over the
    engine's executor (``max_workers`` overrides the engine's default);
    record order is the deterministic nested loop order regardless of
    worker completion order.
    """
    engine = engine if engine is not None else default_engine()
    campaign = Campaign(name=name)
    configs = list(configs)
    algos = {n: get_algorithm(n) for n in algorithms}
    for wname, specs in workloads.items():
        if progress:
            progress(f"{wname}: {len(specs)} layers x {len(configs)} configs")
        cells = [
            (spec, hw, algo_name)
            for spec in specs
            for hw in configs
            for algo_name in algorithms
        ]
        tasks = {
            i: EvalTask(algo_name, spec, hw, fallback=False)
            for i, (spec, hw, algo_name) in enumerate(cells)
            if algos[algo_name].applicable(spec)
        }
        records = engine.evaluate_many(
            list(tasks.values()), max_workers=max_workers
        )
        by_cell = dict(zip(tasks.keys(), records))
        for i, (spec, hw, algo_name) in enumerate(cells):
            lc = by_cell.get(i)
            campaign.records.append(
                {
                    "workload": wname,
                    "layer": spec.index,
                    "algorithm": algo_name,
                    "vlen_bits": hw.vlen_bits,
                    "l2_mib": hw.l2_mib,
                    "cycles": lc.cycles if lc else float("inf"),
                    "dram_bytes": lc.dram_bytes if lc else 0.0,
                    "bound": lc.dominant_bound() if lc else "n/a",
                    "applicable": lc is not None,
                }
            )
    return campaign


def paper2_campaign(
    progress: Callable[[str], None] | None = None,
    engine: EvaluationEngine | None = None,
    max_workers: int | None = None,
) -> Campaign:
    """The full Paper II grid: 28 layers x 16 configs x 4 algorithms."""
    from repro.experiments.configs import grid, workload

    return run_campaign(
        {"vgg16": workload("vgg16"), "yolov3": workload("yolov3")},
        grid(),
        name="paper2",
        progress=progress,
        engine=engine,
        max_workers=max_workers,
    )
