"""Paper II §4.3 — classifier comparison and the random-forest accuracy.

Trains every classifier family the paper evaluated on the 448-point dataset
with 5-fold shuffled cross-validation and reports per-fold accuracies — the
random forest should land in the low-to-mid 90s (paper: 92.8 % mean).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.selection import (
    AlgorithmSelector,
    GaussianNaiveBayes,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegressionClassifier,
    RandomForestClassifier,
    build_dataset,
    cross_val_scores,
)
from repro.selection.tree import DecisionTreeClassifier
from repro.utils.tables import Table


def classifier_zoo() -> dict[str, callable]:
    """Factories for the compared classifier families."""
    return {
        "random_forest": lambda: RandomForestClassifier(
            n_estimators=100, max_depth=10, random_state=0
        ),
        "decision_tree": lambda: DecisionTreeClassifier(max_depth=10, random_state=0),
        "knn": lambda: KNeighborsClassifier(n_neighbors=5),
        "naive_bayes": lambda: GaussianNaiveBayes(),
        "logistic": lambda: LogisticRegressionClassifier(epochs=300),
        "gradient_boosting": lambda: GradientBoostingClassifier(
            n_estimators=40, max_depth=3
        ),
    }


def run(dataset=None) -> ExperimentResult:
    """Cross-validated accuracy of each classifier + the RF selector report."""
    dataset = dataset or build_dataset()
    table = Table(
        ["classifier", "mean_accuracy", "min_fold", "max_fold"],
        title="Paper II §4.3: classifier comparison (5-fold shuffled CV, 448 pts)",
    )
    accuracies: dict[str, list[float]] = {}
    for name, factory in classifier_zoo().items():
        scores = cross_val_scores(factory, dataset.X, dataset.y, k=5, shuffle=True)
        accuracies[name] = scores
        table.add_row([name, float(np.mean(scores)), min(scores), max(scores)])

    selector = AlgorithmSelector()
    report = selector.train(dataset)
    table.add_row(
        ["rf_selector (deployed)", report.mean_accuracy,
         min(report.fold_accuracies), max(report.fold_accuracies)]
    )
    return ExperimentResult(
        experiment="selection",
        description="Algorithm-selection classifier comparison and RF accuracy",
        table=table,
        data={
            "accuracies": accuracies,
            "rf_report": report,
            "selector": selector,
            "dataset": dataset,
        },
    )
