"""Trace-driven timing report: batched replay vs the analytical model.

For one (layer, configuration) point, run each applicable algorithm's
vectorized kernel on the functional machine with a full instruction trace
and time it through :class:`~repro.simulator.timing.TraceTimingModel`'s
batched replay engine — the per-layer view the paper's figures take, but
produced by instruction-level simulation instead of the closed-form model.
The analytical estimate is shown alongside so the two engines can be
cross-checked layer by layer (``tests/test_model_validation.py`` asserts
their orderings agree on small kernels).

Feasible on real layers only because of the columnar trace fast path
(``docs/PERF.md``) and the set-partitioned replay engine
(:mod:`repro.simulator.cache_fast`): a VGG-16 conv1_1 trace holds ~6M
events and replays in a couple of seconds.  Exposed as
``repro-experiments trace-report`` and via ``repro-experiments
--trace-timing <model>:<layer>``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm, layer_cycles
from repro.experiments.report import ExperimentResult
from repro.isa.machine import VectorMachine
from repro.nn.layer import ConvSpec
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.timing import TraceTimingModel
from repro.utils.tables import Table


def report(
    spec: ConvSpec,
    hw: HardwareConfig,
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
    seed: int = 0,
) -> ExperimentResult:
    """Trace-driven vs analytical cycles for one layer on one config."""
    table = Table(
        ["algorithm", "trace cycles (x1e6)", "analytical (x1e6)", "ratio",
         "L1 miss", "L2 miss", "events", "replay Mev/s"],
        title=f"Trace-driven timing: {spec.describe()} on {hw.label()}",
    )
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (
        0.1 * rng.standard_normal((spec.oc, spec.ic, spec.kh, spec.kw))
    ).astype(np.float32)
    trace_cycles: dict[str, float] = {}
    analytical_cycles: dict[str, float] = {}
    events: dict[str, int] = {}
    for name in algorithms:
        algo = get_algorithm(name)
        if not algo.applicable(spec):
            table.add_row([algo.label, "n/a", "n/a", "-", "-", "-", "-", "-"])
            continue
        machine = VectorMachine(hw.vlen_bits)
        algo.run_vectorized(spec, x, w, machine)
        model = TraceTimingModel(hw)
        start = time.perf_counter()
        res = model.run(machine.trace, flush=True, engine="batched")
        replay_s = time.perf_counter() - start
        analytical = layer_cycles(name, spec, hw).cycles
        trace_cycles[name] = res.cycles
        analytical_cycles[name] = analytical
        events[name] = len(machine.trace)
        l1 = model.hierarchy.l1.stats
        l2 = model.hierarchy.l2.stats
        table.add_row(
            [
                algo.label,
                res.cycles / 1e6,
                analytical / 1e6,
                f"{res.cycles / analytical:.2f}" if analytical else "-",
                f"{l1.miss_rate:.1%}" if l1.accesses else "-",
                f"{l2.miss_rate:.1%}" if l2.accesses else "-",
                len(machine.trace),
                f"{len(machine.trace) / replay_s / 1e6:.1f}",
            ]
        )
    return ExperimentResult(
        experiment="trace-report",
        description=f"Trace-driven timing of {spec.describe()}",
        table=table,
        data={
            "trace_cycles": trace_cycles,
            "analytical_cycles": analytical_cycles,
            "events": events,
        },
    )


def run(
    layer: str = "vgg16:1", vlen_bits: int = 512, l2_mib: float = 1.0
) -> ExperimentResult:
    """CLI entry: ``layer`` is ``<model>:<conv ordinal>``."""
    from repro.experiments.configs import workload

    model_name, _, ordinal = layer.partition(":")
    specs = workload(model_name)
    idx = int(ordinal or 1)
    spec = next(s for s in specs if s.index == idx)
    return report(spec, HardwareConfig.paper2_rvv(vlen_bits, l2_mib))
