"""Fig. 9 — VGG-16: single algorithm vs Optimal vs Predicted Optimal."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.selection_figs import selection_figure


def run(selector=None) -> ExperimentResult:
    """Network time per policy over the 16-config grid (VGG-16)."""
    return selection_figure("vgg16", "fig09", 9, selector=selector)
