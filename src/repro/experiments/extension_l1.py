"""Extension — the L1 cache as a fourth co-design knob.

The papers sweep vector length and L2 capacity but hold the L1 at 64 KB
(their gem5 configuration).  Several of the modeled mechanisms key on the
L1 — most sharply Winograd's tuple working set (``64*(IC+OC)*4`` bytes must
fit, §DESIGN.md) — so the L1 is itself a co-design knob: growing it moves
per-layer winners.  This study sweeps the L1 from 32 KB to 256 KB at the
Paper II baseline and reports the per-layer optimal algorithm.
"""

from __future__ import annotations

from repro.algorithms.registry import best_algorithm
from repro.experiments.configs import workload
from repro.experiments.report import ExperimentResult
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

L1_SIZES_KIB: tuple[int, ...] = (32, 64, 128, 256)


def run(model: str = "vgg16", vlen_bits: int = 512, l2_mib: float = 1.0
        ) -> ExperimentResult:
    specs = workload(model)
    short = {"direct": "dir", "im2col_gemm3": "g3", "im2col_gemm6": "g6",
             "winograd": "wg"}
    table = Table(
        ["L1 size"] + [f"L{s.index}" for s in specs],
        title=f"L1 co-design: optimal algorithm per {model} layer @ "
              f"{vlen_bits}b / {l2_mib:g}MB L2",
    )
    winners: dict[int, list[str]] = {}
    for l1 in L1_SIZES_KIB:
        hw = HardwareConfig.paper2_rvv(vlen_bits, l2_mib).with_(l1_kib=l1)
        row = [best_algorithm(s, hw)[0] for s in specs]
        winners[l1] = row
        table.add_row([f"{l1}KB"] + [short[w] for w in row])
    flipped = [
        specs[i].index
        for i in range(len(specs))
        if len({winners[l1][i] for l1 in L1_SIZES_KIB}) > 1
    ]
    return ExperimentResult(
        experiment="extension-l1",
        description="L1 capacity moves per-layer algorithm choices",
        table=table,
        data={"winners": winners, "flipped_layers": flipped},
    )
