"""Fig. 12 — throughput-area frontier for co-located VGG-16 instances.

1/4/16/64 cores x 512-4096-bit vectors x shared L2 of 1-256 MB, with as many
model instances as cores (one per core, L2 statically partitioned).  The
paper's finding: the frontier co-locates as many instances as possible with
the minimum per-model L2 slice, and throughput scales linearly with area.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.experiments.configs import VECTOR_LENGTHS, workload
from repro.experiments.report import ExperimentResult
from repro.serving.colocation import ColocationScenario, evaluate_colocation
from repro.serving.pareto import ParetoPoint, pareto_frontier
from repro.utils.tables import Table

CORE_COUNTS: tuple[int, ...] = (1, 4, 16, 64)
SHARED_L2_MIB: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0, 256.0)


def run(model: str = "vgg16", selector=None, policy: str = "optimal") -> ExperimentResult:
    """Throughput (images/cycle) vs area for all serving design points."""
    specs = workload(model)
    points: list[ParetoPoint] = []
    rows = []
    for cores in CORE_COUNTS:
        for vl in VECTOR_LENGTHS:
            for l2 in SHARED_L2_MIB:
                try:
                    scenario = ColocationScenario(
                        cores=cores, vlen_bits=vl, shared_l2_mib=l2,
                        instances=cores, policy=policy,
                    )
                except ConfigError:
                    continue  # partition floor: skip starved configurations
                result = evaluate_colocation(scenario, specs, selector=selector)
                rows.append(result)
                points.append(
                    ParetoPoint(
                        cost=result.area_mm2,
                        value=result.throughput_images_per_cycle,
                        payload=result,
                    )
                )
    frontier = pareto_frontier(points)
    frontier_ids = {id(p.payload) for p in frontier}

    table = Table(
        ["instances", "vlen_bits", "shared_l2", "l2/model", "area_mm2",
         "images_per_Mcycle", "on_frontier"],
        title=f"Fig. 12: throughput-area, co-located {model} instances",
    )
    for r in sorted(rows, key=lambda r: r.area_mm2):
        s = r.scenario
        table.add_row(
            [s.instances, s.vlen_bits, f"{s.shared_l2_mib:g}",
             f"{s.l2_per_instance_mib:g}", r.area_mm2,
             r.throughput_images_per_cycle * 1e6,
             "*" if id(r) in frontier_ids else ""]
        )
    return ExperimentResult(
        experiment="fig12",
        description=f"Throughput vs area for co-located {model} serving",
        table=table,
        data={"results": rows, "frontier": frontier},
    )
