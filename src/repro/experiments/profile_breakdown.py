"""Extension — the inference-time profile (conv share of total time).

Paper II §3.3 profiles Darknet on the A64FX: convolutional layers consume
~96 % of YOLOv3's inference time and ~64 % of VGG-16's.  This study builds
the same breakdown from the model: conv layers (best algorithm per layer,
with their element-wise tails), FC layers as GEMVs, and the cheap layers
(pooling/shortcut/route/upsample/softmax) as element-wise passes.
"""

from __future__ import annotations

from repro.algorithms.gemv import gemv_phase
from repro.algorithms.registry import best_algorithm
from repro.experiments.report import ExperimentResult
from repro.nn.aux_kernels import aux_phases
from repro.nn.layer import (
    AvgPoolSpec,
    ConnectedSpec,
    ConvSpec,
    MaxPoolSpec,
    RouteSpec,
    ShortcutSpec,
    SoftmaxSpec,
    UpsampleSpec,
)
from repro.nn.layer import DTYPE_BYTES
from repro.nn.models import vgg16_network, yolov3_network
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table


def _elementwise_phase(name: str, elems: float, hw: HardwareConfig,
                       ops_per_elem: float = 1.0) -> Phase:
    vle = hw.vlmax_f32
    strips = max(1.0, elems / vle)
    nbytes = elems * DTYPE_BYTES
    return Phase(
        name=name,
        vector_ops=ops_per_elem * strips,
        vector_active=float(vle),
        vmem_ops=2.0 * strips,
        vmem_active=float(vle),
        scalar_ops=strips,
        streams=(
            DataStream(f"{name}_in", bytes=nbytes, passes=1.0,
                       resident_source=True),
            DataStream(f"{name}_out", bytes=nbytes, passes=1.0, is_write=True),
        ),
    )


def network_profile(network, hw: HardwareConfig) -> dict[str, float]:
    """Cycles per layer-class for a full network."""
    engine = AnalyticalTimingModel(hw)
    out = {"conv": 0.0, "connected": 0.0, "other": 0.0}
    for spec in network.layers:
        if isinstance(spec, ConvSpec):
            name, cycles = best_algorithm(spec, hw)
            out["conv"] += cycles[name]
            out["conv"] += sum(
                engine.phase_cycles(p).cycles
                for p in aux_phases(spec, hw, spec.batch_normalize)
            )
        elif isinstance(spec, ConnectedSpec):
            out["connected"] += engine.phase_cycles(gemv_phase(spec, hw)).cycles
        elif isinstance(spec, MaxPoolSpec):
            out["other"] += engine.phase_cycles(
                _elementwise_phase("maxpool", float(spec.c * spec.oh * spec.ow),
                                   hw, ops_per_elem=spec.size * spec.size)
            ).cycles
        elif isinstance(spec, (AvgPoolSpec, UpsampleSpec)):
            elems = float(spec.c * spec.ih * spec.iw)
            out["other"] += engine.phase_cycles(
                _elementwise_phase("pool", elems, hw)
            ).cycles
        elif isinstance(spec, (ShortcutSpec, RouteSpec)):
            elems = float(spec.c * spec.h * spec.w)
            out["other"] += engine.phase_cycles(
                _elementwise_phase("blend", elems, hw)
            ).cycles
        elif isinstance(spec, SoftmaxSpec):
            out["other"] += engine.phase_cycles(
                _elementwise_phase("softmax", float(spec.inputs), hw, 4.0)
            ).cycles
    return out


def run(vlen_bits: int = 512, l2_mib: float = 8.0) -> ExperimentResult:
    hw = HardwareConfig.paper2_rvv(vlen_bits, l2_mib)
    table = Table(
        ["network", "conv share", "fc share", "other share",
         "paper conv share"],
        title=f"Inference-time profile by layer class @ {hw.label()}",
    )
    shares: dict[str, dict[str, float]] = {}
    for label, net, paper in (
        ("yolov3 (107 layers)", yolov3_network(), "~96%"),
        ("vgg16 (22 layers)", vgg16_network(), "~64%"),
    ):
        profile = network_profile(net, hw)
        total = sum(profile.values())
        shares[label] = {k: v / total for k, v in profile.items()}
        table.add_row(
            [label, f"{shares[label]['conv']:.1%}",
             f"{shares[label]['connected']:.1%}",
             f"{shares[label]['other']:.1%}", paper]
        )
    return ExperimentResult(
        experiment="profile-breakdown",
        description="Conv / FC / other shares of inference time",
        table=table,
        data={"shares": shares},
    )
