"""Layer report: per-phase introspection of one layer across algorithms.

The debugging/analysis tool behind every number in this reproduction: for a
single convolutional layer and hardware configuration, show each algorithm's
phase-by-phase cycle breakdown, the binding resource, DRAM traffic, lane
utilization and energy — the view a kernel engineer uses to decide *why*
an algorithm wins.  Exposed as ``repro-experiments layer-report`` (with
defaults) and as :func:`report` for programmatic use.
"""

from __future__ import annotations

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.experiments.report import ExperimentResult
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.energy import layer_energy
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table
from repro.utils.units import human_bytes


def report(
    spec: ConvSpec,
    hw: HardwareConfig,
    algorithms: tuple[str, ...] = ALGORITHM_NAMES,
) -> ExperimentResult:
    """Phase-level breakdown of one layer on one configuration."""
    table = Table(
        ["algorithm", "phase", "cycles (x1e6)", "bound", "DRAM traffic",
         "lane util"],
        title=f"Layer report: {spec.describe()} on {hw.label()}",
    )
    model = AnalyticalTimingModel(hw)
    vle = hw.vlmax_f32
    totals: dict[str, float] = {}
    energies: dict[str, float] = {}
    for name in algorithms:
        algo = get_algorithm(name)
        if not algo.applicable(spec):
            table.add_row([algo.label, "(not applicable)", "-", "-", "-", "-"])
            continue
        phases = algo.schedule(spec, hw)
        total = 0.0
        for phase in phases:
            pc = model.phase_cycles(phase)
            total += pc.cycles
            active = phase.vector_active or phase.vmem_active
            util = f"{min(1.0, active / vle):.0%}" if active else "-"
            table.add_row(
                [algo.label, phase.name, pc.cycles / 1e6, pc.bound,
                 human_bytes(pc.dram_bytes), util]
            )
        totals[name] = total
        energies[name] = layer_energy(name, spec, hw).total_j
        table.add_row(
            [algo.label, "== total ==", total / 1e6, "", "",
             f"{energies[name] * 1e3:.2f} mJ"]
        )
    return ExperimentResult(
        experiment="layer-report",
        description=f"Per-phase breakdown of {spec.describe()}",
        table=table,
        data={"cycles": totals, "energy_j": energies},
    )


def run(
    layer: str = "vgg16:9", vlen_bits: int = 512, l2_mib: float = 1.0
) -> ExperimentResult:
    """CLI entry: ``layer`` is ``<model>:<conv ordinal>``."""
    from repro.experiments.configs import workload

    model_name, _, ordinal = layer.partition(":")
    specs = workload(model_name)
    idx = int(ordinal or 1)
    spec = next(s for s in specs if s.index == idx)
    return report(spec, HardwareConfig.paper2_rvv(vlen_bits, l2_mib))
