"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run()`` returning an :class:`ExperimentResult` whose
``table`` prints the same rows/series the paper's artifact shows and whose
``data`` holds the raw numbers for tests and benchmarks.  The mapping to the
paper is in DESIGN.md §5; measured-vs-paper shapes are recorded in
EXPERIMENTS.md.
"""

from repro.experiments.report import ExperimentResult

__all__ = ["ExperimentResult"]
