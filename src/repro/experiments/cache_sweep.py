"""Figs. 5-8 — L2-cache sweeps (1-64 MB at fixed vector length).

Shared implementation; the fig05-fig08 modules bind (model, vector length):
Fig. 5 = VGG @512 b, Fig. 6 = VGG @4096 b, Fig. 7 = YOLO @512 b,
Fig. 8 = YOLO @4096 b.
"""

from __future__ import annotations

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.experiments.common import per_layer_seconds
from repro.experiments.configs import L2_SIZES_MIB, workload
from repro.experiments.report import ExperimentResult
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.ascii_chart import bar_chart
from repro.utils.tables import Table


def cache_sweep(
    model: str, vlen_bits: int, experiment: str, fig_no: int
) -> ExperimentResult:
    """Per-layer execution time for every (algorithm, L2 size)."""
    specs = workload(model)
    seconds: dict[tuple[str, float], list[float | None]] = {}
    for l2 in L2_SIZES_MIB:
        hw = HardwareConfig.paper2_rvv(vlen_bits, l2)
        data = per_layer_seconds(specs, hw)  # engine-memoized
        for name in ALGORITHM_NAMES:
            seconds[(name, l2)] = data[name]

    # cache benefit = t(1MB) / t(64MB) per layer
    benefit: dict[str, list[float | None]] = {}
    for name in ALGORITHM_NAMES:
        base = seconds[(name, L2_SIZES_MIB[0])]
        top = seconds[(name, L2_SIZES_MIB[-1])]
        benefit[name] = [None if b is None else b / t for b, t in zip(base, top)]

    table = Table(
        ["layer"]
        + [f"{get_algorithm(n).label}@{l2:g}MB" for n in ALGORITHM_NAMES
           for l2 in L2_SIZES_MIB],
        title=(
            f"Fig. {fig_no}: {model} per-layer time (s), L2 sweep @ {vlen_bits}b"
        ),
    )
    for i, spec in enumerate(specs):
        row: list = [spec.index]
        for name in ALGORITHM_NAMES:
            for l2 in L2_SIZES_MIB:
                v = seconds[(name, l2)][i]
                row.append("n/a" if v is None else v)
        table.add_row(row)
    chart = bar_chart(
        {get_algorithm(n).label: benefit[n] for n in ALGORITHM_NAMES},
        categories=[f"L{s.index}" for s in specs],
        title=f"benefit {L2_SIZES_MIB[0]:g}MB -> {L2_SIZES_MIB[-1]:g}MB per layer:",
        value_format="{:.2f}x",
    )
    return ExperimentResult(
        experiment=experiment,
        description=f"L2 sweep 1-64MB @ {vlen_bits}b, {model}",
        table=table,
        chart=chart,
        data={"seconds": seconds, "benefit": benefit},
    )
