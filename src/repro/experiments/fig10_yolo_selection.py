"""Fig. 10 — YOLOv3: single algorithm vs Optimal vs Predicted Optimal."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.experiments.selection_figs import selection_figure


def run(selector=None) -> ExperimentResult:
    """Network time per policy over the 16-config grid (YOLOv3)."""
    return selection_figure("yolov3", "fig10", 10, selector=selector)
