"""Fig. 06 — vgg16 L2-cache sweep (1-64 MB) at 4096-bit vectors."""

from __future__ import annotations

from repro.experiments.cache_sweep import cache_sweep
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    """Cache-size benefit of the four algorithms on vgg16 at 4096 bits."""
    return cache_sweep("vgg16", 4096, "fig06", 6)
