"""Shared result container for experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.tables import Table


@dataclass
class ExperimentResult:
    """A reproduced artifact: identifier, rendered table, raw data.

    ``chart`` optionally carries an ASCII bar-chart rendering of the same
    series (the figure's visual shape); ``render(with_chart=True)`` appends
    it below the table.
    """

    experiment: str  # e.g. "fig01"
    description: str
    table: Table
    data: dict[str, Any] = field(default_factory=dict)
    chart: str | None = None

    def render(self, with_chart: bool = True) -> str:
        header = f"[{self.experiment}] {self.description}"
        text = header + "\n" + "=" * len(header) + "\n" + self.table.render()
        if with_chart and self.chart:
            text += "\n" + self.chart
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
