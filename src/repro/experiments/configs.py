"""Shared experiment grids and workload accessors (Paper II §3.3)."""

from __future__ import annotations

from repro.nn.layer import ConvSpec
from repro.nn.models import vgg16_conv_specs, yolov3_conv_specs
from repro.simulator.hwconfig import HardwareConfig

#: The Paper II sweep axes.
VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096)
L2_SIZES_MIB: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0)

#: The baseline configuration of Figs. 1-2.
BASELINE = HardwareConfig.paper2_rvv(512, 1.0)

#: Simulation frequency (GHz) used when converting cycles to seconds.
FREQ_GHZ = 2.0


def workload(name: str) -> list[ConvSpec]:
    """The evaluated conv layers of a network ('vgg16' or 'yolov3')."""
    if name == "vgg16":
        return vgg16_conv_specs()
    if name == "yolov3":
        return yolov3_conv_specs()
    raise ValueError(f"unknown workload {name!r} (vgg16/yolov3)")


def grid() -> list[HardwareConfig]:
    """The 16-point VL x L2 grid, VL-major (the paper's x-axis order)."""
    return [
        HardwareConfig.paper2_rvv(vl, l2)
        for vl in VECTOR_LENGTHS
        for l2 in L2_SIZES_MIB
    ]
