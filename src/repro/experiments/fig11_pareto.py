"""Fig. 11 — performance-area Pareto frontier, single VGG-16 instance, 7 nm.

Design points: (policy, vector length, L2 size) with policy in {the four
single algorithms, Optimal}; performance = network conv cycles, area =
core(VL) + L2 at 7 nm.  The paper finds all frontier points use the optimal
per-layer algorithm, with the knee at 2048 bits x 1 MB (2.35 mm^2).
"""

from __future__ import annotations

from repro.algorithms.registry import ALGORITHM_NAMES
from repro.experiments.configs import L2_SIZES_MIB, VECTOR_LENGTHS, workload
from repro.experiments.report import ExperimentResult
from repro.serving.pareto import ParetoPoint, pareto_frontier, pareto_optimal
from repro.serving.throughput import network_cycles
from repro.simulator.area.chip import chip_area_mm2
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

POLICIES: tuple[str, ...] = ALGORITHM_NAMES + ("optimal",)


def run(model: str = "vgg16") -> ExperimentResult:
    """Cycles-vs-area design space and its Pareto frontier."""
    specs = workload(model)
    points: list[ParetoPoint] = []
    for vl in VECTOR_LENGTHS:
        for l2 in L2_SIZES_MIB:
            hw = HardwareConfig.paper2_rvv(vl, l2)
            area = chip_area_mm2(vl, l2)
            for policy in POLICIES:
                cycles = network_cycles(specs, hw, policy=policy).total_cycles
                points.append(
                    ParetoPoint(
                        cost=area,
                        value=-cycles,
                        payload={"policy": policy, "vlen": vl, "l2_mib": l2,
                                 "cycles": cycles},
                    )
                )
    frontier = pareto_frontier(points)
    knee = pareto_optimal(points)

    table = Table(
        ["policy", "vlen_bits", "l2_mib", "area_mm2", "cycles", "on_frontier",
         "knee"],
        title=f"Fig. 11: performance-area design space, single {model} instance",
    )
    frontier_ids = {id(p) for p in frontier}
    for p in sorted(points, key=lambda p: p.cost):
        pl = p.payload
        table.add_row(
            [pl["policy"], pl["vlen"], pl["l2_mib"], p.cost, pl["cycles"],
             "*" if id(p) in frontier_ids else "", "knee" if p is knee else ""]
        )
    return ExperimentResult(
        experiment="fig11",
        description=f"Pareto frontier of cycles vs 7nm area, {model}",
        table=table,
        data={"points": points, "frontier": frontier, "knee": knee},
    )
