"""The reproduction verdict: every paper anchor checked in one report.

``repro-experiments verdict`` re-derives the paper's headline claims from
the current model and prints a ✓/✗ table with the paper's value, the
measured value, and the acceptance band — the executable form of
EXPERIMENTS.md's verdict section.  The same checks are enforced (with the
same bands) by the test suite; this harness exists so a user can audit the
reproduction in one command without reading pytest output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algorithms.registry import best_algorithm, get_algorithm, layer_cycles
from repro.experiments.report import ExperimentResult
from repro.nn.models import vgg16_conv_specs, yolov3_conv_specs
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.tables import Table

BASE = HardwareConfig.paper2_rvv(512, 1.0)


@dataclass(frozen=True)
class Check:
    """One paper claim: measure it and accept within a band."""

    claim: str
    paper: str
    measure: Callable[[], float | str]
    accept: Callable[[float | str], bool]
    fmt: str = "{:.3g}"

    def evaluate(self) -> tuple[str, bool]:
        value = self.measure()
        ok = self.accept(value)
        text = value if isinstance(value, str) else self.fmt.format(value)
        return text, ok


def _grid():
    return [
        HardwareConfig.paper2_rvv(vl, l2)
        for vl in (512, 1024, 2048, 4096)
        for l2 in (1.0, 4.0, 16.0, 64.0)
    ]


def _max_ratio(specs, single: str) -> float:
    out = 0.0
    for hw in _grid():
        opt = sum(best_algorithm(s, hw)[1][best_algorithm(s, hw)[0]] for s in specs)
        alg = sum(layer_cycles(single, s, hw).cycles for s in specs)
        out = max(out, alg / opt)
    return out


def _scaling(name, spec, a, b) -> float:
    return (
        layer_cycles(name, spec, a, fallback=False).cycles
        / layer_cycles(name, spec, b, fallback=False).cycles
    )


def build_checks() -> list[Check]:
    vgg = vgg16_conv_specs()
    yolo = yolov3_conv_specs()
    vl4096 = HardwareConfig.paper2_rvv(4096, 1.0)
    vl2048 = HardwareConfig.paper2_rvv(2048, 1.0)

    def winners_vgg() -> str:
        names = [best_algorithm(s, BASE)[0] for s in vgg]
        short = {"direct": "dir", "winograd": "wg", "im2col_gemm3": "g3",
                 "im2col_gemm6": "g6"}
        return " ".join(short[n] for n in names)

    def direct_scaling_max() -> float:
        return max(_scaling("direct", s, BASE, vl4096) for s in vgg)

    def winograd_sat() -> float:
        applicable = [s for s in vgg if get_algorithm("winograd").applicable(s)]
        return float(np.mean([
            _scaling("winograd", s, vl2048, vl4096) for s in applicable
        ]))

    def knee() -> str:
        from repro.experiments.fig11_pareto import run as fig11

        payload = fig11().data["knee"].payload
        return f"{payload['vlen']}b x {payload['l2_mib']:g}MB ({payload['policy']})"

    def rf_accuracy() -> float:
        from repro.selection import AlgorithmSelector, build_dataset

        selector = AlgorithmSelector(n_estimators=60)
        return selector.train(build_dataset()).mean_accuracy

    def paper1_vl() -> float:
        hw512 = HardwareConfig.paper1_riscvv(512, 1.0)
        hw8192 = HardwareConfig.paper1_riscvv(8192, 1.0)
        t = lambda hw: sum(
            layer_cycles("im2col_gemm3", s, hw).cycles for s in yolo
        )
        return t(hw512) / t(hw8192)

    return [
        Check(
            "VGG-16 per-layer winners @512b/1MB",
            "dir wg wg wg g6 g6 g6 g6 g6 g6 g6 g6 g6",
            winners_vgg,
            lambda v: v == "dir wg wg wg g6 g6 g6 g6 g6 g6 g6 g6 g6",
            fmt="{}",
        ),
        Check(
            "Direct max VL scaling 512->4096b (VGG)",
            "up to 5.8x",
            direct_scaling_max,
            lambda v: 4.5 <= v <= 8.0,
            fmt="{:.2f}x",
        ),
        Check(
            "Winograd gain 2048->4096b",
            "~1.0x (saturated)",
            winograd_sat,
            lambda v: abs(v - 1.0) < 0.05,
            fmt="{:.2f}x",
        ),
        Check(
            "Optimal vs always-GEMM-6, VGG (max over grid)",
            "1.73x",
            lambda: _max_ratio(vgg, "im2col_gemm6"),
            lambda v: 1.4 <= v <= 2.2,
            fmt="{:.2f}x",
        ),
        Check(
            "Optimal vs always-GEMM-6, YOLOv3 (max over grid)",
            "2.11x",
            lambda: _max_ratio(yolo, "im2col_gemm6"),
            lambda v: 1.6 <= v <= 2.6,
            fmt="{:.2f}x",
        ),
        Check(
            "Optimal vs always-Direct, VGG (max over grid)",
            "1.85x",
            lambda: _max_ratio(vgg, "direct"),
            lambda v: 1.5 <= v <= 2.6,
            fmt="{:.2f}x",
        ),
        Check(
            "Pareto knee (single VGG-16 instance)",
            "2048b x 1MB, per-layer selection",
            knee,
            lambda v: v.startswith("2048b x 1MB"),
            fmt="{}",
        ),
        Check(
            "RF selector 5-fold mean accuracy",
            "92.8%",
            rf_accuracy,
            lambda v: v >= 0.88,
            fmt="{:.1%}",
        ),
        Check(
            "Paper I decoupled VL scaling 512->8192b",
            "~2.5x, saturating",
            paper1_vl,
            lambda v: 1.8 <= v <= 3.2,
            fmt="{:.2f}x",
        ),
    ]


def run() -> ExperimentResult:
    table = Table(
        ["claim", "paper", "measured", "verdict"],
        title="Reproduction verdict (all checks also enforced by pytest)",
    )
    results: dict[str, bool] = {}
    for check in build_checks():
        text, ok = check.evaluate()
        results[check.claim] = ok
        table.add_row([check.claim, check.paper, text, "✓" if ok else "✗"])
    passed = sum(results.values())
    table.add_row(["== total ==", "", f"{passed}/{len(results)} checks", ""])
    return ExperimentResult(
        experiment="verdict",
        description="Paper-anchor audit of the current model",
        table=table,
        data={"results": results, "passed": passed, "total": len(results)},
    )
