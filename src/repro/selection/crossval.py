"""Cross-validation and classification metrics."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import SelectionError


def kfold_indices(
    n: int, k: int = 5, shuffle: bool = True, random_state: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs for k-fold cross-validation.

    Folds partition the samples: every sample appears in exactly one test
    fold, and with ``shuffle`` (the paper's setting) assignment is random.
    """
    if not 2 <= k <= n:
        raise SelectionError(f"k must be in [2, {n}], got {k}")
    order = np.arange(n)
    if shuffle:
        np.random.default_rng(random_state).shuffle(order)
    folds = np.array_split(order, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise SelectionError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise SelectionError("empty label arrays")
    return float((y_true == y_pred).mean())


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: Iterable | None = None
) -> tuple[np.ndarray, list]:
    """Confusion counts; returns (matrix, label order)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred))
    labels = list(labels)
    index = {l: i for i, l in enumerate(labels)}
    mat = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        mat[index[t], index[p]] += 1
    return mat, labels


def cross_val_scores(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    shuffle: bool = True,
    random_state: int = 0,
) -> list[float]:
    """Per-fold accuracy of freshly constructed models (the paper's 5-fold
    shuffled protocol: test folds are unseen during training)."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train, test in kfold_indices(len(X), k, shuffle, random_state):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(accuracy_score(y[test], model.predict(X[test])))
    return scores
