"""Gaussian naive Bayes (comparison model from Paper II §4.3)."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, SelectionError

_VAR_FLOOR = 1e-9


class GaussianNaiveBayes:
    """Per-class independent Gaussians with log-likelihood scoring."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y) or len(X) == 0:
            raise SelectionError("X and y must be non-empty and equally long")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        k, d = len(self.classes_), X.shape[1]
        self._mu = np.zeros((k, d))
        self._var = np.zeros((k, d))
        self._log_prior = np.zeros(k)
        # variance smoothing relative to the global spread (as sklearn does)
        eps = _VAR_FLOOR * X.var(axis=0).max() + _VAR_FLOOR
        for c in range(k):
            rows = X[y_enc == c]
            self._mu[c] = rows.mean(axis=0)
            self._var[c] = rows.var(axis=0) + eps
            self._log_prior[c] = np.log(len(rows) / len(X))
        return self

    def _log_likelihood(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_mu"):
            raise NotFittedError("GaussianNaiveBayes is not fitted")
        X = np.asarray(X, dtype=np.float64)
        # (n, k): sum over features of log N(x | mu, var)
        diff = X[:, None, :] - self._mu[None, :, :]
        ll = -0.5 * (
            np.log(2 * np.pi * self._var)[None, :, :] + diff**2 / self._var[None, :, :]
        ).sum(axis=2)
        return ll + self._log_prior[None, :]

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self._log_likelihood(X)
        return self.classes_[np.argmax(scores, axis=1)]
