"""Algorithm-selection machine learning (from scratch, NumPy only).

The paper trains several classifiers on a 448-point dataset (28 layers x 16
hardware configurations, 12 features) and selects a random forest (depth-10
trees, bootstrapping, 5-fold shuffled cross-validation) reaching 92.8 % mean
accuracy.  scikit-learn is unavailable offline, so this package implements
the full stack: CART decision trees (classification + regression), random
forests, and the comparison classifiers the paper evaluated (KNN, Gaussian
naive Bayes, multinomial logistic regression as the MLP/SVM stand-in family,
and gradient boosting), plus k-fold cross-validation utilities.
"""

from repro.selection.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.selection.forest import RandomForestClassifier
from repro.selection.knn import KNeighborsClassifier
from repro.selection.naive_bayes import GaussianNaiveBayes
from repro.selection.logistic import LogisticRegressionClassifier
from repro.selection.gboost import GradientBoostingClassifier
from repro.selection.crossval import (
    kfold_indices,
    cross_val_scores,
    accuracy_score,
    confusion_matrix,
)
from repro.selection.dataset import (
    SelectionDataset,
    build_dataset,
    build_searched_dataset,
)
from repro.selection.predictor import AlgorithmSelector

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "GaussianNaiveBayes",
    "LogisticRegressionClassifier",
    "GradientBoostingClassifier",
    "kfold_indices",
    "cross_val_scores",
    "accuracy_score",
    "confusion_matrix",
    "SelectionDataset",
    "build_dataset",
    "build_searched_dataset",
    "AlgorithmSelector",
]
