"""CART decision trees (classification by Gini, regression by variance).

Split search is vectorized: for each candidate feature the samples are
sorted once and impurity is evaluated at every boundary between distinct
values via prefix sums — no Python-level loop over thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError, SelectionError


@dataclass
class _Node:
    """A tree node; leaves carry a prediction payload."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    # leaf payload
    value: np.ndarray | None = None  # class counts (clf) or [mean] (reg)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini_from_counts(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity for rows of class counts with given totals."""
    with np.errstate(divide="ignore", invalid="ignore"):
        p = counts / totals[:, None]
        g = 1.0 - np.nansum(p * p, axis=1)
    g[totals == 0] = 0.0
    return g


class _BaseTree:
    """Shared growth logic for classification and regression trees."""

    def __init__(
        self,
        max_depth: int = 10,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise SelectionError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise SelectionError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise SelectionError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: _Node | None = None
        self._rng = np.random.default_rng(random_state)
        self.n_features_: int | None = None

    # hooks implemented by subclasses ----------------------------------- #
    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _split_gain(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, float] | None:
        """Best (gain, threshold) for one sorted feature column, or None."""
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def _feature_candidates(self, d: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(d)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(d)))
        elif isinstance(self.max_features, int):
            k = min(d, max(1, self.max_features))
        else:
            raise SelectionError(f"bad max_features {self.max_features!r}")
        return self._rng.choice(d, size=k, replace=False)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=self._leaf_value(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or self._node_impurity(y) <= 1e-12
        ):
            return node
        best = None  # (gain, feature, threshold)
        for f in self._feature_candidates(X.shape[1]):
            col = X[:, f]
            order = np.argsort(col, kind="stable")
            found = self._split_gain(col[order], y[order])
            if found is None:
                continue
            gain, thr = found
            if best is None or gain > best[0] + 1e-15:
                best = (gain, f, thr)
        if best is None or best[0] <= 1e-12:
            return node
        _, f, thr = best
        mask = X[:, f] <= thr
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = int(f)
        node.threshold = float(thr)
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _check_fit_inputs(self, X: np.ndarray, y: np.ndarray) -> tuple:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise SelectionError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise SelectionError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise SelectionError("cannot fit on an empty dataset")
        return X, y

    def _leaf_for(self, x: np.ndarray) -> _Node:
        if self._root is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def depth(self) -> int:
        """Actual depth of the grown tree (root = depth 0)."""
        def _d(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))
        if self._root is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return _d(self._root)

    def node_count(self) -> int:
        """Total node count of the grown tree."""
        def _c(node: _Node | None) -> int:
            if node is None:
                return 0
            return 1 + _c(node.left) + _c(node.right)
        if self._root is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return _c(self._root)


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with Gini impurity."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = self._check_fit_inputs(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self._n_classes = len(self.classes_)
        self.n_features_ = X.shape[1]
        self._root = self._grow(X, y_enc, 0)
        return self

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self._n_classes).astype(np.float64)

    def _node_impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y, minlength=self._n_classes)
        n = counts.sum()
        p = counts / n
        return float(1.0 - (p * p).sum())

    def _split_gain(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float] | None:
        n = len(y)
        # one-hot prefix sums of class membership along the sorted order
        onehot = np.zeros((n, self._n_classes))
        onehot[np.arange(n), y] = 1.0
        prefix = np.cumsum(onehot, axis=0)
        total = prefix[-1]
        # candidate boundaries: positions where the feature value changes
        boundaries = np.nonzero(np.diff(x) > 0)[0]
        if boundaries.size == 0:
            return None
        left_counts = prefix[boundaries]
        right_counts = total[None, :] - left_counts
        nl = boundaries + 1.0
        nr = n - nl
        gini_l = _gini_from_counts(left_counts, nl)
        gini_r = _gini_from_counts(right_counts, nr)
        parent = self._node_impurity(y)
        gain = parent - (nl / n) * gini_l - (nr / n) * gini_r
        best = int(np.argmax(gain))
        i = boundaries[best]
        return float(gain[best]), float((x[i] + x[i + 1]) / 2.0)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros((len(X), self._n_classes))
        for i, row in enumerate(X):
            counts = self._leaf_for(row).value
            out[i] = counts / counts.sum()
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def leaf_counts(self, x: np.ndarray) -> np.ndarray:
        """Raw class counts at the leaf reached by one sample (for forests)."""
        return self._leaf_for(np.asarray(x, dtype=np.float64)).value


class DecisionTreeRegressor(_BaseTree):
    """CART regressor with variance (MSE) reduction."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = self._check_fit_inputs(X, y)
        y = np.asarray(y, dtype=np.float64)
        self.n_features_ = X.shape[1]
        self._root = self._grow(X, y, 0)
        return self

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([y.mean()])

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(y.var())

    def _split_gain(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float] | None:
        n = len(y)
        boundaries = np.nonzero(np.diff(x) > 0)[0]
        if boundaries.size == 0:
            return None
        csum = np.cumsum(y)
        csum2 = np.cumsum(y * y)
        nl = boundaries + 1.0
        nr = n - nl
        sl = csum[boundaries]
        s2l = csum2[boundaries]
        sr = csum[-1] - sl
        s2r = csum2[-1] - s2l
        var_l = s2l / nl - (sl / nl) ** 2
        var_r = s2r / nr - (sr / nr) ** 2
        parent = y.var()
        gain = parent - (nl / n) * var_l - (nr / n) * var_r
        best = int(np.argmax(gain))
        i = boundaries[best]
        return float(gain[best]), float((x[i] + x[i + 1]) / 2.0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return np.array([self._leaf_for(row).value[0] for row in X])
