"""The 448-point algorithm-selection dataset.

Paper II §4.3: 28 convolutional layers (13 VGG-16 + 15 YOLOv3) x 16 hardware
configurations (VL in {512, 1024, 2048, 4096} bits x L2 in {1, 4, 16, 64} MB)
with 12 features — 2 architectural (vector length, L2 size) and 10 from the
convolution dimensions — labelled with the fastest algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine import EvalTask, EvaluationEngine, default_engine
from repro.errors import AlgorithmError
from repro.nn.layer import ConvSpec
from repro.nn.models import vgg16_conv_specs, yolov3_conv_specs
from repro.simulator.hwconfig import HardwareConfig

if TYPE_CHECKING:  # import cycle: repro.schedule builds on the engine
    from repro.schedule.search import SearchBounds

#: The paper's hardware grid.
VECTOR_LENGTHS: tuple[int, ...] = (512, 1024, 2048, 4096)
L2_SIZES_MIB: tuple[float, ...] = (1.0, 4.0, 16.0, 64.0)

#: Feature names, in column order.
FEATURE_NAMES: tuple[str, ...] = ("vlen_bits", "l2_mib") + ConvSpec.FEATURE_NAMES


@dataclass
class SelectionDataset:
    """Features, labels and the full cycles matrix for regret metrics.

    ``algorithm_names`` are the cycles-matrix columns — the fixed menu by
    default, widened with ``base@knob=value`` schedule variants by
    :func:`build_searched_dataset`.
    """

    X: np.ndarray  # (n, 12)
    y: np.ndarray  # (n,) algorithm names (str dtype)
    cycles: np.ndarray  # (n, len(algorithm_names)); inf if not applicable
    specs: list[ConvSpec]  # layer spec per row
    configs: list[HardwareConfig]  # config per row
    algorithm_names: tuple[str, ...] = ALGORITHM_NAMES  # cycles columns

    def __post_init__(self) -> None:
        assert len(self.X) == len(self.y) == len(self.cycles)
        assert self.cycles.shape[1] == len(self.algorithm_names)

    def __len__(self) -> int:
        return len(self.X)

    def cycles_for(self, row: int, algorithm: str) -> float:
        """Cycles of one algorithm on one row (inf if not applicable)."""
        return float(self.cycles[row, self.algorithm_names.index(algorithm)])

    def regret(self, row: int, predicted: str) -> float:
        """Relative slowdown of the predicted vs the optimal algorithm."""
        best = self.cycles[row].min()
        return float(self.cycles_for(row, predicted) / best - 1.0)


def paper_grid() -> list[HardwareConfig]:
    """The 16 Paper II hardware configurations, VL-major order."""
    return [
        HardwareConfig.paper2_rvv(vl, l2)
        for vl in VECTOR_LENGTHS
        for l2 in L2_SIZES_MIB
    ]


def paper_layers() -> list[ConvSpec]:
    """The 28 evaluated convolutional layers (13 VGG-16 + 15 YOLOv3)."""
    return list(vgg16_conv_specs()) + list(yolov3_conv_specs())


def build_dataset(
    specs: list[ConvSpec] | None = None,
    configs: list[HardwareConfig] | None = None,
    engine: EvaluationEngine | None = None,
    max_workers: int | None = None,
    algorithms: tuple[str, ...] | None = None,
) -> SelectionDataset:
    """Evaluate the full grid through the memoized engine and label each point.

    With the defaults this is the paper's 28 x 16 = 448-point dataset.  All
    applicable cells are submitted as one batch, so the engine can serve
    them from cache (bit-identical to direct ``layer_cycles`` calls) or fan
    them out over worker processes; labels use the same first-wins ``min``
    tie-break as :func:`repro.algorithms.registry.best_algorithm`.

    ``algorithms`` widens (or narrows) the candidate columns — schedule
    variant names (``base@knob=value``) are materialized through the
    registry, so a searched dataset trains the selector on a richer label
    space than the four-entry menu.
    """
    specs = paper_layers() if specs is None else specs
    configs = paper_grid() if configs is None else configs
    engine = engine if engine is not None else default_engine()
    names = ALGORITHM_NAMES if algorithms is None else tuple(algorithms)
    algos = {name: get_algorithm(name) for name in names}
    points = [(spec, hw) for spec in specs for hw in configs]
    cells = [
        (i, name)
        for i, (spec, hw) in enumerate(points)
        for name in names
        if algos[name].applicable(spec)
    ]
    records = engine.evaluate_many(
        [EvalTask(name, points[i][0], points[i][1], fallback=False)
         for i, name in cells],
        max_workers=max_workers,
    )
    cycles_by_point: list[dict[str, float]] = [{} for _ in points]
    for (i, name), record in zip(cells, records):
        cycles_by_point[i][name] = record.cycles
    rows_x: list[list[float]] = []
    rows_y: list[str] = []
    rows_c: list[list[float]] = []
    row_specs: list[ConvSpec] = []
    row_cfgs: list[HardwareConfig] = []
    for (spec, hw), cycles in zip(points, cycles_by_point):
        if not cycles:
            raise AlgorithmError(f"no applicable algorithm for {spec.describe()}")
        winner = min(cycles, key=cycles.get)
        rows_x.append([float(hw.vlen_bits), float(hw.l2_mib)] + spec.features())
        rows_y.append(winner)
        rows_c.append(
            [cycles.get(name, np.inf) for name in names]
        )
        row_specs.append(spec)
        row_cfgs.append(hw)
    return SelectionDataset(
        X=np.asarray(rows_x, dtype=np.float64),
        y=np.asarray(rows_y, dtype=object),
        cycles=np.asarray(rows_c, dtype=np.float64),
        specs=row_specs,
        configs=row_cfgs,
        algorithm_names=names,
    )


def build_searched_dataset(
    specs: list[ConvSpec] | None = None,
    configs: list[HardwareConfig] | None = None,
    engine: EvaluationEngine | None = None,
    max_workers: int | None = None,
    bounds: "SearchBounds | None" = None,
) -> SelectionDataset:
    """The selection dataset over the menu *plus* searched schedule variants.

    Runs :func:`repro.schedule.search.search_schedules` over the grid and
    widens the candidate columns with every variant that won at least one
    cell.  Menu entries always stay in the label space (the search is
    match-or-beat, so menu labels survive exactly where no variant is
    strictly faster); the engine cache is shared between the search and
    the dataset build, so the widened dataset costs one extra ``min``
    scan, not a re-evaluation.
    """
    from repro.schedule.search import search_schedules

    specs = paper_layers() if specs is None else specs
    configs = paper_grid() if configs is None else configs
    engine = engine if engine is not None else default_engine()
    report = search_schedules(
        specs, configs, engine=engine, bounds=bounds, max_workers=max_workers
    )
    variants = tuple(
        name for name in report.winner_names() if name not in ALGORITHM_NAMES
    )
    return build_dataset(
        specs,
        configs,
        engine=engine,
        max_workers=max_workers,
        algorithms=ALGORITHM_NAMES + variants,
    )
