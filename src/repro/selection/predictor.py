"""The AlgorithmSelector façade: train once, select per layer at runtime.

Wraps the random forest with the paper's protocol: 5-fold shuffled
cross-validation for the reported accuracy, then a final fit on the whole
dataset for deployment.  Also computes the paper's misprediction metric
(mean absolute percentage error in *layer time* when the wrong algorithm is
chosen — 20.4 % in the paper) and full-network slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NotFittedError
from repro.nn.layer import ConvSpec
from repro.selection.crossval import accuracy_score, kfold_indices
from repro.selection.dataset import SelectionDataset, build_dataset
from repro.selection.forest import RandomForestClassifier
from repro.simulator.hwconfig import HardwareConfig


@dataclass
class SelectorReport:
    """Cross-validated quality metrics of a trained selector."""

    fold_accuracies: list[float]
    misprediction_mape: float  # mean |layer-time error| on mispredictions
    n_points: int

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.fold_accuracies))

    def summary(self) -> str:
        accs = ", ".join(f"{a:.3f}" for a in self.fold_accuracies)
        return (
            f"5-fold accuracies: [{accs}] mean={self.mean_accuracy:.3f}; "
            f"misprediction layer-time MAPE={self.misprediction_mape:.1%} "
            f"({self.n_points} points)"
        )


class AlgorithmSelector:
    """Per-layer convolution-algorithm selection (Paper II §4.3)."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 10,
        max_features: int | str | None = 6,
        random_state: int = 0,
    ) -> None:
        # hyperparameters tuned as in Paper II §4.3: depth-10 trees with
        # bootstrapping; half the 12 features per split balances fit and
        # fold-to-fold variance on the 448-point dataset
        self.model = RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            max_features=max_features,
            bootstrap=True,
            random_state=random_state,
        )
        self.random_state = random_state
        self._fitted = False
        self.report: SelectorReport | None = None

    # ------------------------------------------------------------------ #
    def train(self, dataset: SelectionDataset | None = None) -> SelectorReport:
        """Cross-validate (5-fold, shuffled) then fit on the full dataset."""
        dataset = dataset or build_dataset()
        X, y = dataset.X, dataset.y
        fold_accs: list[float] = []
        regrets: list[float] = []
        for train, test in kfold_indices(
            len(X), k=5, shuffle=True, random_state=self.random_state
        ):
            model = RandomForestClassifier(
                n_estimators=self.model.n_estimators,
                max_depth=self.model.max_depth,
                max_features=self.model.max_features,
                random_state=self.random_state,
            )
            model.fit(X[train], y[train])
            pred = model.predict(X[test])
            fold_accs.append(accuracy_score(y[test], pred))
            for row, p in zip(test, pred):
                if p != y[row]:
                    regrets.append(dataset.regret(int(row), str(p)))
        self.model.fit(X, y)
        self._fitted = True
        self.report = SelectorReport(
            fold_accuracies=fold_accs,
            misprediction_mape=float(np.mean(regrets)) if regrets else 0.0,
            n_points=len(X),
        )
        return self.report

    def fit(self, dataset: SelectionDataset | None = None) -> "AlgorithmSelector":
        """Fit on the full dataset without cross-validation.

        The deployment path (``repro-serve`` startup) wants the final
        model only; :meth:`train` additionally runs the paper's 5-fold
        protocol to produce a :class:`SelectorReport`.
        """
        dataset = dataset or build_dataset()
        self.model.fit(dataset.X, dataset.y)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    def features(self, spec: ConvSpec, hw: HardwareConfig) -> np.ndarray:
        return np.asarray(
            [[float(hw.vlen_bits), float(hw.l2_mib)] + spec.features()]
        )

    def features_many(
        self, pairs: list[tuple[ConvSpec, HardwareConfig]]
    ) -> np.ndarray:
        """Stacked feature matrix for a batch of (layer, config) queries."""
        return np.asarray(
            [
                [float(hw.vlen_bits), float(hw.l2_mib)] + spec.features()
                for spec, hw in pairs
            ]
        )

    def select(self, spec: ConvSpec, hw: HardwareConfig) -> str:
        """Predict the best algorithm for one layer on one configuration."""
        if not self._fitted:
            raise NotFittedError("AlgorithmSelector.train() has not been called")
        return str(self.model.predict(self.features(spec, hw))[0])

    def select_many(
        self, pairs: list[tuple[ConvSpec, HardwareConfig]]
    ) -> list[str]:
        """Batched :meth:`select`: one model pass over many queries.

        The serving micro-batcher (:mod:`repro.serve`) routes whole
        batches through here so the per-request selection cost is one
        forest traversal, not one model call per request.
        """
        if not self._fitted:
            raise NotFittedError("AlgorithmSelector.train() has not been called")
        if not pairs:
            return []
        return [str(p) for p in self.model.predict(self.features_many(pairs))]

    def select_network(
        self, specs: list[ConvSpec], hw: HardwareConfig
    ) -> dict[int, str]:
        """Per-layer predictions keyed by the layer's conv ordinal."""
        return {spec.index: self.select(spec, hw) for spec in specs}
