"""K-nearest-neighbours classifier (comparison model from Paper II §4.3)."""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, SelectionError


class KNeighborsClassifier:
    """Euclidean KNN with optional per-feature standardization.

    The 12 features span very different magnitudes (vector bits vs. stride),
    so standardization is on by default — without it KNN degenerates to
    matching on the largest-magnitude feature.
    """

    def __init__(self, n_neighbors: int = 5, standardize: bool = True) -> None:
        if n_neighbors < 1:
            raise SelectionError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self.standardize = standardize
        self._X: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y) or len(X) == 0:
            raise SelectionError("X and y must be non-empty and equally long")
        if self.n_neighbors > len(X):
            raise SelectionError(
                f"n_neighbors={self.n_neighbors} exceeds {len(X)} training samples"
            )
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        self._X = self._scale(X)
        self.classes_, self._y = np.unique(y, return_inverse=True)
        return self

    def _scale(self, X: np.ndarray) -> np.ndarray:
        if not self.standardize:
            return X
        return (X - self._mu) / self._sigma

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise NotFittedError("KNeighborsClassifier is not fitted")
        X = self._scale(np.asarray(X, dtype=np.float64))
        # pairwise distances, vectorized
        d2 = ((X[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
        nearest = np.argsort(d2, axis=1)[:, : self.n_neighbors]
        votes = self._y[nearest]
        out = np.empty(len(X), dtype=self._y.dtype)
        for i, row in enumerate(votes):
            out[i] = np.bincount(row, minlength=len(self.classes_)).argmax()
        return self.classes_[out]
