"""Random forest classifier (the paper's selection model).

Hyperparameters follow Paper II §4.3: depth-10 trees with bootstrapping.
Prediction aggregates the per-tree leaf class distributions (soft voting),
which is both what scikit-learn does and slightly more accurate than hard
majority voting on small datasets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, SelectionError
from repro.selection.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated CART trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 10,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        min_samples_leaf: int = 1,
        random_state: int | None = 0,
    ) -> None:
        if n_estimators < 1:
            raise SelectionError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y) or len(X) == 0:
            raise SelectionError("X and y must be non-empty and equally long")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(y)
        self.trees_ = []
        n = len(X)
        for t in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=self.max_features,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            # trees index into the global class set so votes align
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise NotFittedError("RandomForestClassifier is not fitted")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of per-tree leaf class distributions over the global classes."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        total = np.zeros((len(X), len(self.classes_)))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            cols = [class_index[c] for c in tree.classes_]
            total[:, cols] += proba
        total /= len(self.trees_)
        return total

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def feature_importances(self) -> np.ndarray:
        """Split-frequency feature importances (normalized counts)."""
        self._check_fitted()
        d = self.trees_[0].n_features_
        counts = np.zeros(d)

        def _walk(node) -> None:
            if node is None or node.is_leaf:
                return
            counts[node.feature] += 1
            _walk(node.left)
            _walk(node.right)

        for tree in self.trees_:
            _walk(tree._root)
        total = counts.sum()
        return counts / total if total else counts
