"""Gradient boosting classifier (comparison model from Paper II §4.3).

One-vs-rest boosting of shallow regression trees on the logistic loss
gradient — a compact functional equivalent of sklearn's
``GradientBoostingClassifier`` sufficient for the paper's comparison table.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, SelectionError
from repro.selection.tree import DecisionTreeRegressor


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


class GradientBoostingClassifier:
    """OvR gradient-boosted regression trees on logistic loss."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1 or learning_rate <= 0:
            raise SelectionError("invalid gradient-boosting hyperparameters")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y) or len(X) == 0:
            raise SelectionError("X and y must be non-empty and equally long")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        k = len(self.classes_)
        self._ensembles: list[list[DecisionTreeRegressor]] = [[] for _ in range(k)]
        self._base = np.zeros(k)
        for c in range(k):
            target = (y_enc == c).astype(np.float64)
            prior = np.clip(target.mean(), 1e-6, 1 - 1e-6)
            self._base[c] = np.log(prior / (1 - prior))
            score = np.full(len(X), self._base[c])
            for t in range(self.n_estimators):
                residual = target - _sigmoid(score)
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    random_state=self.random_state + 1000 * c + t,
                )
                tree.fit(X, residual)
                score = score + self.learning_rate * tree.predict(X)
                self._ensembles[c].append(tree)
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_ensembles"):
            raise NotFittedError("GradientBoostingClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        scores = np.tile(self._base, (len(X), 1))
        for c, trees in enumerate(self._ensembles):
            for tree in trees:
                scores[:, c] += self.learning_rate * tree.predict(X)
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]
