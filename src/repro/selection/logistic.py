"""Multinomial logistic regression trained by full-batch gradient descent.

Stands in for the paper's linear comparison models (SVM / MLP families);
features are standardized internally.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, SelectionError


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier:
    """Softmax regression with L2 regularization."""

    def __init__(
        self,
        lr: float = 0.1,
        epochs: int = 500,
        l2: float = 1e-3,
        random_state: int = 0,
    ) -> None:
        if lr <= 0 or epochs < 1 or l2 < 0:
            raise SelectionError("invalid hyperparameters for logistic regression")
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y) or len(X) == 0:
            raise SelectionError("X and y must be non-empty and equally long")
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        Xs = (X - self._mu) / self._sigma
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        n, d = Xs.shape
        k = len(self.classes_)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y_enc] = 1.0
        rng = np.random.default_rng(self.random_state)
        self._W = 0.01 * rng.standard_normal((d, k))
        self._b = np.zeros(k)
        for _ in range(self.epochs):
            p = _softmax(Xs @ self._W + self._b)
            grad_w = Xs.T @ (p - onehot) / n + self.l2 * self._W
            grad_b = (p - onehot).mean(axis=0)
            self._W -= self.lr * grad_w
            self._b -= self.lr * grad_b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_W"):
            raise NotFittedError("LogisticRegressionClassifier is not fitted")
        Xs = (np.asarray(X, dtype=np.float64) - self._mu) / self._sigma
        return _softmax(Xs @ self._W + self._b)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
