"""Parametric Winograd F(m, 3) variants — the tile-size trade-off, complete.

The accuracy study (`ablation-winograd-tiles`) shows why tiles cannot grow
past F(6,3); this module adds the *performance* half of that trade-off: a
fully parametric F(m,3) convolution built on the exact Cook-Toom generator,
so F(2,3)/F(4,3)/F(6,3) can be compared on both axes.  Larger m does fewer
multiplies per output ((m+2)^2/m^2 falls toward 1) but needs more transform
arithmetic per tile and a longer tuple vector — the performance sweet spot
lands on F(6,3) too, which is the complete justification for the paper's
fixed 8x8 tile.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.algorithms.winograd import (
    MIN_CHANNELS,
    PACK_SCALARS,
    TILE_BLOCK,
    TRANSFORM_VMEM_OPS,
    TUPLE_VMEM_PER_FMA,
    TUPLE_VMEM_PER_FMA_SVE,
)
from repro.algorithms.winograd_transforms import winograd_matrices
from repro.errors import AlgorithmError, NotApplicableError
from repro.nn.layer import DTYPE_BYTES, ConvSpec
from repro.nn.reference import pad_input
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

SUPPORTED_M: tuple[int, ...] = (2, 4, 6)


@lru_cache(maxsize=None)
def _matrices(m: int):
    return winograd_matrices(m, 3)


class WinogradFm3:
    """Functional + analytical F(m,3) convolution (3x3, stride 1)."""

    def __init__(self, m: int, online_weight_transform: bool = False) -> None:
        if m not in SUPPORTED_M:
            raise AlgorithmError(f"F({m},3) not supported; m in {SUPPORTED_M}")
        self.m = m
        self.alpha = m + 2
        self.online_weight_transform = online_weight_transform
        self.name = f"winograd_f{m}"

    # ------------------------------------------------------------------ #
    def applicable(self, spec: ConvSpec) -> bool:
        return spec.kh == 3 and spec.kw == 3 and spec.stride == 1

    def _check(self, spec: ConvSpec) -> None:
        if not self.applicable(spec):
            raise NotApplicableError(f"{self.name} needs 3x3/stride-1 layers")

    def tile_counts(self, spec: ConvSpec) -> tuple[int, int]:
        return math.ceil(spec.oh / self.m), math.ceil(spec.ow / self.m)

    # ------------------------------------------------------------------ #
    def run(self, spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Exact functional F(m,3) convolution (tile-batched)."""
        self._check(spec)
        spec.validate_input(x.shape)
        wm = _matrices(self.m)
        m, alpha = self.m, self.alpha
        ty, tx = self.tile_counts(spec)
        xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
        need_h = (ty - 1) * m + alpha
        need_w = (tx - 1) * m + alpha
        xp = np.pad(
            xp, ((0, 0), (0, max(0, need_h - xp.shape[1])),
                 (0, max(0, need_w - xp.shape[2])))
        )
        sic, sih, siw = xp.strides
        tiles = np.lib.stride_tricks.as_strided(
            xp, shape=(ty, tx, spec.ic, alpha, alpha),
            strides=(m * sih, m * siw, sic, sih, siw), writeable=False,
        ).astype(np.float64)
        u = np.einsum("ij,yxcjk,lk->yxcil", wm.BT, tiles, wm.BT)
        v = np.einsum("ij,ocjk,lk->ocil", wm.G, w.astype(np.float64), wm.G)
        mm = np.einsum("yxcij,ocij->yxoij", u, v)
        y = np.einsum("ij,yxojk,lk->yxoil", wm.AT, mm, wm.AT)
        out = y.transpose(2, 0, 3, 1, 4).reshape(spec.oc, ty * m, tx * m)
        return out[:, : spec.oh, : spec.ow].astype(np.float32)

    # ------------------------------------------------------------------ #
    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        """Analytical schedule, parametric in the tile size.

        Mirrors :class:`repro.algorithms.winograd.WinogradConv` with
        ``TILE_M -> m``: pack width ``alpha/2`` elements per channel
        half-row, ``alpha^2`` tuple positions (so F(2,3) saturates at a
        16-element / 512-bit tuple and F(6,3) at 64 / 2048 bits), and
        transform arithmetic proportional to ``alpha^2``.
        """
        self._check(spec)
        vle = hw.vlmax_f32
        sve = hw.isa == "sve"
        m, alpha = self.m, self.alpha
        tuple_elems = alpha * alpha
        pack_elems = alpha // 2
        ic, oc = spec.ic, spec.oc
        ty, tx = self.tile_counts(spec)
        t = float(ty * tx)

        intertile = ic >= MIN_CHANNELS
        cb = max(1, min(ic, vle // pack_elems)) if intertile else 1
        cbo = max(1, min(oc, vle // pack_elems)) if intertile else 1
        groups_ic = math.ceil(ic / cb)
        groups_oc = math.ceil(oc / cbo)
        active_in = min(ic, cb) * pack_elems if intertile else pack_elems
        active_out = min(oc, cbo) * pack_elems if intertile else pack_elems

        # transform arithmetic ~ 2 stages x alpha x alpha MAC rows per group
        tf_in_ops = 4.5 * alpha * alpha
        tf_out_ops = 4.0 * alpha * m
        tf_nonunit = 0.2 if sve else 0.5

        u_bytes = t * ic * tuple_elems * DTYPE_BYTES
        v_bytes = float(oc * ic * tuple_elems * DTYPE_BYTES)
        m_bytes = t * oc * tuple_elems * DTYPE_BYTES

        phases: list[Phase] = []
        if self.online_weight_transform:
            wt_groups = math.ceil(ic / cb) * oc
            phases.append(
                Phase(
                    name=f"f{m}_weight_transform",
                    vector_ops=wt_groups * tf_in_ops,
                    vector_active=float(active_in),
                    vmem_ops=wt_groups * TRANSFORM_VMEM_OPS,
                    vmem_active=float(active_in),
                    nonunit_fraction=tf_nonunit,
                    scalar_ops=PACK_SCALARS * ic * oc,
                    streams=(
                        DataStream("weights", bytes=float(spec.weight_bytes),
                                   passes=1.0),
                        DataStream("V_write", bytes=v_bytes, passes=1.0,
                                   is_write=True),
                    ),
                )
            )
        phases.append(
            Phase(
                name=f"f{m}_input_transform",
                vector_ops=t * groups_ic * tf_in_ops,
                vector_active=float(active_in),
                vmem_ops=t * groups_ic * TRANSFORM_VMEM_OPS * alpha / 8.0,
                vmem_active=float(active_in),
                nonunit_fraction=tf_nonunit,
                scalar_ops=PACK_SCALARS * t * ic,
                streams=(
                    DataStream(
                        "input", bytes=float(spec.input_bytes),
                        passes=(alpha / m) ** 2,
                        reuse_ws=float(2 * spec.iw * DTYPE_BYTES),
                        resident_source=True,
                    ),
                    DataStream("U_write", bytes=u_bytes, passes=1.0,
                               is_write=True),
                ),
            )
        )
        ntp = math.ceil(tuple_elems / vle) if intertile else math.ceil(
            tuple_elems / alpha
        )
        active_tuple = tuple_elems / ntp
        fma = t * ic * oc * ntp
        if sve:
            tuple_vmem = TUPLE_VMEM_PER_FMA_SVE
        else:
            spill = 1.0 if tuple_elems * (ic + oc) * DTYPE_BYTES > hw.l1_bytes else 0.0
            tuple_vmem = TUPLE_VMEM_PER_FMA + 0.7 * spill
        phases.append(
            Phase(
                name=f"f{m}_tuple_gemm",
                vector_ops=fma,
                vector_active=float(active_tuple),
                vmem_ops=tuple_vmem * fma,
                vmem_active=float(active_tuple),
                scalar_ops=0.5 * t * ic * oc,
                streams=(
                    DataStream("U_read", bytes=u_bytes, passes=1.0,
                               resident_source=True),
                    DataStream(
                        "V_weights", bytes=v_bytes,
                        passes=float(max(1.0, t / TILE_BLOCK)),
                        reuse_ws=v_bytes,
                        resident_source=self.online_weight_transform,
                    ),
                    DataStream("M_write", bytes=m_bytes, passes=1.0,
                               is_write=True),
                ),
            )
        )
        phases.append(
            Phase(
                name=f"f{m}_output_transform",
                vector_ops=t * groups_oc * tf_out_ops,
                vector_active=float(active_out),
                vmem_ops=t * groups_oc * TRANSFORM_VMEM_OPS * alpha / 8.0,
                vmem_active=float(active_out),
                nonunit_fraction=tf_nonunit,
                scalar_ops=PACK_SCALARS * t * oc,
                streams=(
                    DataStream("M_read", bytes=m_bytes, passes=1.0,
                               resident_source=True),
                    DataStream("output", bytes=float(spec.output_bytes),
                               passes=1.0, is_write=True),
                ),
            )
        )
        return phases
