"""Multi-head self-attention on long-vector architectures (future work).

The thesis's conclusion motivates extending the co-design study to vision
transformers, whose self-attention layers are dominated by matrix
multiplications with *skinny, irregular* shapes (per-head dimensions of
64) — hard to feed to very long vectors — and whose two chained matmuls +
softmax move a lot of intermediate data unless fused (citing Fu et al.,
ICS '24).

This module provides:

* :class:`AttentionSpec` — layer dimensions (ViT-Base by default);
* :func:`attention_forward` — functional multi-head self-attention;
* :func:`attention_phases` — an analytical schedule built from the same
  GEMM phase models as the CNN study, with ``fused=True`` modelling
  attention fusion (score tiles stay cache-resident between the two
  matmuls and the softmax, as in FlashAttention-style kernels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.gemm_kernels import gemm3_phase
from repro.errors import ConfigError, ShapeError
from repro.nn.layer import DTYPE_BYTES
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig


@dataclass(frozen=True)
class AttentionSpec:
    """One multi-head self-attention layer (single sequence)."""

    seq_len: int = 197  # ViT-Base: 196 patches + CLS
    embed_dim: int = 768
    heads: int = 12

    def __post_init__(self) -> None:
        if self.seq_len < 1 or self.embed_dim < 1 or self.heads < 1:
            raise ConfigError("attention dimensions must be positive")
        if self.embed_dim % self.heads:
            raise ConfigError(
                f"embed_dim {self.embed_dim} not divisible by {self.heads} heads"
            )

    @property
    def head_dim(self) -> int:
        return self.embed_dim // self.heads

    @property
    def projection_macs(self) -> int:
        """QKV + output projections: 4 x (D x D) @ (D x S)."""
        return 4 * self.embed_dim * self.embed_dim * self.seq_len

    @property
    def attention_macs(self) -> int:
        """Scores (S x d x S) and context (S x S x d), per head."""
        return 2 * self.heads * self.seq_len * self.seq_len * self.head_dim

    @property
    def scores_bytes(self) -> int:
        """The H x S x S intermediate the fusion avoids materializing."""
        return self.heads * self.seq_len * self.seq_len * DTYPE_BYTES


def _softmax_rows(x: np.ndarray) -> np.ndarray:
    m = x.max(axis=-1, keepdims=True)
    e = np.exp(x - m)
    return e / e.sum(axis=-1, keepdims=True)


def attention_forward(
    spec: AttentionSpec, x: np.ndarray, wq: np.ndarray, wk: np.ndarray,
    wv: np.ndarray, wo: np.ndarray,
) -> np.ndarray:
    """Functional multi-head self-attention: (S, D) -> (S, D).

    All four projection matrices are (D, D); scaling is 1/sqrt(head_dim).
    """
    s, d, h = spec.seq_len, spec.embed_dim, spec.heads
    if x.shape != (s, d):
        raise ShapeError(f"expected input ({s}, {d}), got {x.shape}")
    for name, w in (("wq", wq), ("wk", wk), ("wv", wv), ("wo", wo)):
        if w.shape != (d, d):
            raise ShapeError(f"{name} must be ({d}, {d}), got {w.shape}")
    x64 = x.astype(np.float64)
    q = (x64 @ wq.astype(np.float64)).reshape(s, h, spec.head_dim)
    k = (x64 @ wk.astype(np.float64)).reshape(s, h, spec.head_dim)
    v = (x64 @ wv.astype(np.float64)).reshape(s, h, spec.head_dim)
    scale = 1.0 / math.sqrt(spec.head_dim)
    # (h, s, s) attention maps
    scores = np.einsum("qhd,khd->hqk", q, k) * scale
    probs = _softmax_rows(scores)
    context = np.einsum("hqk,khd->qhd", probs, v).reshape(s, d)
    return (context @ wo.astype(np.float64)).astype(np.float32)


def attention_phases(
    spec: AttentionSpec, hw: HardwareConfig, fused: bool = False
) -> list[Phase]:
    """Analytical schedule of one attention layer.

    Built from the CNN study's GEMM phase model so utilization effects carry
    over: the per-head matmuls have N = seq_len (or head_dim) — *skinny* —
    so very long vectors run partially full, unlike the big CNN GEMMs.
    With ``fused``, the (S x S) score tiles never round-trip to memory: the
    softmax and context matmul consume them in cache (one combined phase).
    """
    s, d, h, dh = spec.seq_len, spec.embed_dim, spec.heads, spec.head_dim
    vle = hw.vlmax_f32
    phases: list[Phase] = []
    # QKV + output projections: (D x D) @ (D x S) each
    for name in ("proj_qkv", "proj_out"):
        count = 3 if name == "proj_qkv" else 1
        p = gemm3_phase(d, d, s, hw, b_name=f"{name}_in")
        phases.append(
            Phase(
                name=name,
                vector_ops=count * p.vector_ops,
                vector_active=p.vector_active,
                vmem_ops=count * p.vmem_ops,
                vmem_active=p.vmem_active,
                scalar_ops=count * p.scalar_ops,
                streams=tuple(
                    DataStream(
                        f"{name}_{st.name}", bytes=count * st.bytes,
                        passes=st.passes, reuse_ws=st.reuse_ws,
                        is_write=st.is_write, scalar_access=st.scalar_access,
                        resident_source=True,
                    )
                    for st in p.streams
                ),
            )
        )
    # per-head score GEMM (S x dh) @ (dh x S) and context (S x S) @ (S x dh)
    score = gemm3_phase(s, dh, s, hw, b_name="keys")
    context = gemm3_phase(s, s, dh, hw, b_name="probs")
    softmax_strips = h * s * math.ceil(s / vle)
    if not fused:
        phases.append(_scale_heads(score, h, "attn_scores", spec, write_scores=True))
        phases.append(
            Phase(
                name="softmax",
                vector_ops=4.0 * softmax_strips,
                vector_active=float(min(s, vle)),
                vmem_ops=2.0 * softmax_strips,
                vmem_active=float(min(s, vle)),
                scalar_ops=3.0 * h * s,
                streams=(
                    DataStream("scores_read", bytes=float(spec.scores_bytes),
                               passes=1.0, resident_source=True),
                    DataStream("probs_write", bytes=float(spec.scores_bytes),
                               passes=1.0, is_write=True),
                ),
            )
        )
        phases.append(_scale_heads(context, h, "attn_context", spec,
                                   read_scores=True))
    else:
        # fusion: one pass per head-tile; scores live in cache, softmax and
        # context matmul run on resident tiles (no S x S DRAM traffic)
        combined = Phase(
            name="attn_fused",
            vector_ops=h * (score.vector_ops + context.vector_ops)
            + 4.0 * softmax_strips,
            vector_active=min(score.vector_active, context.vector_active),
            vmem_ops=h * (score.vmem_ops + context.vmem_ops)
            + 2.0 * softmax_strips,
            vmem_active=min(score.vmem_active, context.vmem_active),
            scalar_ops=h * (score.scalar_ops + context.scalar_ops),
            streams=(
                DataStream("qkv_read", bytes=float(3 * s * d * DTYPE_BYTES),
                           passes=2.0, reuse_ws=float(3 * s * d * DTYPE_BYTES),
                           resident_source=True),
                DataStream("context_write", bytes=float(s * d * DTYPE_BYTES),
                           passes=1.0, is_write=True),
            ),
        )
        phases.append(combined)
    return phases


def _scale_heads(
    p: Phase, heads: int, name: str, spec: AttentionSpec,
    write_scores: bool = False, read_scores: bool = False,
) -> Phase:
    """Replicate a per-head GEMM phase across heads with score traffic."""
    s, d = spec.seq_len, spec.embed_dim
    streams = [
        DataStream("qkv_read", bytes=float(2 * s * d * DTYPE_BYTES), passes=1.0,
                   resident_source=True),
    ]
    if write_scores:
        streams.append(
            DataStream("scores_write", bytes=float(spec.scores_bytes),
                       passes=1.0, is_write=True)
        )
    if read_scores:
        streams.append(
            DataStream("probs_read", bytes=float(spec.scores_bytes), passes=1.0,
                       resident_source=True)
        )
        streams.append(
            DataStream("context_write", bytes=float(s * d * DTYPE_BYTES),
                       passes=1.0, is_write=True)
        )
    return Phase(
        name=name,
        vector_ops=heads * p.vector_ops,
        vector_active=p.vector_active,
        vmem_ops=heads * p.vmem_ops,
        vmem_active=p.vmem_active,
        scalar_ops=heads * p.scalar_ops,
        streams=tuple(streams),
    )
