"""Extensions beyond the papers' scope, from the thesis's future-work list.

Chapter 3 of the thesis names vision transformers as the next target:
"many matrices are skinny and irregular, making it challenging to utilize
long vector lengths", and "mechanisms like data reuse and fusion are
proposed to reduce memory accesses".  :mod:`repro.extensions.attention`
implements multi-head self-attention on the same substrates and quantifies
both claims.
"""

from repro.extensions.attention import (
    AttentionSpec,
    attention_forward,
    attention_phases,
)

__all__ = ["AttentionSpec", "attention_forward", "attention_phases"]
