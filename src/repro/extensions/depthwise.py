"""Depthwise convolution — Paper II's other named future-work kernel.

Paper II's conclusion: "We will also consider ... additional computational
kernels, such as point-wise and depth-wise convolutions".  Depthwise layers
(one filter per channel, MobileNet-style) break the im2col+GEMM formulation
— each channel's GEMM is a degenerate (1 x 9) @ (9 x N) — while the NHWC
Direct dataflow vectorizes across channels perfectly.  This module provides
the functional kernel, analytical schedules for both strategies, and the
MobileNetV1 depthwise layer set used by the ``extension-depthwise`` study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn.layer import DTYPE_BYTES
from repro.nn.reference import pad_input
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig


@dataclass(frozen=True)
class DepthwiseConvSpec:
    """A depthwise 2-D convolution: one kh x kw filter per channel."""

    c: int
    ih: int
    iw: int
    kh: int = 3
    kw: int = 3
    stride: int = 1
    pad: int = -1
    index: int = 0

    def __post_init__(self) -> None:
        for name in ("c", "ih", "iw", "kh", "kw", "stride"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be positive")
        if self.pad == -1:
            object.__setattr__(self, "pad", self.kh // 2)

    @property
    def oh(self) -> int:
        return (self.ih + 2 * self.pad - self.kh) // self.stride + 1

    @property
    def ow(self) -> int:
        return (self.iw + 2 * self.pad - self.kw) // self.stride + 1

    @property
    def macs(self) -> int:
        return self.c * self.oh * self.ow * self.kh * self.kw

    def describe(self) -> str:
        return (
            f"dw{self.index}: {self.c} ch, {self.ih}x{self.iw}->"
            f"{self.oh}x{self.ow}, k{self.kh} s{self.stride}"
        )


def depthwise_forward(
    spec: DepthwiseConvSpec, x: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """Functional depthwise convolution: (C,IH,IW) x (C,KH,KW) -> (C,OH,OW)."""
    if x.shape != (spec.c, spec.ih, spec.iw):
        raise ShapeError(f"expected input {(spec.c, spec.ih, spec.iw)}, got {x.shape}")
    if w.shape != (spec.c, spec.kh, spec.kw):
        raise ShapeError(f"expected weights {(spec.c, spec.kh, spec.kw)}, got {w.shape}")
    xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
    oh, ow, s = spec.oh, spec.ow, spec.stride
    out = np.zeros((spec.c, oh, ow), dtype=np.float64)
    for dh in range(spec.kh):
        for dw in range(spec.kw):
            window = xp[:, dh : dh + s * oh : s, dw : dw + s * ow : s]
            out += window.astype(np.float64) * w[:, dh, dw, None, None]
    return out.astype(np.float32)


def depthwise_direct_phases(
    spec: DepthwiseConvSpec, hw: HardwareConfig
) -> list[Phase]:
    """NHWC Direct: the channel dimension is elementwise -> full vectors.

    Per output point, ``kh*kw`` vector FMAs over the channel vector — the
    input operand is a *vector* load (channels are contiguous in NHWC), so
    there is no scalar-broadcast pressure at all.
    """
    vle = hw.vlmax_f32
    nch = math.ceil(spec.c / vle)
    active = spec.c / nch
    points = float(spec.oh * spec.ow)
    fma = points * spec.kh * spec.kw * nch
    in_bytes = float(spec.c * spec.ih * spec.iw * DTYPE_BYTES)
    out_bytes = float(spec.c * spec.oh * spec.ow * DTYPE_BYTES)
    w_bytes = float(spec.c * spec.kh * spec.kw * DTYPE_BYTES)
    return [
        Phase(
            name="dw_direct",
            vector_ops=fma,
            vector_active=active,
            vmem_ops=fma + points * nch,  # input vector loads + output stores
            vmem_active=active,
            scalar_ops=3.0 * points,
            streams=(
                DataStream(
                    "input", bytes=in_bytes,
                    passes=max(1.0, spec.kh / spec.stride),
                    reuse_ws=float(spec.kh * spec.iw * spec.c * DTYPE_BYTES),
                    resident_source=True,
                ),
                DataStream("weights", bytes=w_bytes, passes=1.0, reuse_ws=w_bytes),
                DataStream("output", bytes=out_bytes, passes=1.0, is_write=True),
            ),
        )
    ]


def depthwise_gemm_phases(
    spec: DepthwiseConvSpec, hw: HardwareConfig
) -> list[Phase]:
    """im2col+GEMM applied per channel: C degenerate (1 x k^2) GEMMs.

    M = 1 kills the register blocking (the unrolled i-block holds one row),
    and every channel pays its own im2col and loop setup — the structural
    reason frameworks grew dedicated depthwise kernels.
    """
    vle = hw.vlmax_f32
    n = spec.oh * spec.ow
    k = spec.kh * spec.kw
    nj = math.ceil(n / vle)
    active = n / nj
    per_channel_fma = float(nj * k)  # M = 1
    fma = spec.c * per_channel_fma
    col_bytes = float(spec.c * k * n * DTYPE_BYTES)
    im2col = Phase(
        name="dw_im2col",
        vmem_ops=2.0 * spec.c * k * spec.oh * max(1.0, math.ceil(spec.ow / vle)),
        vmem_active=spec.ow / max(1.0, math.ceil(spec.ow / vle)),
        nonunit_fraction=0.5 if spec.stride > 1 else 0.0,
        scalar_ops=4.0 * spec.c * k * spec.oh,
        streams=(
            DataStream(
                "input", bytes=float(spec.c * spec.ih * spec.iw * DTYPE_BYTES),
                passes=float(k),
                reuse_ws=float(spec.ih * spec.iw * DTYPE_BYTES),
                resident_source=True,
            ),
            DataStream("col", bytes=col_bytes, passes=1.0, is_write=True),
        ),
    )
    gemm = Phase(
        name="dw_gemm",
        vector_ops=fma,
        vector_active=active,
        # B loads: one per (k, strip) per channel (no i-block amortization)
        vmem_ops=fma + 2.0 * spec.c * nj,
        vmem_active=active,
        scalar_ops=fma + 8.0 * spec.c,  # per-channel GEMM setup
        streams=(
            DataStream("col_read", bytes=col_bytes, passes=1.0,
                       resident_source=True),
            DataStream(
                "output", bytes=float(spec.c * n * DTYPE_BYTES), passes=1.0,
                is_write=True,
            ),
        ),
    )
    return [im2col, gemm]


def mobilenet_v1_depthwise_layers(input_size: int = 224) -> list[DepthwiseConvSpec]:
    """The 13 depthwise layers of MobileNetV1 (width multiplier 1.0)."""
    if input_size % 32:
        raise ConfigError("MobileNet input must be a multiple of 32")
    layers: list[DepthwiseConvSpec] = []
    c, hw_sp = 32, input_size // 2  # after the initial stride-2 conv
    plan = [
        (32, 1), (64, 2), (128, 1), (128, 2), (256, 1), (256, 2),
        (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (512, 2), (1024, 1),
    ]
    for i, (channels, stride) in enumerate(plan, start=1):
        layers.append(
            DepthwiseConvSpec(
                c=channels, ih=hw_sp, iw=hw_sp, stride=stride, index=i
            )
        )
        if stride == 2:
            hw_sp //= 2
    return layers
