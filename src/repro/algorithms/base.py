"""Convolution-algorithm interface.

Each algorithm provides three faces:

* ``run(spec, x, w)`` — fast functional execution (NumPy), used for
  correctness testing and network inference;
* ``run_vectorized(spec, x, w, machine)`` — the kernel written against the
  RVV intrinsics of :mod:`repro.isa`, mirroring the paper's C code loop
  structure; executable (slowly) on small shapes and traced for the
  trace-driven timing validation;
* ``schedule(spec, hw)`` — the analytical-model description (phases and data
  streams) used by the co-design experiments on full-size layers.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import NotApplicableError
from repro.isa.machine import VectorMachine
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.phases import Phase
from repro.simulator.hwconfig import HardwareConfig


class ConvAlgorithm(abc.ABC):
    """Base class for convolution implementations."""

    #: Unique registry name, e.g. ``"im2col_gemm6"``.
    name: str = "abstract"
    #: Human-readable label used in experiment tables (papers' legend names).
    label: str = "abstract"

    # ------------------------------------------------------------------ #
    # applicability
    # ------------------------------------------------------------------ #
    def applicability_reason(self, spec: ConvSpec) -> str | None:
        """None if applicable, else a human-readable reason."""
        return None

    def applicable(self, spec: ConvSpec) -> bool:
        return self.applicability_reason(spec) is None

    def check_applicable(self, spec: ConvSpec) -> None:
        reason = self.applicability_reason(spec)
        if reason is not None:
            raise NotApplicableError(f"{self.name} on {spec.describe()}: {reason}")

    # ------------------------------------------------------------------ #
    # the three faces
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def run(self, spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Functional execution: (IC,IH,IW), (OC,IC,KH,KW) -> (OC,OH,OW)."""

    @abc.abstractmethod
    def run_vectorized(
        self, spec: ConvSpec, x: np.ndarray, w: np.ndarray, machine: VectorMachine
    ) -> np.ndarray:
        """Intrinsics-level execution on the functional vector machine."""

    @abc.abstractmethod
    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        """Analytical-model schedule for a full-size layer."""

    # ------------------------------------------------------------------ #
    def conv_fn(self):
        """Adapter matching :data:`repro.nn.network.ConvFn`."""
        def fn(spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
            return self.run(spec, x, w)
        fn.__name__ = f"conv_{self.name}"
        return fn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
