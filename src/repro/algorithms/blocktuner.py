"""Analytical block-size tuning for the 6-loop GEMM.

Paper I tuned the BLIS-like blocks to 16x512x128 *for a 1 MB L2* and both
papers carry that choice across every cache size they sweep.  This module
asks the follow-up question: what does re-tuning the blocks to each cache
buy?  ``tune_blocks`` searches a small grid with the analytical model
(exactly how BLIS picks blocks from cache parameters, but empirical), and
the ``ablation-blocks`` study compares fixed-vs-tuned across the L2 sweep.
"""

from __future__ import annotations

from functools import lru_cache

from repro.algorithms.gemm_kernels import BLOCK_K, BLOCK_M, BLOCK_N, gemm6_phases
from repro.errors import ConfigError
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig

#: Candidate grid (powers of two around the paper's Table II values).
BLOCK_M_CANDIDATES: tuple[int, ...] = (16, 32)
BLOCK_N_CANDIDATES: tuple[int, ...] = (256, 512, 1024, 2048)
BLOCK_K_CANDIDATES: tuple[int, ...] = (64, 128, 256, 512)

#: The papers' fixed choice.
PAPER_BLOCKS: tuple[int, int, int] = (BLOCK_M, BLOCK_N, BLOCK_K)


def gemm6_cycles(
    m: int, k: int, n: int, hw: HardwareConfig, blocks: tuple[int, int, int]
) -> float:
    """Analytical 6-loop GEMM cycles at the given block sizes."""
    bm, bn, bk = blocks
    if min(bm, bn, bk) < 1:
        raise ConfigError(f"block sizes must be positive, got {blocks}")
    phases = gemm6_phases(m, k, n, hw, block_m=bm, block_n=bn, block_k=bk)
    return AnalyticalTimingModel(hw).evaluate("gemm6", phases).cycles


@lru_cache(maxsize=4096)
def tune_blocks(
    m: int, k: int, n: int, vlen_bits: int, l2_mib: float
) -> tuple[int, int, int]:
    """The cycle-optimal (blockM, blockN, blockK) for one GEMM and config.

    Exhaustive over the candidate grid, skipping combinations whose packed-B
    block exceeds the L2 (they always thrash).
    """
    hw = HardwareConfig.paper2_rvv(vlen_bits, l2_mib)
    best = PAPER_BLOCKS
    best_cycles = gemm6_cycles(m, k, n, hw, PAPER_BLOCKS)
    for bm in BLOCK_M_CANDIDATES:
        for bn in BLOCK_N_CANDIDATES:
            for bk in BLOCK_K_CANDIDATES:
                if bk * bn * 4 > hw.l2_bytes:
                    continue
                cycles = gemm6_cycles(m, k, n, hw, (bm, bn, bk))
                if cycles < best_cycles:
                    best, best_cycles = (bm, bn, bk), cycles
    return best


def tuned_speedup(
    m: int, k: int, n: int, hw: HardwareConfig
) -> tuple[tuple[int, int, int], float]:
    """(best blocks, fixed-blocks time / tuned time) for one GEMM."""
    blocks = tune_blocks(m, k, n, hw.vlen_bits, hw.l2_mib)
    fixed = gemm6_cycles(m, k, n, hw, PAPER_BLOCKS)
    tuned = gemm6_cycles(m, k, n, hw, blocks)
    return blocks, fixed / tuned
