"""Deprecated shim: block-size tuning now lives in :mod:`repro.schedule`.

Paper I tuned the BLIS-like blocks to 16x512x128 *for a 1 MB L2*; this
module used to search a small grid around that choice with the analytical
model.  The grid is now the 6-loop kernel template's knob space
(:func:`repro.schedule.templates.gemm6_block_candidates`) and the general
schedule search (:func:`repro.schedule.search.search_schedules`) subsumes
the tuning — per (layer, VL, L2) cell, ``im2col_gemm6@bm=..,bn=..,bk=..``
variants compete with every other schedule.

The public signatures (``gemm6_cycles``, ``tune_blocks``,
``tuned_speedup``) are kept for the ``ablation-blocks`` experiment and
downstream callers; they delegate to the template's candidate list and
emit a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from functools import lru_cache

from repro.algorithms.gemm_kernels import BLOCK_K, BLOCK_M, BLOCK_N, gemm6_phases
from repro.errors import ConfigError
from repro.simulator.analytical.model import AnalyticalTimingModel
from repro.simulator.hwconfig import HardwareConfig

#: Candidate grid (powers of two around the paper's Table II values).
#: Kept as aliases of the template grids — the single source of truth.
BLOCK_M_CANDIDATES: tuple[int, ...]
BLOCK_N_CANDIDATES: tuple[int, ...]
BLOCK_K_CANDIDATES: tuple[int, ...]

#: The papers' fixed choice.
PAPER_BLOCKS: tuple[int, int, int] = (BLOCK_M, BLOCK_N, BLOCK_K)


def __getattr__(name: str) -> tuple[int, ...]:
    # grid aliases resolve lazily: repro.schedule imports this package's
    # kernels, so a module-level import here would be circular
    if name in ("BLOCK_M_CANDIDATES", "BLOCK_N_CANDIDATES", "BLOCK_K_CANDIDATES"):
        from repro.schedule import templates as t

        return {
            "BLOCK_M_CANDIDATES": t.GEMM6_BM_GRID,
            "BLOCK_N_CANDIDATES": t.GEMM6_BN_GRID,
            "BLOCK_K_CANDIDATES": t.GEMM6_BK_GRID,
        }[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _warn_deprecated(fn: str) -> None:
    warnings.warn(
        f"repro.algorithms.blocktuner.{fn} is deprecated; use "
        f"repro.schedule.search (im2col_gemm6 block variants)",
        DeprecationWarning,
        stacklevel=3,
    )


def gemm6_cycles(
    m: int, k: int, n: int, hw: HardwareConfig, blocks: tuple[int, int, int]
) -> float:
    """Analytical 6-loop GEMM cycles at the given block sizes."""
    bm, bn, bk = blocks
    if min(bm, bn, bk) < 1:
        raise ConfigError(f"block sizes must be positive, got {blocks}")
    phases = gemm6_phases(m, k, n, hw, block_m=bm, block_n=bn, block_k=bk)
    return AnalyticalTimingModel(hw).evaluate("gemm6", phases).cycles


@lru_cache(maxsize=4096)
def _tune_blocks(
    m: int, k: int, n: int, vlen_bits: int, l2_mib: float
) -> tuple[int, int, int]:
    from repro.schedule.templates import gemm6_block_candidates

    hw = HardwareConfig.paper2_rvv(vlen_bits, l2_mib)
    candidates = gemm6_block_candidates(hw)
    best = candidates[0]  # the papers' fixed blocks
    best_cycles = gemm6_cycles(m, k, n, hw, best)
    for blocks in candidates[1:]:
        cycles = gemm6_cycles(m, k, n, hw, blocks)
        if cycles < best_cycles:
            best, best_cycles = blocks, cycles
    return best


def tune_blocks(
    m: int, k: int, n: int, vlen_bits: int, l2_mib: float
) -> tuple[int, int, int]:
    """The cycle-optimal (blockM, blockN, blockK) for one GEMM and config.

    Deprecated: exhaustive over the 6-loop template's candidate list
    (identical grid, L2 filter, iteration order and strict-improvement
    tie-break as the old standalone tuner — results are unchanged).
    """
    _warn_deprecated("tune_blocks")
    return _tune_blocks(m, k, n, vlen_bits, l2_mib)


def tuned_speedup(
    m: int, k: int, n: int, hw: HardwareConfig
) -> tuple[tuple[int, int, int], float]:
    """(best blocks, fixed-blocks time / tuned time) for one GEMM."""
    _warn_deprecated("tuned_speedup")
    blocks = _tune_blocks(m, k, n, hw.vlen_bits, hw.l2_mib)
    fixed = gemm6_cycles(m, k, n, hw, PAPER_BLOCKS)
    tuned = gemm6_cycles(m, k, n, hw, blocks)
    return blocks, fixed / tuned
