"""GEMV timing for fully connected layers.

Paper II's background: "the fully connected layers also use compute
intensive kernels similar to convolutional layers" — VGG-16 carries three
of them.  A batch-1 FC layer is a GEMV, which vectorizes over the *input*
dimension (dot products with a final reduction) rather than over N like the
conv GEMMs, and is memory-bound: every weight byte is read exactly once per
inference (arithmetic intensity ~0.5 FLOP/byte).
"""

from __future__ import annotations

import math

import numpy as np

from repro.isa.machine import VectorMachine
from repro.nn.layer import DTYPE_BYTES, ConnectedSpec
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig


def gemv_phase(spec: ConnectedSpec, hw: HardwareConfig) -> Phase:
    """Analytical cost of ``y = W x`` with (outputs, inputs) weights.

    Per output row: strip-mined FMAs over the input vector, then a
    log-depth reduction.  The weight matrix streams from DRAM (no reuse —
    batch 1), which binds the phase for all realistic sizes.
    """
    vle = hw.vlmax_f32
    m, k = spec.outputs, spec.inputs
    strips = math.ceil(k / vle)
    active = k / strips
    fma = float(m * strips)
    reductions = float(m * math.ceil(math.log2(max(2, vle))))
    w_bytes = float(m * k * DTYPE_BYTES)
    return Phase(
        name="gemv",
        vector_ops=fma + reductions,
        vector_active=active,
        vmem_ops=2.0 * fma,  # weight row strip + input strip
        vmem_active=active,
        scalar_ops=4.0 * m,
        streams=(
            DataStream("fc_weights", bytes=w_bytes, passes=1.0),
            DataStream(
                "fc_input",
                bytes=float(k * DTYPE_BYTES),
                passes=float(min(m, 64)),  # re-read per row, small ws
                reuse_ws=float(k * DTYPE_BYTES),
                resident_source=True,
            ),
            DataStream(
                "fc_output", bytes=float(m * DTYPE_BYTES), passes=1.0,
                is_write=True,
            ),
        ),
    )


def gemv_vectorized(
    machine: VectorMachine, w: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Intrinsics-level GEMV: per-row dot products with ``vredsum``."""
    m, k = w.shape
    w_buf = machine.alloc_from(f"gemv_w_{id(w) & 0xFFFF}", w)
    x_buf = machine.alloc_from(f"gemv_x_{id(x) & 0xFFFF}", x)
    out = np.empty(m, dtype=np.float32)
    for row in range(m):
        machine.scalar(2, "gemv_row")
        acc = 0.0
        i = 0
        while i < k:
            gvl = machine.vsetvl(k - i)
            machine.vload(0, w_buf, row * k + i)
            machine.vload(1, x_buf, i)
            machine.vfmul(2, 0, 1)
            acc += machine.vredsum(2)
            i += gvl
        out[row] = acc
    return out
