"""The Direct convolution algorithm (NHWC, vectorized over output channels).

Follows Paper II §3.2: the input and weights are transformed from NCHW to
NHWC before computation; the kernel is "naively" vectorized across channels,
then loop-reordered so the *output* channels/dimensions are outermost (the
3x improvement the paper reports over the naive order), with the loops over
OW unrolled to fill the register file and a vectorized tail loop.

Micro-kernel structure (as in oneDNN-style NHWC direct convolution):

    for oc_group (vector-width slice of OC):
      for oh, ow-block (unrolled):
        acc[uw][noc] = 0
        for ic, kh, kw:
          wvec  = weights[kh, kw, ic, oc_group]        # unit-stride load
          for each unrolled ow:  acc += x[ih, iw, ic] * wvec   # vfmacc.vf
        store acc -> out[oh, ow, oc_group]
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.algorithms.base import ConvAlgorithm
from repro.errors import ConfigError
from repro.isa.machine import VectorMachine
from repro.nn.layer import DTYPE_BYTES, ConvSpec
from repro.nn.reference import pad_input
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

#: Register budget for output accumulators (32 regs minus weight/scratch).
_ACC_REGS = 24


def _unroll_ow(ow: int, cap: int = _ACC_REGS) -> int:
    """Unroll factor over OW, bounded by the accumulator-register budget.

    The kernel loops OC in vector-register-wide groups (outermost), so each
    unrolled output point holds one accumulator register regardless of OC.
    ``cap`` is the schedulable knob (the paper's hand-chosen value is the
    full :data:`_ACC_REGS` budget); the schedule IR searches over it.
    """
    return max(1, min(ow, cap, _ACC_REGS))


class DirectConv(ConvAlgorithm):
    """NHWC direct convolution, vectorized over OC.

    ``unroll_ow`` caps the output-row unroll factor (default: the full
    accumulator budget, the paper's hand-chosen schedule).  Non-default
    values are produced by :mod:`repro.schedule` variants; all three faces
    (functional, traced, analytical) honour the same cap.
    """

    name = "direct"
    label = "Direct"

    def __init__(self, unroll_ow: int = _ACC_REGS) -> None:
        if unroll_ow < 1:
            raise ConfigError(f"unroll_ow must be >= 1, got {unroll_ow}")
        self.unroll_ow = unroll_ow

    # ------------------------------------------------------------------ #
    def run(self, spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Functional NHWC direct convolution.

        Transforms to NHWC, accumulates per kernel offset with the channel
        contraction innermost (the NHWC dataflow), transforms back.
        """
        spec.validate_input(x.shape)
        xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
        x_nhwc = np.ascontiguousarray(xp.transpose(1, 2, 0))  # (H, W, IC)
        w_hwio = np.ascontiguousarray(w.transpose(2, 3, 1, 0))  # (KH, KW, IC, OC)
        oh, ow, s = spec.oh, spec.ow, spec.stride
        # Cast once up front: the per-tap astype() calls re-copied the full
        # tensors KH*KW times.
        x64 = x_nhwc.astype(np.float64)
        w64 = w_hwio.astype(np.float64)
        out = np.zeros((oh, ow, spec.oc), dtype=np.float64)
        for dh in range(spec.kh):
            for dw in range(spec.kw):
                window = x64[dh : dh + s * oh : s, dw : dw + s * ow : s, :]
                out += window @ w64[dh, dw]
        return np.ascontiguousarray(out.transpose(2, 0, 1)).astype(np.float32)

    # ------------------------------------------------------------------ #
    def run_vectorized(
        self, spec: ConvSpec, x: np.ndarray, w: np.ndarray, machine: VectorMachine
    ) -> np.ndarray:
        """Intrinsics-level NHWC direct kernel (batched fast path).

        Produces the exact observable behaviour of
        :meth:`run_vectorized_perop` — bit-identical outputs, identical
        per-category instruction counts, and the same ordered memory-op
        address stream — but computes the accumulators with whole-plane
        NumPy FMAs (one per kernel tap, preserving the per-op accumulation
        order elementwise) and emits the trace in batched columnar writes.
        Vector-register *contents* after the call are unspecified; nothing
        the cache/timing simulators consume differs.  With
        ``trace="counts"`` this path handles real VGG-16 layer shapes.
        """
        spec.validate_input(x.shape)
        with obs.span("direct.pack", cat="kernel"):
            xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
            x_host = np.ascontiguousarray(xp.transpose(1, 2, 0))  # (PH, PW, IC)
            w_host = np.ascontiguousarray(w.transpose(2, 3, 1, 0))  # (KH,KW,IC,OC)
            x_nhwc = machine.alloc_from("direct_x", x_host, unique=True)
            w_hwio = machine.alloc_from("direct_w", w_host, unique=True)
            out = machine.alloc(
                "direct_y", spec.oh * spec.ow * spec.oc, np.float32, unique=True
            )
        ic, oc, s = spec.ic, spec.oc, spec.stride
        oh, ow, kh, kw = spec.oh, spec.ow, spec.kh, spec.kw
        # -- functional compute: one whole-plane FMA per kernel tap -------- #
        # Tap order (c, dh, dw) matches the per-op loop nest; float32
        # products/adds are elementwise, so every output element sees the
        # per-op rounding sequence exactly.
        with obs.span("direct.gemm", cat="kernel"):
            acc = np.zeros((oh, ow, oc), dtype=np.float32)
            for c in range(ic):
                xc = x_host[:, :, c]
                for dh in range(kh):
                    for dw in range(kw):
                        window = xc[dh : dh + s * oh : s, dw : dw + s * ow : s]
                        acc += window[:, :, None] * w_host[dh, dw, c][None, None, :]
            out.array[:] = acc.reshape(-1)
        # -- trace emission: batched, same counts and address stream ------ #
        with obs.span("direct.emit", cat="kernel"):
            elem = out.array.itemsize
            # weight-load element offsets in tap order (constant per OC group)
            hw_grid = np.tile(np.arange(kh * kw, dtype=np.int64), ic)
            c_grid = np.repeat(np.arange(ic, dtype=np.int64), kh * kw)
            woffs = (hw_grid * ic + c_grid) * oc
            ntaps = woffs.size
            trace = machine.trace
            uw = _unroll_ow(ow, self.unroll_ow)
            for oc0 in range(0, oc, machine.vlmax()):
                gvl = machine.vsetvl(oc - oc0)
                w_bases = w_hwio.base + (woffs + oc0) * elem
                for oy in range(oh):
                    for ox0 in range(0, ow, uw):
                        u = min(uw, ow - ox0)
                        trace.emit_scalar("loop_owb", 3)
                        trace.emit_vector("vfmv", gvl, 32, u)
                        trace.emit_scalar("loop_k", 2 * ntaps)
                        trace.emit_scalar("x_load", u * ntaps)
                        trace.emit_memory_rows("vle", w_bases, elem, gvl, elem, False)
                        trace.emit_vector("vfmacc.vf", gvl, 32, u * ntaps)
                        store_offs = (
                            oy * ow + ox0 + np.arange(u, dtype=np.int64)
                        ) * oc + oc0
                        trace.emit_memory_rows(
                            "vse", out.base + store_offs * elem, elem, gvl, elem, True
                        )
        with obs.span("direct.unpack", cat="kernel"):
            result = out.array.reshape(oh, ow, oc)
            return np.ascontiguousarray(result.transpose(2, 0, 1))

    # ------------------------------------------------------------------ #
    def run_vectorized_perop(
        self, spec: ConvSpec, x: np.ndarray, w: np.ndarray, machine: VectorMachine
    ) -> np.ndarray:
        """Per-op reference kernel: one Python call per RVV instruction.

        This is the instruction-level specification that
        :meth:`run_vectorized` must reproduce; the trace-equivalence tests
        diff the two.  Small shapes only.
        """
        spec.validate_input(x.shape)
        xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
        ph, pw = xp.shape[1], xp.shape[2]
        x_nhwc = machine.alloc_from(
            "direct_x", np.ascontiguousarray(xp.transpose(1, 2, 0)), unique=True
        )
        w_hwio = machine.alloc_from(
            "direct_w", np.ascontiguousarray(w.transpose(2, 3, 1, 0)), unique=True
        )
        out = machine.alloc(
            "direct_y", spec.oh * spec.ow * spec.oc, np.float32, unique=True
        )
        ic, oc, s = spec.ic, spec.oc, spec.stride
        oh, ow = spec.oh, spec.ow
        xarr = x_nhwc.array
        for oc0 in range(0, oc, machine.vlmax()):
            gvl = machine.vsetvl(oc - oc0)
            uw = _unroll_ow(ow, self.unroll_ow)
            for oy in range(oh):
                for ox0 in range(0, ow, uw):
                    u = min(uw, ow - ox0)
                    machine.scalar(3, "loop_owb")
                    for it in range(u):
                        machine.vbroadcast(1 + it, 0.0)
                    for c in range(ic):
                        for dh in range(spec.kh):
                            for dw in range(spec.kw):
                                machine.scalar(2, "loop_k")
                                woff = ((dh * spec.kw + dw) * ic + c) * oc + oc0
                                machine.vload(0, w_hwio, woff, vl=gvl)
                                for it in range(u):
                                    iy = oy * s + dh
                                    ix = (ox0 + it) * s + dw
                                    machine.scalar(1, "x_load")
                                    machine.vfmacc_vf(
                                        1 + it,
                                        float(xarr[(iy * pw + ix) * ic + c]),
                                        0,
                                    )
                    for it in range(u):
                        machine.vstore(
                            1 + it, out, (oy * ow + ox0 + it) * oc + oc0, vl=gvl
                        )
        result = out.array.reshape(oh, ow, oc)
        return np.ascontiguousarray(result.transpose(2, 0, 1))

    # ------------------------------------------------------------------ #
    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        """Analytical schedule: layout transforms + NHWC micro-kernel.

        Key co-design interactions encoded here:

        * lane utilization is capped by OC (``active = OC / ceil(OC/VL)``) —
          Direct scales with the vector length only while OC fills it;
        * per OC-group, the weight panel (``K * group`` bytes) is re-read for
          every output row block with a reuse window that grows with the
          vector length — Direct is the algorithm that benefits most from a
          larger L2 at long vector lengths (paper §4.2.2);
        * no im2col materialization: compulsory traffic is just the tensors.
        """
        vle = hw.vlmax_f32
        ic, oc = spec.ic, spec.oc
        oh, ow = spec.oh, spec.ow
        k_taps = spec.kh * spec.kw * ic

        noc = math.ceil(oc / vle)
        active_oc = oc / noc
        uw = _unroll_ow(ow, self.unroll_ow)
        owb = math.ceil(ow / uw)

        # --- layout phase: NCHW->NHWC input + weights ---------------------- #
        # Outputs remain NHWC (the back-transform pipelines with the next
        # layer's input transform and is not charged per layer, matching the
        # paper's per-layer Direct measurements).
        in_elems = float(ic * spec.ih * spec.iw)
        out_elems = float(oc * oh * ow)
        w_elems = float(oc * k_taps)
        layout = Phase(
            name="direct_layout",
            vmem_ops=2.0 * (in_elems + w_elems) / vle,
            vmem_active=float(vle),
            nonunit_fraction=0.5,
            scalar_ops=2.0 * (spec.ih * ic),
            streams=(
                DataStream(
                    "input_nchw", bytes=in_elems * DTYPE_BYTES, passes=1.0,
                    resident_source=True,
                ),
                DataStream(
                    "input_nhwc", bytes=in_elems * DTYPE_BYTES, passes=1.0,
                    is_write=True,
                ),
                DataStream("weights_oihw", bytes=w_elems * DTYPE_BYTES, passes=1.0),
                DataStream(
                    "weights_hwio", bytes=w_elems * DTYPE_BYTES, passes=1.0,
                    is_write=True,
                ),
            ),
        )

        # --- micro-kernel phase ------------------------------------------ #
        # OC-group outermost: per group, ``uw`` accumulator registers sweep
        # the row; each (ic, kh, kw) tap loads one weight vector and issues
        # ``uw`` vector-scalar FMAs fed by scalar input loads.
        fma = float(noc * oh * owb * uw * k_taps)
        w_loads = float(noc * oh * owb * k_taps)
        out_stores = float(oh * ow * noc)
        # each FMA broadcasts one input scalar; with NHWC, spatially
        # neighbouring broadcasts are IC*4 bytes apart, so wide layers lose
        # line locality and L1-bank overlap on the scalar pipe (the saturation
        # scale of 64 channels is calibrated to the paper's Figs. 1-2)
        bcast_cost = 1.0 + min(1.0, ic / 64.0)
        scalar = bcast_cost * fma + 2.0 * noc * oh * owb * k_taps

        w_bytes = w_elems * DTYPE_BYTES
        group_w_ws = float(k_taps * min(oc, vle) * DTYPE_BYTES)
        in_bytes = in_elems * DTYPE_BYTES
        row_ws = float(spec.kh * spec.iw * ic * DTYPE_BYTES)

        # Two canonical tilings of the (oc-group, oh) loops; the optimized
        # kernel (loop reorder + blocking, Paper II §3.2) effectively picks
        # the one that re-streams the smaller tensor:
        #   row-major: rows outer — whole weight tensor swept per row, input
        #     reused at row granularity;
        #   group-major: OC-groups outer — per-group weight panel swept per
        #     row (the panel grows with the vector length: the Direct x L2
        #     co-design interaction), input re-read once per group.
        row_major = (
            DataStream("weights", bytes=w_bytes, passes=float(oh), reuse_ws=w_bytes),
            DataStream(
                "input",
                bytes=in_bytes,
                passes=max(1.0, spec.kh / spec.stride),
                reuse_ws=row_ws + group_w_ws,
                scalar_access=True,
                resident_source=True,
            ),
        )
        group_major = (
            DataStream(
                "weights", bytes=w_bytes, passes=float(oh), reuse_ws=group_w_ws
            ),
            DataStream(
                "input",
                bytes=in_bytes,
                passes=float(noc) + max(0.0, spec.kh / spec.stride - 1.0),
                reuse_ws=in_bytes,
                scalar_access=True,
                resident_source=True,
            ),
        )

        def _order_cost(streams) -> float:
            from repro.simulator.analytical.cachemodel import stream_dram_bytes

            return sum(stream_dram_bytes(s, hw) for s in streams)

        chosen = min(row_major, group_major, key=_order_cost)
        kernel = Phase(
            name="direct_kernel",
            vector_ops=fma,
            vector_active=active_oc,
            vmem_ops=w_loads + out_stores,
            vmem_active=active_oc,
            scalar_ops=scalar,
            streams=chosen
            + (
                DataStream(
                    "output", bytes=out_elems * DTYPE_BYTES, passes=1.0, is_write=True
                ),
            ),
        )
        return [layout, kernel]
