"""GEMM kernels: naive, optimized 3-loop, and BLIS-like 6-loop.

These mirror the paper's Paper I pseudocode exactly:

* :func:`gemm_naive` — Fig. 1 (the Darknet baseline, ijk scalar loops);
* :func:`gemm3_vectorized` — Fig. 2: jik order, ``vsetvl`` strip-mining over
  N, loop unrolling by ``U = 16`` over M, one vector-scalar FMA per (it, k);
* :func:`gemm6_vectorized` — Fig. 3: blocking (``blockM x blockN x blockK``,
  tuned to 16 x 512 x 128 as in Paper I Table II), packing of A and B for
  contiguous inner-loop accesses, software-prefetch markers, and the same
  vectorized micro-kernel.

Each also has an analytical schedule builder used on full-size layers.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.errors import ConfigError, ShapeError
from repro.isa.machine import Buffer, VectorMachine
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

#: Loop-unroll factor over M (Paper I: no gain beyond 16 registers on RVV).
UNROLL = 16

#: Hard register-budget cap on the 3-loop unroll: 32 architectural vector
#: registers minus the B vector and scratch.
MAX_UNROLL = 28

#: BLIS-like block sizes (Paper I Table II optimum / Paper II §3.2).
BLOCK_M = 16
BLOCK_N = 512
BLOCK_K = 128

_DTYPE_BYTES = 4


def _check_unroll(unroll: int) -> None:
    """Validate a 3-loop unroll factor against the register file.

    ``unroll`` accumulators plus the B vector (v0) and scratch must fit the
    32 architectural vector registers.
    """
    if not 1 <= unroll <= MAX_UNROLL:
        raise ConfigError(
            f"gemm3 unroll must be in [1, {MAX_UNROLL}], got {unroll}"
        )


def _check_gemm(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int]:
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"GEMM shape mismatch: {a.shape} x {b.shape}")
    return a.shape[0], a.shape[1], b.shape[1]


# --------------------------------------------------------------------- #
# functional kernels
# --------------------------------------------------------------------- #
def gemm_naive(a: np.ndarray, b: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """The Darknet baseline (Fig. 1): C = alpha * A @ B, scalar loop order.

    Functionally evaluated with NumPy (looping 10^8 times in Python would be
    pointless); the *naive* structure matters only for the timing model.
    """
    _check_gemm(a, b)
    return (alpha * (a.astype(np.float32) @ b.astype(np.float32))).astype(np.float32)


def gemm_functional(a: np.ndarray, b: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Fast functional GEMM shared by the optimized variants' ``run`` path."""
    return gemm_naive(a, b, alpha)


# --------------------------------------------------------------------- #
# intrinsics kernels
# --------------------------------------------------------------------- #
def _scale_a_rows(a: np.ndarray, i0: int, u: int, k: int, alpha: float) -> np.ndarray:
    """``float32(alpha * float64(A[i0:i0+u, :]))`` — the exact scalar operand
    sequence of the per-op loop (``alpha * float(a[..])`` is a float64
    product, rounded to float32 by ``vfmacc_vf``)."""
    rows = a[i0 * k : (i0 + u) * k].reshape(u, k).astype(np.float64)
    return (np.float64(alpha) * rows).astype(np.float32)


def gemm3_vectorized(
    machine: VectorMachine,
    a_buf: Buffer,
    b_buf: Buffer,
    c_buf: Buffer,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    unroll: int = UNROLL,
) -> None:
    """Optimized 3-loop GEMM (Paper I Fig. 2) on the vector machine.

    Register map: v0 holds the B vector; v1..v``unroll`` hold the C
    accumulators of the unrolled i-block.  C is assumed zero-initialised
    (Darknet's GEMM is ``C += alpha*A*B`` with C pre-zeroed by
    ``fill_cpu``).  ``unroll`` is the schedulable knob searched by
    :mod:`repro.schedule` (default: the paper's 16).

    Batched fast path: the unrolled i-block issues one ``*_seq`` intrinsic
    per block instead of one call per register — bit-identical results and
    trace to :func:`gemm3_vectorized_perop`.
    """
    _check_unroll(unroll)
    a = a_buf.array
    j = 0
    while j < n:
        gvl = machine.vsetvl(n - j)
        for i0 in range(0, m, unroll):
            u = min(unroll, m - i0)
            machine.scalar(2, "loop_i")
            rows = (i0 + np.arange(u, dtype=np.int64)) * n + j
            machine.vload_seq(1, c_buf, rows)
            a_scaled = _scale_a_rows(a, i0, u, k, alpha)
            for kk in range(k):
                machine.scalar(2, "loop_k")
                machine.vload(0, b_buf, kk * n + j)
                machine.scalar(u, "a_load")
                machine.vfmacc_vf_seq(1, a_scaled[:, kk], 0)
            machine.vstore_seq(1, c_buf, rows)
        j += gvl


def gemm3_vectorized_perop(
    machine: VectorMachine,
    a_buf: Buffer,
    b_buf: Buffer,
    c_buf: Buffer,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    unroll: int = UNROLL,
) -> None:
    """Per-op reference for :func:`gemm3_vectorized` (one call per instr)."""
    _check_unroll(unroll)
    a = a_buf.array
    j = 0
    while j < n:
        gvl = machine.vsetvl(n - j)
        for i0 in range(0, m, unroll):
            u = min(unroll, m - i0)
            machine.scalar(2, "loop_i")
            for it in range(u):
                machine.vload(1 + it, c_buf, (i0 + it) * n + j)
            for kk in range(k):
                machine.scalar(2, "loop_k")
                machine.vload(0, b_buf, kk * n + j)
                for it in range(u):
                    machine.scalar(1, "a_load")
                    machine.vfmacc_vf(1 + it, alpha * float(a[(i0 + it) * k + kk]), 0)
            for it in range(u):
                machine.vstore(1 + it, c_buf, (i0 + it) * n + j)
        j += gvl


def _pack_b_block(
    machine: VectorMachine,
    b_buf: Buffer,
    packed: Buffer,
    k0: int,
    kb: int,
    j0: int,
    jb: int,
    n: int,
) -> None:
    """Pack B[k0:k0+kb, j0:j0+jb] row-major into ``packed`` (batched)."""
    for kk in range(kb):
        machine.scalar(2, "pack_b_loop")
        machine.vcopy_strips(b_buf, (k0 + kk) * n + j0, packed, kk * jb, jb)


def _pack_a_block(
    machine: VectorMachine,
    a_buf: Buffer,
    packed: Buffer,
    i0: int,
    ib: int,
    k0: int,
    kb: int,
    k: int,
) -> None:
    """Pack A[i0:i0+ib, k0:k0+kb] row-major into ``packed`` (batched)."""
    for it in range(ib):
        machine.scalar(2, "pack_a_loop")
        machine.vcopy_strips(a_buf, (i0 + it) * k + k0, packed, it * kb, kb)


def _pack_b_block_perop(
    machine: VectorMachine,
    b_buf: Buffer,
    packed: Buffer,
    k0: int,
    kb: int,
    j0: int,
    jb: int,
    n: int,
) -> None:
    """Per-op reference for :func:`_pack_b_block`."""
    for kk in range(kb):
        machine.scalar(2, "pack_b_loop")
        src = (k0 + kk) * n + j0
        dst = kk * jb
        jj = 0
        while jj < jb:
            gvl = machine.vsetvl(jb - jj)
            machine.vload(0, b_buf, src + jj)
            machine.vstore(0, packed, dst + jj)
            jj += gvl


def _pack_a_block_perop(
    machine: VectorMachine,
    a_buf: Buffer,
    packed: Buffer,
    i0: int,
    ib: int,
    k0: int,
    kb: int,
    k: int,
) -> None:
    """Per-op reference for :func:`_pack_a_block`."""
    for it in range(ib):
        machine.scalar(2, "pack_a_loop")
        src = (i0 + it) * k + k0
        dst = it * kb
        kk = 0
        while kk < kb:
            gvl = machine.vsetvl(kb - kk)
            machine.vload(0, a_buf, src + kk)
            machine.vstore(0, packed, dst + kk)
            kk += gvl


def gemm6_vectorized(
    machine: VectorMachine,
    a_buf: Buffer,
    b_buf: Buffer,
    c_buf: Buffer,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    block_m: int = BLOCK_M,
    block_n: int = BLOCK_N,
    block_k: int = BLOCK_K,
) -> None:
    """BLIS-like 6-loop GEMM (Paper I Fig. 3) on the vector machine.

    Prefetch intents are recorded as named scalar markers — the RVV toolchain
    of the paper ignores them (no Zicbop) and so does the decoupled timing
    model; platforms with prefetch benefit through the latency model instead.

    Batched fast path: packing rows go through
    :meth:`~repro.isa.machine.VectorMachine.vcopy_strips` and the micro-kernel
    through the ``*_seq`` intrinsics — bit-identical results and trace to
    :func:`gemm6_vectorized_perop`.
    """
    packed_b = machine.alloc("packB", block_k * block_n, np.float32, unique=True)
    packed_a = machine.alloc("packA", block_m * block_k, np.float32, unique=True)
    for j1 in range(0, n, block_n):
        jb = min(block_n, n - j1)
        for k1 in range(0, k, block_k):
            kb = min(block_k, k - k1)
            with obs.span("gemm6.pack_b", cat="kernel"):
                _pack_b_block(machine, b_buf, packed_b, k1, kb, j1, jb, n)
            for i1 in range(0, m, block_m):
                ib = min(block_m, m - i1)
                with obs.span("gemm6.pack_a", cat="kernel"):
                    _pack_a_block(machine, a_buf, packed_a, i1, ib, k1, kb, k)
                pa_scaled = _scale_a_rows(packed_a.array, 0, ib, kb, alpha)
                j = 0
                while j < jb:
                    gvl = machine.vsetvl(jb - j)
                    machine.scalar(3, "prefetch_c")
                    rows = (i1 + np.arange(ib, dtype=np.int64)) * n + j1 + j
                    machine.vload_seq(1, c_buf, rows)
                    for kk in range(kb):
                        machine.scalar(2, "prefetch_ab")
                        machine.vload(0, packed_b, kk * jb + j)
                        machine.scalar(ib, "a_load")
                        machine.vfmacc_vf_seq(1, pa_scaled[:, kk], 0)
                    machine.vstore_seq(1, c_buf, rows)
                    j += gvl


def gemm6_vectorized_perop(
    machine: VectorMachine,
    a_buf: Buffer,
    b_buf: Buffer,
    c_buf: Buffer,
    m: int,
    k: int,
    n: int,
    alpha: float = 1.0,
    block_m: int = BLOCK_M,
    block_n: int = BLOCK_N,
    block_k: int = BLOCK_K,
) -> None:
    """Per-op reference for :func:`gemm6_vectorized` (one call per instr)."""
    packed_b = machine.alloc("packB", block_k * block_n, np.float32, unique=True)
    packed_a = machine.alloc("packA", block_m * block_k, np.float32, unique=True)
    for j1 in range(0, n, block_n):
        jb = min(block_n, n - j1)
        for k1 in range(0, k, block_k):
            kb = min(block_k, k - k1)
            _pack_b_block_perop(machine, b_buf, packed_b, k1, kb, j1, jb, n)
            for i1 in range(0, m, block_m):
                ib = min(block_m, m - i1)
                _pack_a_block_perop(machine, a_buf, packed_a, i1, ib, k1, kb, k)
                pa = packed_a.array
                j = 0
                while j < jb:
                    gvl = machine.vsetvl(jb - j)
                    machine.scalar(3, "prefetch_c")
                    for it in range(ib):
                        machine.vload(1 + it, c_buf, (i1 + it) * n + j1 + j)
                    for kk in range(kb):
                        machine.scalar(2, "prefetch_ab")
                        machine.vload(0, packed_b, kk * jb + j)
                        for it in range(ib):
                            machine.scalar(1, "a_load")
                            machine.vfmacc_vf(
                                1 + it, alpha * float(pa[it * kb + kk]), 0
                            )
                    for it in range(ib):
                        machine.vstore(1 + it, c_buf, (i1 + it) * n + j1 + j)
                    j += gvl


# --------------------------------------------------------------------- #
# analytical schedules
# --------------------------------------------------------------------- #
def gemm3_phase(
    m: int,
    k: int,
    n: int,
    hw: HardwareConfig,
    b_name: str = "col",
    unroll: int = UNROLL,
) -> Phase:
    """Analytical cost of the 3-loop GEMM macro-kernel.

    The load-bearing interaction: the reuse window of the B (column-matrix)
    slice between unrolled i-blocks is ``K * gvl`` elements — it *grows with
    the vector length*, so longer vectors raise the L2 miss rate exactly as
    the paper's Table III reports.  ``unroll`` is the schedulable i-block
    unroll factor (default: the paper's 16); the LMUL register-budget cap
    below applies on top of it.
    """
    _check_unroll(unroll)
    vle = hw.vlmax_f32
    nj = math.ceil(n / vle)
    active = n / nj
    # LMUL register grouping shrinks the architectural register count from
    # 32 to 32/LMUL groups, strangling the unroll (the accumulators of
    # Paper I Fig. 2 need one group each) and with it the B reuse per load
    unroll = max(1, min(unroll, 32 // getattr(hw, "lmul", 1) - 4))
    mb = math.ceil(m / unroll)
    fma = float(nj * k * m)
    b_loads = float(nj * k * mb)
    c_ops = 2.0 * nj * m
    b_bytes = float(k * n * _DTYPE_BYTES)
    return Phase(
        name="gemm3",
        vector_ops=fma,
        vector_active=active,
        vmem_ops=b_loads + c_ops,
        vmem_active=active,
        scalar_ops=fma + 2.0 * nj * mb * k,
        streams=(
            DataStream(
                # A elements feed the vector-scalar FMAs through scalar
                # loads: a thrashing A panel stalls the in-order front end
                "A_weights",
                bytes=float(m * k * _DTYPE_BYTES),
                passes=float(nj),
                reuse_ws=float(m * k * _DTYPE_BYTES),
                scalar_access=True,
            ),
            DataStream(
                # the column matrix was just produced by im2col (or is the
                # previous layer's output for 1x1 convolutions)
                b_name,
                bytes=b_bytes,
                passes=float(mb),
                reuse_ws=float(k * vle * _DTYPE_BYTES),
                resident_source=True,
            ),
            DataStream("C_read", bytes=float(m * n * _DTYPE_BYTES), passes=1.0),
            DataStream(
                "C_write", bytes=float(m * n * _DTYPE_BYTES), passes=1.0, is_write=True
            ),
        ),
    )


def gemm6_phases(
    m: int,
    k: int,
    n: int,
    hw: HardwareConfig,
    b_name: str = "col",
    block_m: int = BLOCK_M,
    block_n: int = BLOCK_N,
    block_k: int = BLOCK_K,
) -> list[Phase]:
    """Analytical cost of the 6-loop GEMM (packing + blocked macro-kernel).

    Block sizes are fixed at the paper's tuned 16x512x128 (chosen for a 1 MB
    L2): the packed-B block (256 KB) stays L2-resident, A panels stay
    L1-resident, and C is re-streamed once per K-block.
    """
    vle = hw.vlmax_f32
    nb = math.ceil(n / block_n)
    kbk = math.ceil(k / block_k)
    mb = math.ceil(m / block_m)

    # inner j-strips, tail-aware: full j1-blocks plus the ragged last block
    full_blocks, tail = divmod(n, block_n)
    total_strips = full_blocks * math.ceil(block_n / vle)
    if tail:
        total_strips += math.ceil(tail / vle)
    active = n / total_strips

    fma = float(total_strips * k * m)
    b_inner_loads = float(total_strips * k * mb)
    # C loads+stores happen per (strip, i-row) for every K-block pass
    c_ops = 2.0 * total_strips * m

    pack_b_vmem = 2.0 * k * n / vle + k * nb
    pack_a_vmem = 2.0 * m * k * nb / vle + m * nb * kbk

    bytes_b = float(k * n * _DTYPE_BYTES)
    bytes_a = float(m * k * _DTYPE_BYTES)
    bytes_c = float(m * n * _DTYPE_BYTES)
    packed_block_ws = float(block_k * block_n * _DTYPE_BYTES)
    c_reuse_ws = float((m + block_k) * min(n, block_n) * _DTYPE_BYTES)

    packing = Phase(
        name="gemm6_pack",
        vmem_ops=pack_b_vmem + pack_a_vmem,
        vmem_active=float(min(vle, block_n)),
        nonunit_fraction=0.1,
        scalar_ops=2.0 * (k * nb + m * nb * kbk),
        streams=(
            DataStream(b_name, bytes=bytes_b, passes=1.0, resident_source=True),
            DataStream("packedB_write", bytes=bytes_b, passes=1.0, is_write=True),
            DataStream("A_src", bytes=bytes_a, passes=float(nb), reuse_ws=bytes_a),
            DataStream(
                "packedA",
                bytes=float(block_m * block_k * _DTYPE_BYTES),
                passes=float(2 * nb * kbk * mb),
                reuse_ws=float(block_m * block_k * _DTYPE_BYTES),
                is_write=True,
            ),
        ),
    )
    kernel = Phase(
        name="gemm6_kernel",
        vector_ops=fma,
        vector_active=active,
        vmem_ops=b_inner_loads + c_ops * kbk,
        vmem_active=active,
        scalar_ops=fma + 3.0 * total_strips * mb * k,
        streams=(
            DataStream(
                "packedB_read",
                bytes=bytes_b,
                passes=float(mb),
                reuse_ws=packed_block_ws,
                resident_source=True,
            ),
            DataStream("C_read", bytes=bytes_c, passes=float(kbk), reuse_ws=c_reuse_ws),
            DataStream(
                "C_write",
                bytes=bytes_c,
                passes=float(kbk),
                reuse_ws=c_reuse_ws,
                is_write=True,
            ),
        ),
    )
    return [packing, kernel]


def gemm_naive_phase(m: int, k: int, n: int, hw: HardwareConfig) -> Phase:
    """Analytical cost of the scalar Darknet GEMM (baseline comparisons)."""
    fma_scalar = float(m) * k * n
    return Phase(
        name="gemm_naive",
        scalar_ops=4.0 * fma_scalar,
        streams=(
            DataStream("A", bytes=float(m * k * _DTYPE_BYTES), passes=1.0),
            DataStream(
                "B",
                bytes=float(k * n * _DTYPE_BYTES),
                passes=float(m),
                reuse_ws=float(k * n * _DTYPE_BYTES),
            ),
            DataStream(
                "C", bytes=float(m * n * _DTYPE_BYTES), passes=1.0, is_write=True
            ),
        ),
    )
