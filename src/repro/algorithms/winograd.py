"""Winograd F(6x6, 3x3) convolution with inter-tile channel parallelism.

Reproduces the paper's NNPACK-derived Winograd kernel (Paper I §IV-B,
Paper II §3.2):

* fixed 8x8 input tiles producing 6x6 outputs — larger tiles would lose
  fp32 accuracy, so the tile size never grows with the vector length;
* **inter-tile parallelism**: to feed long vectors, the input/output
  transforms pack one 8x8 tile *per channel*, 4 elements per half-row, so a
  vector of ``VL`` bits spans ``VL/128`` channels (4 channels at 512 bits,
  16 at 2048 bits — Fig. 2.1 of the thesis); the scheme needs at least 4
  channels, which is why it degrades on 3-channel first layers;
* the tuple (element-wise tile) multiplication is vectorized over the 64
  tile positions — bounded at 64 f32 = 2048 bits, which is why Winograd
  stops scaling beyond 2048-bit vectors (Paper II §4.2.1);
* the weight transform is charged online by default (Paper II's serving
  setting) or hoisted offline (``online_weight_transform=False``, Paper I's
  inference study);
* tuple/transform memory costs depend on the ISA: ARM-SVE's zip/transpose
  intrinsics enable register blocking, RVV's missing permutes force the
  buffer+gather workaround of Paper I §VII (``HardwareConfig.isa``).

Applicability follows Paper II by default: 3x3 kernels with stride 1.
``allow_strided=True`` reproduces Paper I's stride-2 treatment (compute at
stride 1, subsample — measurably slower than im2col+GEMM).
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.algorithms.base import ConvAlgorithm
from repro.algorithms.winograd_transforms import f63
from repro.isa.machine import Buffer, VectorMachine
from repro.nn.layer import DTYPE_BYTES, ConvSpec
from repro.nn.reference import pad_input
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

#: Output tile (m), filter taps (r), input tile (alpha).
TILE_M = 6
TILE_R = 3
TILE_ALPHA = 8
#: Tile positions in the element-wise (tuple) multiplication.
TUPLE_ELEMS = TILE_ALPHA * TILE_ALPHA  # 64 -> caps useful VL at 2048 bits
#: Elements per channel half-row in the packed inter-tile layout.
PACK_ELEMS = 4
#: Minimum channels for the inter-tile vector path.
MIN_CHANNELS = 4

#: Vector-arithmetic instruction counts of one packed transform group
#: (two buffers, two 8x8 linear-combination stages + repack arithmetic:
#: 2 stages x 2 half-buffers x 8 rows x ~8 FMAs, plus transpose shuffles).
INPUT_TRANSFORM_OPS = 280.0
OUTPUT_TRANSFORM_OPS = 230.0
#: Vector memory ops per transform group (pack + repack + store).
TRANSFORM_VMEM_OPS = 40.0
#: Scalar bookkeeping per (tile, channel) in the packing loops
#: (Paper I Fig. 4, lines 9-16).
PACK_SCALARS = 6.0
#: Tile block size amortizing transformed-weight (V) reuse in tuple GEMM.
TILE_BLOCK = 64
#: Vector memory instructions per tuple FMA (U + V loads, partially
#: amortized by the 4-element micro-blocking of the paper's scheme) on RVV,
#: where the missing permute/zip intrinsics force temporary buffers and
#: gather loads (Paper I §VII).
TUPLE_VMEM_PER_FMA = 1.6
#: On ARM-SVE the zip/transpose intrinsics enable register blocking in the
#: tuple stage: far fewer memory operations per FMA.
TUPLE_VMEM_PER_FMA_SVE = 0.6


def tile_counts(spec: ConvSpec) -> tuple[int, int]:
    """(tiles_y, tiles_x): 6x6 output tiles covering the output plane."""
    return math.ceil(spec.oh / TILE_M), math.ceil(spec.ow / TILE_M)


class WinogradConv(ConvAlgorithm):
    """F(6x6, 3x3) Winograd with inter-tile channel vectorization.

    ``online_weight_transform`` controls whether the G g G^T weight transform
    is charged per layer execution.  Paper II's model-serving setting keeps
    weights in the framework's native layout and transforms at layer entry
    (the IC*OC-quadratic term that makes Winograd uncompetitive on deep,
    high-channel layers); Paper I's inference study hoists it offline —
    the Paper I extension experiments pass ``False``.
    """

    name = "winograd"
    label = "Winograd"

    def __init__(
        self,
        online_weight_transform: bool = True,
        allow_strided: bool = False,
    ) -> None:
        self.online_weight_transform = online_weight_transform
        #: Paper I evaluated stride-2 3x3 layers with Winograd by computing
        #: the stride-1 result and subsampling — ~4x wasted tile work, which
        #: is why it measured 1.4x *slower* than im2col+GEMM there.  Paper II
        #: therefore treats stride 2 as inapplicable (the default here).
        self.allow_strided = allow_strided

    # ------------------------------------------------------------------ #
    def applicability_reason(self, spec: ConvSpec) -> str | None:
        if (spec.kh, spec.kw) != (TILE_R, TILE_R):
            return f"requires 3x3 kernels, got {spec.kh}x{spec.kw}"
        if spec.stride == 2 and self.allow_strided:
            return None
        if spec.stride != 1:
            return f"requires stride 1, got {spec.stride}"
        return None

    @staticmethod
    def _unit_stride_twin(spec: ConvSpec) -> ConvSpec:
        """The stride-1 layer whose subsampled output equals ``spec``'s."""
        return ConvSpec(
            ic=spec.ic, oc=spec.oc, ih=spec.ih, iw=spec.iw,
            kh=spec.kh, kw=spec.kw, stride=1, pad=spec.pad, index=spec.index,
        )

    # ------------------------------------------------------------------ #
    # functional path
    # ------------------------------------------------------------------ #
    def transform_weights(self, spec: ConvSpec, w: np.ndarray) -> np.ndarray:
        """Offline weight transform: (OC, IC, 3, 3) -> (OC, IC, 8, 8)."""
        wm = f63()
        g = w.astype(np.float64)
        return np.einsum("ij,ocjk,lk->ocil", wm.G, g, wm.G).astype(np.float32)

    def run(self, spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Functional Winograd convolution (tile-batched NumPy)."""
        self.check_applicable(spec)
        if spec.stride == 2:
            full = self.run(self._unit_stride_twin(spec), x, w)
            return np.ascontiguousarray(full[:, ::2, ::2][:, : spec.oh, : spec.ow])
        spec.validate_input(x.shape)
        wm = f63()
        ty, tx = tile_counts(spec)
        # pad so the tile grid covers the input the tiles need:
        # tile (i, j) reads input rows [6i - pad, 6i - pad + 8)
        xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
        need_h = (ty - 1) * TILE_M + TILE_ALPHA
        need_w = (tx - 1) * TILE_M + TILE_ALPHA
        xp = np.pad(
            xp, ((0, 0), (0, max(0, need_h - xp.shape[1])),
                 (0, max(0, need_w - xp.shape[2])))
        )
        # gather tiles: (ty, tx, IC, 8, 8)
        sic, sih, siw = xp.strides
        tiles = np.lib.stride_tricks.as_strided(
            xp,
            shape=(ty, tx, spec.ic, TILE_ALPHA, TILE_ALPHA),
            strides=(TILE_M * sih, TILE_M * siw, sic, sih, siw),
            writeable=False,
        ).astype(np.float64)
        # input transform U = BT d B : (ty, tx, IC, 8, 8)
        u = np.einsum("ij,yxcjk,lk->yxcil", wm.BT, tiles, wm.BT)
        # weight transform (offline for inference)
        v = self.transform_weights(spec, w).astype(np.float64)
        # tuple multiplication: M[y,x,oc] = sum_ic U[y,x,ic] * V[oc,ic]
        mmat = np.einsum("yxcij,ocij->yxoij", u, v)
        # output transform Y = AT m A : (ty, tx, OC, 6, 6)
        y = np.einsum("ij,yxojk,lk->yxoil", wm.AT, mmat, wm.AT)
        out = np.zeros(
            (spec.oc, ty * TILE_M, tx * TILE_M), dtype=np.float64
        )
        # scatter tiles back: (ty,tx,oc,6,6) -> (oc, ty*6, tx*6)
        out = (
            y.transpose(2, 0, 3, 1, 4).reshape(spec.oc, ty * TILE_M, tx * TILE_M)
        )
        return out[:, : spec.oh, : spec.ow].astype(np.float32)

    # ------------------------------------------------------------------ #
    # intrinsics path
    # ------------------------------------------------------------------ #
    def run_vectorized(
        self, spec: ConvSpec, x: np.ndarray, w: np.ndarray, machine: VectorMachine
    ) -> np.ndarray:
        """Inter-tile-parallel Winograd on the vector machine (batched).

        Reproduces the observable behaviour of
        :meth:`run_vectorized_perop` — bit-identical outputs and buffer
        contents, identical per-category instruction counts, and the same
        ordered memory-op address stream — while computing the transforms
        with whole-grid einsums (stride-tricks tile extraction, batched over
        all tiles and channels) and emitting the trace in batched columnar
        writes.  The packing gathers still run per-op (they carry exact
        per-element index lists for the cache simulator).  Register and
        scratch-buffer contents after the call are unspecified, as with the
        other batched kernels.
        """
        self.check_applicable(spec)
        if spec.stride == 2:
            full = self.run_vectorized(
                self._unit_stride_twin(spec), x, w, machine
            )
            return np.ascontiguousarray(
                full[:, ::2, ::2][:, : spec.oh, : spec.ow]
            )
        spec.validate_input(x.shape)
        wm = f63()
        ty, tx = tile_counts(spec)
        ntiles = ty * tx
        ic, oc = spec.ic, spec.oc
        vlmax = machine.vlmax()

        with obs.span("winograd.pack", cat="kernel"):
            xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
            need_h = (ty - 1) * TILE_M + TILE_ALPHA
            need_w = (tx - 1) * TILE_M + TILE_ALPHA
            xp = np.pad(
                xp, ((0, 0), (0, max(0, need_h - xp.shape[1])),
                     (0, max(0, need_w - xp.shape[2])))
            )
            src = machine.alloc_from("wg_x", xp, unique=True)
            ph, pw = xp.shape[1], xp.shape[2]

            # U and M are stored tile-major: [tile][channel][64 positions]
            u_buf = machine.alloc("wg_u", ntiles * ic * TUPLE_ELEMS, unique=True)
            m_buf = machine.alloc("wg_m", ntiles * oc * TUPLE_ELEMS, unique=True)
            v_host = self.transform_weights(spec, w)  # offline, as in the paper
            v_buf = machine.alloc_from("wg_v", v_host, unique=True)
            scratch = machine.alloc("wg_s", vlmax * TILE_ALPHA, unique=True)

        intertile = ic >= MIN_CHANNELS
        cb = max(1, min(ic, vlmax // PACK_ELEMS)) if intertile else 1
        bt32 = wm.BT.astype(np.float32)
        at32 = wm.AT.astype(np.float32)

        # ---- functional compute (whole grid, per-op rounding order) ----- #
        # tiles: (ty, tx, IC, 8, 8) view of the padded input
        with obs.span("winograd.transform_in", cat="kernel"):
            sic, sih, siw = xp.strides
            tiles = np.lib.stride_tricks.as_strided(
                xp,
                shape=(ty, tx, ic, TILE_ALPHA, TILE_ALPHA),
                strides=(TILE_M * sih, TILE_M * siw, sic, sih, siw),
                writeable=False,
            ).astype(np.float64)
            # input transform: same float64 einsum the per-op group helper
            # runs, batched over (ty, tx, IC) — einsum's contraction order per
            # output element is independent of the leading batch axes, so this
            # is bit-identical to the per-group evaluation.
            bt64 = bt32.astype(np.float64)
            u_all = np.einsum(
                "ij,yxcjk,lk->yxcil", bt64, tiles, bt64
            ).astype(np.float32)
            u_buf.array[:] = u_all.reshape(-1)
        # tuple multiplication: float32 accumulation, channels in per-op order
        with obs.span("winograd.gemm", cat="kernel"):
            u3 = u_all.reshape(ntiles, ic, TUPLE_ELEMS)
            v3 = v_host.reshape(oc, ic, TUPLE_ELEMS)
            macc = np.zeros((ntiles, oc, TUPLE_ELEMS), dtype=np.float32)
            for c in range(ic):
                macc += u3[:, c, :][:, None, :] * v3[:, c, :][None, :, :]
            m_buf.array[:] = macc.reshape(-1)
        # output transform from the M buffer values
        with obs.span("winograd.transform_out", cat="kernel"):
            at64 = at32.astype(np.float64)
            m4 = macc.reshape(ntiles, oc, TILE_ALPHA, TILE_ALPHA).astype(np.float64)
            y_all = np.einsum("ij,tojk,lk->toil", at64, m4, at64).astype(np.float32)
            y_grid = y_all.reshape(ty, tx, oc, TILE_M, TILE_M)
            out = np.ascontiguousarray(
                y_grid.transpose(2, 0, 3, 1, 4).reshape(oc, ty * TILE_M, tx * TILE_M)
            )

        # ---- trace emission (batched, same counts and address stream) --- #
        trace = machine.trace
        elem = scratch.array.itemsize
        scratch_row_bases = scratch.base + (
            np.arange(TILE_ALPHA, dtype=np.int64) * vlmax * elem
        )

        def _emit_stage(mat: np.ndarray, rows_in: int, vl: int) -> None:
            # per-op order: rows_in loads, then per output row one vfmul.vf,
            # the non-zero FMAs, and one store — memory stream preserved
            rows_out = mat.shape[0]
            nnz = int(np.count_nonzero(mat[:, 1:rows_in]))
            trace.emit_memory_rows(
                "vle", scratch_row_bases[:rows_in], elem, vl, elem, False
            )
            trace.emit_vector("vfmul.vf", vl, 32, rows_out)
            trace.emit_vector("vfmacc.vf", vl, 32, nnz)
            trace.emit_memory_rows(
                "vse", scratch_row_bases[:rows_out], elem, vl, elem, True
            )

        def _emit_transform_group(
            buf, bases: np.ndarray, mat: np.ndarray, nch: int,
            row_stride: int, rows: int,
        ) -> None:
            vl = machine.vsetvl(nch * PACK_ELEMS * 2)
            taps = np.arange(TILE_ALPHA, dtype=np.int64)
            for row in range(rows):
                offs = (bases[:, None] + row * row_stride + taps).reshape(-1)
                machine.vgather(0, buf, offs, vl=min(vl, offs.size))
                machine.vstore(0, scratch, row * vlmax, vl=min(vl, offs.size))
                machine.scalar(int(PACK_SCALARS * nch), "wg_pack")
            rows_out = mat.shape[0]
            _emit_stage(mat, rows, vl)
            machine.scalar(2 * rows_out, "wg_transpose")
            _emit_stage(mat, rows, vl)

        # input transform
        with obs.span("winograd.emit_input", cat="kernel"):
            for t in range(ntiles):
                tyi, txi = divmod(t, tx)
                base_row = (tyi * TILE_M) * pw + txi * TILE_M
                for c0 in range(0, ic, cb):
                    nch = min(cb, ic - c0)
                    bases = (c0 + np.arange(nch, dtype=np.int64)) * ph * pw + base_row
                    _emit_transform_group(src, bases, bt32, nch, pw, TILE_ALPHA)

        # tuple multiplication (64 positions, strip-mined)
        with obs.span("winograd.emit_tuple", cat="kernel"):
            c_idx = np.arange(ic, dtype=np.int64)
            for t in range(ntiles):
                u_bases = u_buf.base + (t * ic + c_idx) * TUPLE_ELEMS * elem
                for o in range(oc):
                    v_bases = v_buf.base + (o * ic + c_idx) * TUPLE_ELEMS * elem
                    uv_bases = np.empty(2 * ic, dtype=np.int64)
                    uv_bases[0::2] = u_bases
                    uv_bases[1::2] = v_bases
                    pos = 0
                    while pos < TUPLE_ELEMS:
                        vl = machine.vsetvl(TUPLE_ELEMS - pos)
                        trace.emit_vector("vfmv", vl, 32, 1)
                        trace.emit_scalar("wg_tuple_loop", 2 * ic)
                        trace.emit_memory_rows(
                            "vle", uv_bases + pos * elem, elem, vl, elem, False
                        )
                        trace.emit_vector("vfmacc", vl, 32, ic)
                        trace.emit_memory(
                            "vse", m_buf.addr((t * oc + o) * TUPLE_ELEMS + pos),
                            elem, vl, elem, True,
                        )
                        pos += vl

        # output transform
        with obs.span("winograd.emit_output", cat="kernel"):
            cbo = max(1, min(oc, vlmax // PACK_ELEMS)) if intertile else 1
            for t in range(ntiles):
                for o0 in range(0, oc, cbo):
                    nch = min(cbo, oc - o0)
                    bases = (
                        t * oc + o0 + np.arange(nch, dtype=np.int64)
                    ) * TUPLE_ELEMS
                    _emit_transform_group(
                        m_buf, bases, at32, nch, TILE_ALPHA, TILE_ALPHA
                    )
        return out[:, : spec.oh, : spec.ow]

    # ------------------------------------------------------------------ #
    def run_vectorized_perop(
        self, spec: ConvSpec, x: np.ndarray, w: np.ndarray, machine: VectorMachine
    ) -> np.ndarray:
        """Per-op reference: inter-tile Winograd, one call per instruction.

        The paper's kernel packs half-rows (4 elements) of one 8x8 tile per
        channel into long vectors (Paper I Figs. 4-5), applies the B^T/A^T
        linear row combinations with vector-scalar FMAs, transposes, repeats,
        and strip-mines the 64-position tuple multiplication.  This method
        executes that kernel: packing uses indexed gathers, both transform
        stages run as traced vector arithmetic, and a host-side transpose
        stands in for the register-permute intrinsics (RVV lacks them — the
        paper notes the same limitation and uses buffers + gathers).  This is
        the instruction-level specification :meth:`run_vectorized`
        reproduces; the trace-equivalence tests diff the two.
        """
        self.check_applicable(spec)
        if spec.stride == 2:
            full = self.run_vectorized_perop(
                self._unit_stride_twin(spec), x, w, machine
            )
            return np.ascontiguousarray(
                full[:, ::2, ::2][:, : spec.oh, : spec.ow]
            )
        spec.validate_input(x.shape)
        wm = f63()
        ty, tx = tile_counts(spec)
        ntiles = ty * tx
        ic, oc = spec.ic, spec.oc
        vlmax = machine.vlmax()

        xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
        need_h = (ty - 1) * TILE_M + TILE_ALPHA
        need_w = (tx - 1) * TILE_M + TILE_ALPHA
        xp = np.pad(
            xp, ((0, 0), (0, max(0, need_h - xp.shape[1])),
                 (0, max(0, need_w - xp.shape[2])))
        )
        src = machine.alloc_from("wg_x", xp, unique=True)
        ph, pw = xp.shape[1], xp.shape[2]

        # U and M are stored tile-major: [tile][channel][64 positions]
        u_buf = machine.alloc("wg_u", ntiles * ic * TUPLE_ELEMS, unique=True)
        m_buf = machine.alloc("wg_m", ntiles * oc * TUPLE_ELEMS, unique=True)
        v_host = self.transform_weights(spec, w)  # offline, as in the paper
        v_buf = machine.alloc_from("wg_v", v_host, unique=True)
        scratch = machine.alloc("wg_s", vlmax * TILE_ALPHA, unique=True)

        intertile = ic >= MIN_CHANNELS
        cb = max(1, min(ic, vlmax // PACK_ELEMS)) if intertile else 1

        def _stage(mat: np.ndarray, rows_in: int, rows_out: int, vl: int) -> None:
            """Linear row combinations: out[i] = sum_j mat[i,j] * row[j].

            Rows live in scratch (packed across channels); v16.. hold the
            input rows, v8 accumulates, results return to scratch.
            """
            for j in range(rows_in):
                machine.vload(16 + j, scratch, j * vlmax, vl=vl)
            for i in range(rows_out):
                machine.vfmul_vf(8, float(mat[i, 0]), 16)
                for j in range(1, rows_in):
                    if mat[i, j] != 0.0:
                        machine.vfmacc_vf(8, float(mat[i, j]), 16 + j)
                machine.vstore(8, scratch, i * vlmax, vl=vl)

        def _transform_tile_group(
            buf, gather_base, mat: np.ndarray, nch: int,
            row_stride: int, rows: int,
        ) -> np.ndarray:
            """Pack + two transform stages for one (tile, channel-group).

            Returns the exact transformed tiles, (nch, rows_out, rows_out),
            computed from the same packed data the instructions consumed.
            """
            vl = machine.vsetvl(nch * PACK_ELEMS * 2)
            data = np.empty((nch, rows, TILE_ALPHA), dtype=np.float32)
            for row in range(rows):
                offs = np.concatenate(
                    [gather_base(ch) + row * row_stride + np.arange(TILE_ALPHA)
                     for ch in range(nch)]
                )
                machine.vgather(0, buf, offs, vl=min(vl, offs.size))
                machine.vstore(0, scratch, row * vlmax, vl=min(vl, offs.size))
                machine.scalar(int(PACK_SCALARS * nch), "wg_pack")
                for ch in range(nch):
                    data[ch, row] = buf.array[
                        gather_base(ch) + row * row_stride + np.arange(TILE_ALPHA)
                    ]
            rows_out = mat.shape[0]
            _stage(mat, rows, rows_out, vl)
            machine.scalar(2 * rows_out, "wg_transpose")
            _stage(mat, rows, rows_out, vl)
            # exact result of (mat @ d @ mat^T) per channel
            return np.einsum(
                "ij,cjk,lk->cil", mat.astype(np.float64),
                data.astype(np.float64), mat.astype(np.float64),
            ).astype(np.float32)

        # ---- input transform ------------------------------------------- #
        for t in range(ntiles):
            tyi, txi = divmod(t, tx)
            for c0 in range(0, ic, cb):
                nch = min(cb, ic - c0)
                base_row = (tyi * TILE_M) * pw + txi * TILE_M
                u_tiles = _transform_tile_group(
                    src,
                    lambda ch, c0=c0, base_row=base_row: (c0 + ch) * ph * pw + base_row,
                    wm.BT.astype(np.float32), nch, pw, TILE_ALPHA,
                )
                for ch in range(nch):
                    off = (t * ic + c0 + ch) * TUPLE_ELEMS
                    u_buf.array[off : off + TUPLE_ELEMS] = u_tiles[ch].reshape(-1)

        # ---- tuple multiplication (64 positions, strip-mined) ------------ #
        for t in range(ntiles):
            for o in range(oc):
                pos = 0
                while pos < TUPLE_ELEMS:
                    vl = machine.vsetvl(TUPLE_ELEMS - pos)
                    machine.vbroadcast(3, 0.0)
                    for c in range(ic):
                        machine.scalar(2, "wg_tuple_loop")
                        machine.vload(1, u_buf, (t * ic + c) * TUPLE_ELEMS + pos)
                        machine.vload(2, v_buf, (o * ic + c) * TUPLE_ELEMS + pos)
                        machine.vfmacc(3, 1, 2)
                    machine.vstore(3, m_buf, (t * oc + o) * TUPLE_ELEMS + pos)
                    pos += vl

        # ---- output transform -------------------------------------------- #
        cbo = max(1, min(oc, vlmax // PACK_ELEMS)) if intertile else 1
        out = np.zeros((oc, ty * TILE_M, tx * TILE_M), dtype=np.float32)
        at32 = wm.AT.astype(np.float32)
        for t in range(ntiles):
            tyi, txi = divmod(t, tx)
            for o0 in range(0, oc, cbo):
                nch = min(cbo, oc - o0)
                y_tiles = _transform_tile_group(
                    m_buf,
                    lambda ch, t=t, o0=o0: (t * oc + o0 + ch) * TUPLE_ELEMS,
                    at32, nch, TILE_ALPHA, TILE_ALPHA,
                )
                y0, x0 = tyi * TILE_M, txi * TILE_M
                for ch in range(nch):
                    out[o0 + ch, y0 : y0 + TILE_M, x0 : x0 + TILE_M] = y_tiles[ch]
        return out[:, : spec.oh, : spec.ow]

    # ------------------------------------------------------------------ #
    # analytical schedule
    # ------------------------------------------------------------------ #
    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        self.check_applicable(spec)
        if spec.stride == 2:
            # compute the full stride-1 grid (~4x the retained tiles), then
            # subsample: the structural waste behind Paper I's finding that
            # strided Winograd runs ~1.4x slower than im2col+GEMM
            twin = self._unit_stride_twin(spec)
            phases = list(self.schedule(twin, hw))
            vle2 = hw.vlmax_f32
            keep = float(spec.oc * spec.oh * spec.ow)
            phases.append(
                Phase(
                    name="wg_subsample",
                    vmem_ops=2.0 * keep / vle2,
                    vmem_active=float(vle2),
                    nonunit_fraction=0.5,
                    scalar_ops=2.0 * spec.oc * spec.oh,
                    streams=(
                        DataStream(
                            "full_output", bytes=float(twin.output_bytes),
                            passes=1.0, resident_source=True,
                        ),
                        DataStream(
                            "strided_output", bytes=keep * DTYPE_BYTES,
                            passes=1.0, is_write=True,
                        ),
                    ),
                )
            )
            return phases
        vle = hw.vlmax_f32
        sve = hw.isa == "sve"
        ic, oc = spec.ic, spec.oc
        ty, tx = tile_counts(spec)
        t = float(ty * tx)

        intertile = ic >= MIN_CHANNELS
        # effective vector width of the transform path: packed channels x 4;
        # the scalar fallback of the paper's Fig. 4 works on a single tile
        # (8-wide half-rows only)
        if intertile:
            cb = max(1, min(ic, vle // PACK_ELEMS))
            cbo = max(1, min(oc, vle // PACK_ELEMS))
        else:
            cb = cbo = 1
        groups_ic = math.ceil(ic / cb)
        groups_oc = math.ceil(oc / cbo)
        active_in = min(ic, cb) * PACK_ELEMS if intertile else PACK_ELEMS
        active_out = min(oc, cbo) * PACK_ELEMS if intertile else PACK_ELEMS

        u_bytes = t * ic * TUPLE_ELEMS * DTYPE_BYTES
        v_bytes = float(oc * ic * TUPLE_ELEMS * DTYPE_BYTES)
        m_bytes = t * oc * TUPLE_ELEMS * DTYPE_BYTES

        phases: list[Phase] = []
        if self.online_weight_transform:
            # G g G^T per (oc, ic) filter: IC*OC tile transforms — the
            # channel-quadratic cost (and the 16x-inflated V footprint to
            # write back) that penalizes high-channel layers
            wt_groups = math.ceil(ic / cb) * oc
            phases.append(
                Phase(
                    name="wg_weight_transform",
                    vector_ops=wt_groups * INPUT_TRANSFORM_OPS,
                    vector_active=float(active_in),
                    vmem_ops=wt_groups * TRANSFORM_VMEM_OPS,
                    vmem_active=float(active_in),
                    nonunit_fraction=0.5,
                    scalar_ops=PACK_SCALARS * ic * oc,
                    streams=(
                        DataStream(
                            "weights", bytes=float(spec.weight_bytes), passes=1.0
                        ),
                        DataStream("V_write", bytes=v_bytes, passes=1.0, is_write=True),
                    ),
                )
            )

        tf_nonunit = 0.2 if sve else 0.5  # SVE zips replace most gathers
        input_tf = Phase(
            name="wg_input_transform",
            vector_ops=t * groups_ic * INPUT_TRANSFORM_OPS,
            vector_active=float(active_in),
            vmem_ops=t * groups_ic * TRANSFORM_VMEM_OPS,
            vmem_active=float(active_in),
            nonunit_fraction=tf_nonunit,
            scalar_ops=PACK_SCALARS * t * ic,
            streams=(
                DataStream(
                    "input",
                    bytes=float(spec.input_bytes),
                    # 8x8 tiles advance by 6: (8/6)^2 read amplification
                    passes=(TILE_ALPHA / TILE_M) ** 2,
                    reuse_ws=float(2 * spec.iw * DTYPE_BYTES),
                    resident_source=True,
                ),
                DataStream("U_write", bytes=u_bytes, passes=1.0, is_write=True),
            ),
        )

        # tuple multiplication: vectorized over the 64 tile positions
        ntp = math.ceil(TUPLE_ELEMS / vle) if intertile else math.ceil(
            TUPLE_ELEMS / TILE_ALPHA
        )
        active_tuple = TUPLE_ELEMS / ntp
        fma = t * ic * oc * ntp
        # ~one U load and one V load per FMA: the paper's 64-position scheme
        # has no register blocking over channels (RVV lacks the permute
        # intrinsics that would enable it — Paper I §VII).  When the per-tile
        # tuple working set (U tile + M accumulators + current V rows,
        # ~64*(IC+OC)*4 bytes) overflows the L1, the re-reads are served by
        # the L2 and each load stalls longer — the high-channel penalty the
        # paper attributes Winograd's deep-layer losses to.
        if sve:
            tuple_vmem = TUPLE_VMEM_PER_FMA_SVE
        else:
            l1_spill = (
                1.0 if TUPLE_ELEMS * (ic + oc) * DTYPE_BYTES > hw.l1_bytes else 0.0
            )
            tuple_vmem = TUPLE_VMEM_PER_FMA + 0.7 * l1_spill
        tuple_mult = Phase(
            name="wg_tuple_gemm",
            vector_ops=fma,
            vector_active=float(active_tuple),
            vmem_ops=tuple_vmem * fma,
            vmem_active=float(active_tuple),
            scalar_ops=0.5 * t * ic * oc,
            streams=(
                DataStream("U_read", bytes=u_bytes, passes=1.0, resident_source=True),
                DataStream(
                    "V_weights",
                    bytes=v_bytes,
                    passes=float(max(1.0, t / TILE_BLOCK)),
                    reuse_ws=v_bytes,
                    resident_source=self.online_weight_transform,
                ),
                DataStream("M_write", bytes=m_bytes, passes=1.0, is_write=True),
            ),
        )

        output_tf = Phase(
            name="wg_output_transform",
            vector_ops=t * groups_oc * OUTPUT_TRANSFORM_OPS,
            vector_active=float(active_out),
            vmem_ops=t * groups_oc * TRANSFORM_VMEM_OPS,
            vmem_active=float(active_out),
            nonunit_fraction=tf_nonunit,
            scalar_ops=PACK_SCALARS * t * oc,
            streams=(
                DataStream("M_read", bytes=m_bytes, passes=1.0, resident_source=True),
                DataStream(
                    "output", bytes=float(spec.output_bytes), passes=1.0,
                    is_write=True,
                ),
            ),
        )
        phases.extend([input_tf, tuple_mult, output_tf])
        return phases
