"""The im2col+GEMM convolution algorithms (3-loop and 6-loop variants).

Darknet's convolution: materialize the (K, N) column matrix with im2col,
then GEMM it against the (M, K) weight matrix.  The two variants share the
transform and differ only in the GEMM macro-kernel — the paper's central
"not all optimizations help all vector architectures" comparison.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.algorithms import gemm_kernels as gk
from repro.algorithms.base import ConvAlgorithm
from repro.algorithms.im2col import (
    col2im_output,
    im2col,
    im2col_phase,
    im2col_vectorized,
)
from repro.errors import ConfigError
from repro.isa.machine import VectorMachine
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.phases import Phase
from repro.simulator.hwconfig import HardwareConfig


class _Im2colGemmBase(ConvAlgorithm):
    """Shared functional path of the im2col+GEMM variants."""

    def run(self, spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        col = im2col(spec, x)
        a = np.ascontiguousarray(w.reshape(spec.oc, spec.gemm_k))
        return col2im_output(spec, gk.gemm_functional(a, col))

    def _vectorized(
        self,
        spec: ConvSpec,
        x: np.ndarray,
        w: np.ndarray,
        machine: VectorMachine,
        kernel,
    ) -> np.ndarray:
        col_buf = im2col_vectorized(spec, x, machine)  # spans as im2col.pack
        a_buf = machine.alloc_from(
            "gemm_a", w.reshape(spec.oc, spec.gemm_k), unique=True
        )
        c_buf = machine.alloc(
            "gemm_c", spec.gemm_m * spec.gemm_n, np.float32, unique=True
        )
        with obs.span(f"{self.name}.gemm", cat="kernel"):
            kernel(
                machine, a_buf, col_buf, c_buf,
                spec.gemm_m, spec.gemm_k, spec.gemm_n,
            )
        with obs.span(f"{self.name}.unpack", cat="kernel"):
            return col2im_output(
                spec, c_buf.array.reshape(spec.gemm_m, spec.gemm_n)
            )


def _needs_im2col(spec: ConvSpec) -> bool:
    """Darknet skips im2col for 1x1 stride-1 convolutions (B = input)."""
    return not (spec.kh == 1 and spec.kw == 1 and spec.stride == 1 and spec.pad == 0)


class Im2colGemm3(_Im2colGemmBase):
    """im2col + optimized 3-loop GEMM (Paper I Fig. 2).

    ``unroll`` is the i-block unroll factor of the macro-kernel (default:
    the paper's 16).  Non-default values are produced by
    :mod:`repro.schedule` variants; the traced and analytical faces honour
    the same factor.
    """

    name = "im2col_gemm3"
    label = "im2col+GEMM - 3 loops"

    def __init__(self, unroll: int = gk.UNROLL) -> None:
        gk._check_unroll(unroll)
        self.unroll = unroll

    def run_vectorized(self, spec, x, w, machine):
        def kernel(machine, a_buf, b_buf, c_buf, m, k, n):
            return gk.gemm3_vectorized(
                machine, a_buf, b_buf, c_buf, m, k, n, unroll=self.unroll
            )

        return self._vectorized(spec, x, w, machine, kernel)

    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        gemm = gk.gemm3_phase(
            spec.gemm_m, spec.gemm_k, spec.gemm_n, hw,
            b_name="col" if _needs_im2col(spec) else "input",
            unroll=self.unroll,
        )
        if _needs_im2col(spec):
            return [im2col_phase(spec, hw), gemm]
        return [gemm]


class Im2colGemm6(_Im2colGemmBase):
    """im2col + BLIS-like 6-loop GEMM (Paper I Fig. 3).

    ``blocks`` are the BLIS-like (blockM, blockN, blockK) tile sizes
    (default: the paper's tuned 16x512x128).  Non-default values are
    produced by :mod:`repro.schedule` variants (absorbing the old
    ``blocktuner`` grid); the traced and analytical faces honour the same
    tiles.
    """

    name = "im2col_gemm6"
    label = "im2col+GEMM - 6 loops"

    def __init__(
        self, blocks: tuple[int, int, int] = (gk.BLOCK_M, gk.BLOCK_N, gk.BLOCK_K)
    ) -> None:
        if len(blocks) != 3 or min(blocks) < 1:
            raise ConfigError(
                f"blocks must be three positive tile sizes, got {blocks!r}"
            )
        self.blocks = (int(blocks[0]), int(blocks[1]), int(blocks[2]))

    def run_vectorized(self, spec, x, w, machine):
        bm, bn, bk = self.blocks

        def kernel(machine, a_buf, b_buf, c_buf, m, k, n):
            return gk.gemm6_vectorized(
                machine, a_buf, b_buf, c_buf, m, k, n,
                block_m=bm, block_n=bn, block_k=bk,
            )

        return self._vectorized(spec, x, w, machine, kernel)

    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        bm, bn, bk = self.blocks
        gemm = gk.gemm6_phases(
            spec.gemm_m, spec.gemm_k, spec.gemm_n, hw,
            b_name="col" if _needs_im2col(spec) else "input",
            block_m=bm, block_n=bn, block_k=bk,
        )
        if _needs_im2col(spec):
            return [im2col_phase(spec, hw)] + gemm
        return gemm


class Im2colGemmNaive(_Im2colGemmBase):
    """im2col + scalar Darknet GEMM — the papers' baseline (not a contender)."""

    name = "im2col_gemm_naive"
    label = "im2col+GEMM - naive"

    def run_vectorized(self, spec, x, w, machine):
        # the baseline is unvectorized; run the functional path and account
        # scalar work so traces remain meaningful
        with obs.span(f"{self.name}.gemm", cat="kernel"):
            out = self.run(spec, x, w)
            machine.scalar(4 * spec.macs, "naive_gemm")
        return out

    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        return [
            im2col_phase(spec, hw),
            gk.gemm_naive_phase(spec.gemm_m, spec.gemm_k, spec.gemm_n, hw),
        ]
