"""Convolution algorithms: Direct, im2col+GEMM (3/6-loop), Winograd.

Each algorithm exposes a fast functional path (correctness), an
intrinsics-level path on the RVV machine (instruction-mix fidelity), and an
analytical schedule (full-size layer timing).  See DESIGN.md §3-4.
"""

from repro.algorithms.base import ConvAlgorithm
from repro.algorithms.direct import DirectConv
from repro.algorithms.im2col import im2col, im2col_vectorized
from repro.algorithms.im2col_gemm import Im2colGemm3, Im2colGemm6, Im2colGemmNaive
from repro.algorithms.winograd import WinogradConv
from repro.algorithms.winograd_transforms import winograd_matrices, f63
from repro.algorithms.registry import (
    ALGORITHM_NAMES,
    all_algorithms,
    best_algorithm,
    effective_algorithm,
    get_algorithm,
    layer_cycles,
    register,
)

__all__ = [
    "ConvAlgorithm",
    "DirectConv",
    "Im2colGemm3",
    "Im2colGemm6",
    "Im2colGemmNaive",
    "WinogradConv",
    "im2col",
    "im2col_vectorized",
    "winograd_matrices",
    "f63",
    "ALGORITHM_NAMES",
    "all_algorithms",
    "best_algorithm",
    "effective_algorithm",
    "get_algorithm",
    "layer_cycles",
    "register",
]
