"""Cook-Toom construction of Winograd minimal-filtering transforms.

Generates the A^T, G, B^T matrices of F(m, r) — m outputs per tile from an
r-tap filter over an ``alpha = m + r - 1`` input tile — from a set of
``alpha - 1`` distinct interpolation points plus the point at infinity
(Winograd's construction; see Lavin & Gray, and Alam et al. on point
selection).  Exact rational arithmetic (``fractions.Fraction``) keeps the
matrices free of floating-point construction error; they are converted to
float64 once at the end.

The paper's Winograd kernel (from NNPACK) is F(6x6, 3x3) on 8x8 tiles; its
transforms come out of :func:`winograd_matrices` with the standard points
``[0, 1, -1, 2, -2, 1/2, -1/2]``.  Larger tiles are numerically unstable in
fp32 — which is exactly why the paper vectorizes across channels instead of
growing the tile (inter-tile parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

import numpy as np

from repro.errors import AlgorithmError

#: Default interpolation points per F(m, 3) size (standard/wincnn choices).
DEFAULT_POINTS: dict[int, tuple[Fraction, ...]] = {
    2: (Fraction(0), Fraction(1), Fraction(-1)),
    4: (Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2)),
    6: (
        Fraction(0),
        Fraction(1),
        Fraction(-1),
        Fraction(2),
        Fraction(-2),
        Fraction(1, 2),
        Fraction(-1, 2),
    ),
    # larger tiles, for the numerical-accuracy study that motivates the
    # paper's fixed 8x8 tile (F(6,3)): these are progressively ill-conditioned
    8: (
        Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2),
        Fraction(1, 2), Fraction(-1, 2), Fraction(3), Fraction(-3),
    ),
    10: (
        Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2),
        Fraction(1, 2), Fraction(-1, 2), Fraction(3), Fraction(-3),
        Fraction(1, 4), Fraction(-1, 4),
    ),
    12: (
        Fraction(0), Fraction(1), Fraction(-1), Fraction(2), Fraction(-2),
        Fraction(1, 2), Fraction(-1, 2), Fraction(3), Fraction(-3),
        Fraction(1, 4), Fraction(-1, 4), Fraction(4), Fraction(-4),
    ),
}


def _poly_from_roots(roots: list[Fraction]) -> list[Fraction]:
    """Coefficients (low-to-high degree) of prod (x - root)."""
    coeffs = [Fraction(1)]
    for root in roots:
        # multiply by (x - root)
        nxt = [Fraction(0)] * (len(coeffs) + 1)
        for i, c in enumerate(coeffs):
            nxt[i] -= root * c
            nxt[i + 1] += c
        coeffs = nxt
    return coeffs


@dataclass(frozen=True)
class WinogradMatrices:
    """The three transforms of F(m, r): ``Y = A^T [ (G g) .* (B^T d) ] A``."""

    m: int
    r: int
    AT: np.ndarray  # (m, alpha)
    G: np.ndarray  # (alpha, r)
    BT: np.ndarray  # (alpha, alpha)

    @property
    def alpha(self) -> int:
        return self.m + self.r - 1


def winograd_matrices(
    m: int, r: int, points: tuple[Fraction, ...] | None = None
) -> WinogradMatrices:
    """Construct F(m, r) transforms from interpolation points.

    ``points`` must contain ``m + r - 2`` distinct rationals (the point at
    infinity is implicit).  Defaults cover r = 3 with m in {2, 4, 6}.
    """
    if m < 1 or r < 1:
        raise AlgorithmError(f"F({m},{r}): m and r must be >= 1")
    alpha = m + r - 1
    if points is None:
        if r != 3 or m not in DEFAULT_POINTS:
            raise AlgorithmError(
                f"no default points for F({m},{r}); pass them explicitly"
            )
        points = DEFAULT_POINTS[m]
    pts = tuple(Fraction(p) for p in points)
    if len(pts) != alpha - 1:
        raise AlgorithmError(
            f"F({m},{r}) needs {alpha - 1} finite points, got {len(pts)}"
        )
    if len(set(pts)) != len(pts):
        raise AlgorithmError(f"interpolation points must be distinct: {pts}")

    # A^T (m x alpha): Vandermonde rows over the finite points; the infinity
    # column contributes only to the highest output power.
    AT = [[pts[j] ** i for j in range(alpha - 1)] + [Fraction(0)] for i in range(m)]
    AT[m - 1][alpha - 1] = Fraction(1)

    # G (alpha x r): Vandermonde over the filter, normalized per point by
    # N_j = prod_{k != j} (a_j - a_k); infinity row selects the top filter tap.
    G: list[list[Fraction]] = []
    for j in range(alpha - 1):
        nj = Fraction(1)
        for k in range(alpha - 1):
            if k != j:
                nj *= pts[j] - pts[k]
        G.append([pts[j] ** i / nj for i in range(r)])
    G.append([Fraction(0)] * (r - 1) + [Fraction(1)])

    # B^T (alpha x alpha): row j < alpha-1 holds the coefficients of
    # M(x) / (x - a_j) where M(x) = prod_k (x - a_k); the last row holds the
    # coefficients of M(x) itself.
    BT: list[list[Fraction]] = []
    for j in range(alpha - 1):
        others = [pts[k] for k in range(alpha - 1) if k != j]
        coeffs = _poly_from_roots(others)
        BT.append(coeffs + [Fraction(0)] * (alpha - len(coeffs)))
    BT.append(_poly_from_roots(list(pts)))

    return WinogradMatrices(
        m=m,
        r=r,
        AT=np.array([[float(v) for v in row] for row in AT], dtype=np.float64),
        G=np.array([[float(v) for v in row] for row in G], dtype=np.float64),
        BT=np.array([[float(v) for v in row] for row in BT], dtype=np.float64),
    )


@lru_cache(maxsize=None)
def f63() -> WinogradMatrices:
    """The F(6, 3) transforms used by the paper's 8x8-tile Winograd."""
    return winograd_matrices(6, 3)


def winograd_1d(d: np.ndarray, g: np.ndarray, wm: WinogradMatrices) -> np.ndarray:
    """Reference 1-D F(m, r): valid correlation of ``d`` (alpha) with ``g`` (r)."""
    if d.shape != (wm.alpha,) or g.shape != (wm.r,):
        raise AlgorithmError(
            f"winograd_1d expects d of {wm.alpha} and g of {wm.r} elements"
        )
    return wm.AT @ ((wm.G @ g) * (wm.BT @ d))
