"""Algorithm registry and per-layer evaluation helpers.

The four contenders of Paper II: Direct, im2col+GEMM (3- and 6-loop) and
Winograd.  ``winograd_star`` implements the paper's "Winograd*" network
policy: Winograd where applicable (3x3, stride 1), falling back to the
optimized im2col+GEMM elsewhere.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.autovec import Im2colGemmAutovec
from repro.algorithms.base import ConvAlgorithm
from repro.algorithms.direct import DirectConv
from repro.algorithms.fft import FftConv
from repro.algorithms.im2col_gemm import Im2colGemm3, Im2colGemm6, Im2colGemmNaive
from repro.algorithms.winograd import WinogradConv
from repro.errors import AlgorithmError
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.model import AnalyticalTimingModel, LayerCycles
from repro.simulator.hwconfig import HardwareConfig

#: Paper II's four contenders, in the papers' legend order.
ALGORITHM_NAMES: tuple[str, ...] = (
    "direct",
    "im2col_gemm3",
    "im2col_gemm6",
    "winograd",
)

_REGISTRY: dict[str, ConvAlgorithm] = {}


def register(algorithm: ConvAlgorithm) -> ConvAlgorithm:
    """Add an algorithm instance to the registry (idempotent by name)."""
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


register(DirectConv())
register(Im2colGemm3())
register(Im2colGemm6())
register(Im2colGemmNaive())
register(Im2colGemmAutovec())
register(Im2colGemmAutovec(unrolled=True))
register(FftConv())
register(WinogradConv())


def get_algorithm(name: str) -> ConvAlgorithm:
    """Look up an algorithm by registry name.

    Names containing ``@`` are schedule variants (``base@param=value,...``,
    see :mod:`repro.schedule.variants`): they are materialized on first use
    and cached in the registry, so variant names work everywhere a base
    name does — including inside engine worker processes, which receive
    only the name string.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    if "@" in name:
        # Lazy import: repro.schedule sits above the algorithms layer.
        from repro.schedule.variants import materialize

        return register(materialize(name))
    raise AlgorithmError(f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}")


def all_algorithms() -> list[ConvAlgorithm]:
    """The four Paper II contenders."""
    return [_REGISTRY[n] for n in ALGORITHM_NAMES]


def effective_algorithm(name: str, spec: ConvSpec) -> ConvAlgorithm:
    """The algorithm actually executed for a layer under a network policy.

    Winograd falls back to the 6-loop im2col+GEMM for layers it does not
    support (the paper's "Winograd*"); the others apply everywhere.
    """
    algo = get_algorithm(name)
    if not algo.applicable(spec):
        return get_algorithm("im2col_gemm6")
    return algo


def layer_cycles(
    name: str,
    spec: ConvSpec,
    hw: HardwareConfig,
    fallback: bool = True,
    calibration=None,
) -> LayerCycles:
    """Analytical cycle estimate of one layer under one algorithm/config.

    With ``fallback`` (default), inapplicable layers use the Winograd*
    policy; without it, :class:`repro.errors.NotApplicableError` is raised.
    ``calibration`` overrides the model constants (used by the ablations).
    """
    algo = effective_algorithm(name, spec) if fallback else get_algorithm(name)
    algo.check_applicable(spec)
    model = AnalyticalTimingModel(hw, calibration=calibration)
    return model.evaluate(algo.name, algo.schedule(spec, hw))


def best_algorithm(
    spec: ConvSpec, hw: HardwareConfig, candidates: Iterable[str] = ALGORITHM_NAMES
) -> tuple[str, dict[str, float]]:
    """The cycle-optimal algorithm for a layer and all candidates' cycles.

    Candidates that are not applicable to the layer are excluded (matching
    the paper's evaluation, which plots Winograd only on 3x3/stride-1
    layers).
    """
    cycles: dict[str, float] = {}
    for name in candidates:
        algo = get_algorithm(name)
        if not algo.applicable(spec):
            continue
        cycles[name] = layer_cycles(name, spec, hw, fallback=False).cycles
    if not cycles:
        raise AlgorithmError(f"no applicable algorithm for {spec.describe()}")
    return min(cycles, key=cycles.get), cycles
