"""The im2col transformation (Darknet's ``im2col_cpu``).

Rearranges an (IC, IH, IW) input into a (K, N) column matrix with
``K = IC*KH*KW`` and ``N = OH*OW`` so convolution becomes a GEMM.  Provides
the functional transform (NumPy stride tricks — a zero-copy sliding-window
view followed by one gather), the intrinsics-level transform, and the
analytical-model cost of the transformation phase.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.isa.machine import Buffer, VectorMachine
from repro.nn.layer import DTYPE_BYTES, ConvSpec
from repro.nn.reference import pad_input
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig


def im2col(spec: ConvSpec, x: np.ndarray) -> np.ndarray:
    """Functional im2col: (IC, IH, IW) -> (IC*KH*KW, OH*OW), row-major K."""
    spec.validate_input(x.shape)
    xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
    ic, kh, kw, s = spec.ic, spec.kh, spec.kw, spec.stride
    oh, ow = spec.oh, spec.ow
    # sliding-window view: (IC, KH, KW, OH, OW), no copy
    sic, sih, siw = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(ic, kh, kw, oh, ow),
        strides=(sic, sih, siw, s * sih, s * siw),
        writeable=False,
    )
    return windows.reshape(ic * kh * kw, oh * ow).copy()


def col2im_output(spec: ConvSpec, gemm_out: np.ndarray) -> np.ndarray:
    """Reshape a (M, N) GEMM result back to (OC, OH, OW)."""
    return np.ascontiguousarray(gemm_out.reshape(spec.oc, spec.oh, spec.ow))


def im2col_vectorized(
    spec: ConvSpec, x: np.ndarray, machine: VectorMachine
) -> Buffer:
    """Intrinsics-level im2col: strip-mined row copies into a col buffer.

    For stride 1 the per-output-row source is contiguous (unit-stride
    loads); for stride > 1 a strided load gathers every ``stride``-th
    element, matching the vectorized ``im2col`` of the paper's Darknet port.

    Batched fast path: each output-row copy is one
    :meth:`~repro.isa.machine.VectorMachine.vcopy_strips` call — bit-identical
    results and trace to :func:`im2col_vectorized_perop`.
    """
    spec.validate_input(x.shape)
    with obs.span("im2col.pack", cat="kernel"):
        xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
        src = machine.alloc_from("im2col_src", xp, unique=True)
        col = machine.alloc(
            "im2col_col", spec.gemm_k * spec.gemm_n, np.float32, unique=True
        )
        ph, pw = xp.shape[1], xp.shape[2]
        ow, oh, s = spec.ow, spec.oh, spec.stride
        row = 0
        for c in range(spec.ic):
            for dh in range(spec.kh):
                for dw in range(spec.kw):
                    for out_y in range(oh):
                        machine.scalar(3, "im2col_loop")
                        src_base = c * ph * pw + (out_y * s + dh) * pw + dw
                        dst_base = row * (oh * ow) + out_y * ow
                        machine.vcopy_strips(
                            src, src_base, col, dst_base, ow, src_stride=s
                        )
                    row += 1
        return col


def im2col_vectorized_perop(
    spec: ConvSpec, x: np.ndarray, machine: VectorMachine
) -> Buffer:
    """Per-op reference for :func:`im2col_vectorized` (one call per instr)."""
    spec.validate_input(x.shape)
    xp = pad_input(np.asarray(x, dtype=np.float32), spec.pad)
    src = machine.alloc_from("im2col_src", xp, unique=True)
    col = machine.alloc("im2col_col", spec.gemm_k * spec.gemm_n, np.float32, unique=True)
    ph, pw = xp.shape[1], xp.shape[2]
    ow, oh, s = spec.ow, spec.oh, spec.stride
    row = 0
    for c in range(spec.ic):
        for dh in range(spec.kh):
            for dw in range(spec.kw):
                for out_y in range(oh):
                    machine.scalar(3, "im2col_loop")
                    src_base = c * ph * pw + (out_y * s + dh) * pw + dw
                    dst_base = row * (oh * ow) + out_y * ow
                    j = 0
                    while j < ow:
                        gvl = machine.vsetvl(ow - j)
                        if s == 1:
                            machine.vload(0, src, src_base + j)
                        else:
                            machine.vload_strided(0, src, src_base + j * s, s)
                        machine.vstore(0, col, dst_base + j)
                        j += gvl
                row += 1
    return col


def im2col_phase(spec: ConvSpec, hw: HardwareConfig) -> Phase:
    """Analytical cost of the im2col transformation.

    Vector work: one load + one store per VL-worth of each of the K*OH
    output-row segments; loads are strided when ``stride > 1``.  The input
    plane of each channel is re-read KH*KW times with a one-plane reuse
    window; the column matrix is written once (and re-read by the GEMM
    phase, accounted there).
    """
    vle = hw.vlmax_f32
    k, n = spec.gemm_k, spec.gemm_n
    oh, ow = spec.oh, spec.ow
    segments = k * oh * max(1.0, np.ceil(ow / vle))
    avg_active = ow / max(1.0, np.ceil(ow / vle))
    nonunit = 0.5 if spec.stride > 1 else 0.0
    plane_bytes = spec.ih * spec.iw * DTYPE_BYTES
    return Phase(
        name="im2col",
        vmem_ops=2.0 * segments,
        vmem_active=avg_active,
        nonunit_fraction=nonunit,
        scalar_ops=4.0 * k * oh,
        streams=(
            DataStream(
                "input",
                bytes=spec.input_bytes,
                passes=float(spec.kh * spec.kw),
                reuse_ws=plane_bytes,
                resident_source=True,
            ),
            DataStream(
                "col_matrix",
                bytes=float(k * n * DTYPE_BYTES),
                passes=1.0,
                is_write=True,
            ),
        ),
    )
