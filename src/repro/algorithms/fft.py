"""FFT convolution — the algorithm family the paper considered and excluded.

Paper II §1: "Winograd is effective with small kernel sizes ... while FFT is
better suited for larger kernel sizes.  Since large kernel sizes are not
common in modern CNNs, we do not further consider the FFT algorithm."
This module implements it anyway so that the claim is reproducible: the
``ablation-fft`` experiment shows the FFT/Winograd/GEMM crossover moving in
FFT's favour only as the kernel grows past the sizes CNNs use.

Functional path: full 2-D real FFT convolution (pad to linear-convolution
size, pointwise complex multiply, inverse, crop) — numerically validated
against the reference.  Analytical path: split-radix-style cost model
(``~2.5 * P * log2(P)`` real FLOPs per 2-D transform of P points) with the
transformed-weight footprint (the FFT analogue of Winograd's V matrix,
``IC*OC*P`` complex values) dominating memory for small kernels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import ConvAlgorithm
from repro.isa.machine import VectorMachine
from repro.nn.layer import DTYPE_BYTES, ConvSpec
from repro.nn.reference import pad_input
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

#: Complex element size (2 x fp32).
_CPLX_BYTES = 2 * DTYPE_BYTES


def _fft_shape(spec: ConvSpec) -> tuple[int, int]:
    """Linear-convolution transform size (next even size, FFT-friendly)."""
    fh = spec.ih + 2 * spec.pad + spec.kh - 1
    fw = spec.iw + 2 * spec.pad + spec.kw - 1
    # round to the next multiple of 8 for radix-friendly transforms
    return (math.ceil(fh / 8) * 8, math.ceil(fw / 8) * 8)


class FftConv(ConvAlgorithm):
    """Frequency-domain convolution via 2-D real FFTs."""

    name = "fft"
    label = "FFT"

    def applicability_reason(self, spec: ConvSpec) -> str | None:
        if spec.stride != 1:
            return f"requires stride 1, got {spec.stride}"
        return None

    # ------------------------------------------------------------------ #
    def run(self, spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Exact FFT convolution: correlate by conjugating the kernel FFT."""
        self.check_applicable(spec)
        spec.validate_input(x.shape)
        fh, fw = _fft_shape(spec)
        xp = pad_input(np.asarray(x, dtype=np.float64), spec.pad)
        xf = np.fft.rfft2(xp, s=(fh, fw))  # (IC, fh, fw//2+1)
        wf = np.fft.rfft2(w.astype(np.float64), s=(fh, fw))  # (OC, IC, ...)
        # correlation = IFFT( conj(Wf) * Xf ), summed over input channels
        yf = np.einsum("ocij,cij->oij", np.conj(wf), xf)
        y = np.fft.irfft2(yf, s=(fh, fw))
        # valid-correlation outputs start at offset 0 of the padded frame
        return y[:, : spec.oh, : spec.ow].astype(np.float32)

    # ------------------------------------------------------------------ #
    def run_vectorized(
        self, spec: ConvSpec, x: np.ndarray, w: np.ndarray, machine: VectorMachine
    ) -> np.ndarray:
        """Traced FFT pipeline: the pointwise stage runs on the machine.

        The butterflies themselves are traced as their vector-op counts (a
        full software FFT in Python-level intrinsics is prohibitive); the
        frequency-domain pointwise multiply-accumulate — the stage that
        dominates for CNN-sized kernels — executes genuinely on the machine.
        """
        self.check_applicable(spec)
        spec.validate_input(x.shape)
        fh, fw = _fft_shape(spec)
        p_half = fh * (fw // 2 + 1)
        xp = pad_input(np.asarray(x, dtype=np.float64), spec.pad)
        xf = np.fft.rfft2(xp, s=(fh, fw))
        wf = np.conj(np.fft.rfft2(w.astype(np.float64), s=(fh, fw)))

        # trace the transforms' arithmetic (counts only)
        fft_ops = 2.5 * (fh * fw) * math.log2(fh * fw)
        vle = machine.vlmax()
        for _ in range(spec.ic + 1):  # input FFTs + amortized bookkeeping
            machine.scalar(int(fft_ops / vle), "fft_butterflies")

        # pointwise complex MAC on the machine: yf += conj(wf) * xf
        def pack(z: np.ndarray) -> np.ndarray:
            return np.stack([z.real, z.imag], axis=-1).astype(np.float32).reshape(-1)

        x_buf = machine.alloc_from("fft_x", pack(xf))
        w_buf = machine.alloc_from("fft_w", pack(wf))
        acc = machine.alloc("fft_y", spec.oc * p_half * 2, np.float32)
        # complex multiply = 4 real FMAs; done per (oc, ic) over P points
        for o in range(spec.oc):
            for c in range(spec.ic):
                machine.scalar(2, "fft_pointwise_loop")
                j = 0
                n = p_half * 2
                while j < n:
                    gvl = machine.vsetvl(n - j)
                    machine.vload(0, x_buf, c * n + j)
                    machine.vload(1, w_buf, (o * spec.ic + c) * n + j)
                    machine.vload(2, acc, o * n + j)
                    machine.vfmacc(2, 0, 1)  # stands for the complex MAC pair
                    machine.vstore(2, acc, o * n + j)
                    j += gvl
        for _ in range(spec.oc):
            machine.scalar(int(fft_ops / vle), "ifft_butterflies")
        # numerical result from the exact path (butterflies not re-derived)
        return self.run(spec, x, w)

    # ------------------------------------------------------------------ #
    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        self.check_applicable(spec)
        vle = hw.vlmax_f32
        fh, fw = _fft_shape(spec)
        p = float(fh * fw)
        p_half = float(fh * (fw // 2 + 1))
        ic, oc = spec.ic, spec.oc

        fft_flops = 2.5 * p * math.log2(p)  # per 2-D real transform
        # transforms vectorize across frequencies (rows of the 2-D FFT)
        def transform_phase(name: str, count: float, in_bytes: float,
                            out_bytes: float, resident: bool) -> Phase:
            return Phase(
                name=name,
                vector_ops=count * fft_flops / vle,
                vector_active=float(vle),
                vmem_ops=count * 2.0 * math.log2(p) * p / vle / 2.0,
                vmem_active=float(vle),
                nonunit_fraction=0.4,  # bit-reversal / strided passes
                scalar_ops=count * 4.0 * math.log2(p),
                streams=(
                    DataStream(f"{name}_in", bytes=in_bytes, passes=1.0,
                               resident_source=resident),
                    DataStream(f"{name}_out", bytes=out_bytes, passes=1.0,
                               is_write=True),
                ),
            )

        input_fft = transform_phase(
            "fft_input", float(ic), float(spec.input_bytes),
            ic * p_half * _CPLX_BYTES, resident=True,
        )
        weight_fft = transform_phase(
            "fft_weights", float(ic * oc), float(spec.weight_bytes),
            ic * oc * p_half * _CPLX_BYTES, resident=False,
        )

        # pointwise complex MACs: 4 real FMAs per (oc, ic, frequency)
        macs = 4.0 * ic * oc * p_half
        strips = macs / vle
        v_bytes = ic * oc * p_half * _CPLX_BYTES
        pointwise = Phase(
            name="fft_pointwise",
            vector_ops=strips,
            vector_active=float(vle),
            vmem_ops=2.0 * strips,
            vmem_active=float(vle),
            scalar_ops=2.0 * ic * oc,
            streams=(
                DataStream("Xf", bytes=ic * p_half * _CPLX_BYTES,
                           passes=float(oc), reuse_ws=ic * p_half * _CPLX_BYTES,
                           resident_source=True),
                DataStream("Wf", bytes=v_bytes, passes=1.0, reuse_ws=v_bytes,
                           resident_source=True),
                DataStream("Yf", bytes=oc * p_half * _CPLX_BYTES, passes=1.0,
                           is_write=True),
            ),
        )
        inverse_fft = transform_phase(
            "fft_inverse", float(oc), oc * p_half * _CPLX_BYTES,
            float(spec.output_bytes), resident=True,
        )
        return [input_fft, weight_fft, pointwise, inverse_fft]
