"""Compiler-auto-vectorized im2col+GEMM (Paper I §VI-C-b baseline).

Paper I compares the naive scalar Darknet against what clang/gcc
auto-vectorization achieves (~6.3x over baseline, ~9x with forced unrolling)
and against the manual kernels (~14-21x; see also the 3x-6x manual-over-auto
conclusion).  Auto-vectorization keeps Darknet's original ``i,k,j`` loop
order: the innermost j-loop vectorizes, but without the manual loop reorder
and register blocking every vector FMA re-loads its B strip *and*
loads+stores its C strip — three memory operations per arithmetic operation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import ConvAlgorithm
from repro.algorithms.im2col import im2col_phase, im2col_vectorized
from repro.algorithms.im2col_gemm import _Im2colGemmBase, _needs_im2col
from repro.isa.machine import VectorMachine
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.phases import DataStream, Phase
from repro.simulator.hwconfig import HardwareConfig

_DTYPE_BYTES = 4


def gemm_autovec_phase(
    m: int, k: int, n: int, hw: HardwareConfig, b_name: str = "col",
    unrolled: bool = False,
) -> Phase:
    """Analytical cost of the auto-vectorized ikj GEMM.

    ``unrolled`` models the compiler-forced unrolling variant (Paper I's
    intermediate data point): the C strip stays in a register across 4
    unrolled k iterations, removing most C traffic but none of the B loads.
    """
    vle = hw.vlmax_f32
    nj = math.ceil(n / vle)
    active = n / nj
    strips = float(m * k * nj)
    c_ops_per_strip = 2.0 / (4.0 if unrolled else 1.0)
    return Phase(
        name="gemm_autovec" + ("_unroll" if unrolled else ""),
        vector_ops=strips,
        vector_active=active,
        vmem_ops=strips * (1.0 + c_ops_per_strip),
        vmem_active=active,
        scalar_ops=3.0 * strips,
        streams=(
            DataStream(
                "A_weights",
                bytes=float(m * k * _DTYPE_BYTES),
                passes=1.0,
                scalar_access=True,
            ),
            DataStream(
                b_name,
                bytes=float(k * n * _DTYPE_BYTES),
                passes=float(m),
                reuse_ws=float(k * n * _DTYPE_BYTES),
                resident_source=True,
            ),
            DataStream(
                "C",
                bytes=float(m * n * _DTYPE_BYTES),
                passes=float(k if not unrolled else max(1, k // 4)),
                reuse_ws=float(n * _DTYPE_BYTES),
                is_write=True,
            ),
        ),
    )


class Im2colGemmAutovec(_Im2colGemmBase):
    """im2col + auto-vectorized GEMM (compiler baseline, not a contender)."""

    name = "im2col_gemm_autovec"
    label = "im2col+GEMM - autovectorized"

    def __init__(self, unrolled: bool = False) -> None:
        self.unrolled = unrolled
        if unrolled:
            self.name = "im2col_gemm_autovec_unroll"
            self.label = "im2col+GEMM - autovectorized+unroll"

    def run_vectorized(
        self, spec: ConvSpec, x: np.ndarray, w: np.ndarray, machine: VectorMachine
    ) -> np.ndarray:
        """The ikj loop order on the vector machine: 3 memory ops per FMA."""
        col_buf = im2col_vectorized(spec, x, machine)
        m, k, n = spec.gemm_m, spec.gemm_k, spec.gemm_n
        a = w.reshape(m, k)
        c_buf = machine.alloc(f"autovec_c_{id(x) & 0xFFFF}", m * n, np.float32)
        for i in range(m):
            for kk in range(k):
                machine.scalar(3, "loop_ik")
                j = 0
                while j < n:
                    gvl = machine.vsetvl(n - j)
                    machine.vload(1, c_buf, i * n + j)
                    machine.vload(0, col_buf, kk * n + j)
                    machine.vfmacc_vf(1, float(a[i, kk]), 0)
                    machine.vstore(1, c_buf, i * n + j)
                    j += gvl
        return np.ascontiguousarray(
            c_buf.array.reshape(spec.oc, spec.oh, spec.ow)
        )

    def schedule(self, spec: ConvSpec, hw: HardwareConfig) -> list[Phase]:
        gemm = gemm_autovec_phase(
            spec.gemm_m, spec.gemm_k, spec.gemm_n, hw,
            b_name="col" if _needs_im2col(spec) else "input",
            unrolled=self.unrolled,
        )
        if _needs_im2col(spec):
            return [im2col_phase(spec, hw), gemm]
        return [gemm]
