"""Shared process-pool plumbing for parallel evaluation and replay.

Both the grid-evaluation engine (:mod:`repro.engine.executor`) and the
sharded cache-replay path (:mod:`repro.simulator.replay_parallel`) fan
work over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The
platform quirks are identical on both sides — prefer ``fork`` so workers
inherit already-imported modules (and already-JIT-compiled Numba
kernels), fall back to the default start method where ``fork`` is
unavailable, and tear pools down even when a worker is wedged — so the
logic lives here once.

Callers handle *degradation* themselves (the executor warns and
evaluates serially, the replay path falls back to in-process sharding):
this module only acquires, builds and stops pools.
"""

from __future__ import annotations


def pool_context():
    """A multiprocessing context, preferring ``fork``.

    ``fork`` keeps worker start cheap and lets workers inherit process
    state (imported modules, JIT-compiled functions).  Platforms without
    it (Windows, some sandboxes) get the default start method.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context()


def new_pool(ctx, size: int):
    """A fresh :class:`ProcessPoolExecutor` of ``size`` workers on ``ctx``."""
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=size, mp_context=ctx)


def stop_pool(pool) -> None:
    """Tear a pool down even when a worker is wedged.

    ``shutdown`` alone would join a hung worker forever, so any live
    worker processes are terminated first (idle ones die instantly).
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except (OSError, AttributeError):
            pass
    pool.shutdown(wait=True, cancel_futures=True)
