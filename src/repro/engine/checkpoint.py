"""Atomic JSONL checkpoint journal for long-running campaigns.

A :class:`CheckpointJournal` is an append-only JSON-Lines file under
``results/``: one header line binding the journal to a specific grid (a
fingerprint over every cell identity), then one line per completed
record.  Appends are flushed and fsynced, so a killed process loses at
most the line being written — and a torn trailing line is detected and
dropped on load, never mistaken for data.

``repro-experiments campaign --resume`` uses this to recompute only the
cells missing from the journal after a crash (see ``docs/ROBUSTNESS.md``
for the on-disk format).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro import obs
from repro.errors import EngineError

#: Bump when the journal line format changes (old journals are rejected).
JOURNAL_SCHEMA = 1


def grid_fingerprint(identities: Iterable[tuple]) -> str:
    """A stable hash of every cell identity a campaign will evaluate.

    Resuming against a journal written for a *different* grid would
    silently merge incompatible records; the fingerprint makes that a
    hard error instead.
    """
    canon = json.dumps(sorted(list(i) for i in identities))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


class CheckpointJournal:
    """Append-only, crash-safe record journal for one campaign run."""

    def __init__(self, path: str | Path, fingerprint: str, name: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.name = name
        self._fh: Any = None
        self.appended = 0

    # ------------------------------------------------------------------ #
    # load (resume)
    # ------------------------------------------------------------------ #
    def load(self) -> list[dict]:
        """Records already journaled, or ``[]`` when starting fresh.

        Raises :class:`EngineError` when the journal belongs to a
        different campaign grid (wrong fingerprint or schema) — resuming
        would corrupt the result set.  A torn trailing line (the crash
        landed mid-write) is dropped and counted under
        ``engine.journal_torn_lines``.
        """
        if not self.path.exists():
            return []
        raw = self.path.read_text()
        lines = raw.splitlines(keepends=True)
        if not lines:
            return []
        try:
            header = json.loads(lines[0])
        except ValueError:
            if len(lines) == 1 and not raw.endswith("\n"):
                # Torn header: the crash landed inside the very first
                # append, before any record existed.  There is nothing to
                # resume, so recover by starting the journal over instead
                # of demanding manual deletion.
                obs.count("engine.journal_torn_lines")
                with open(self.path, "r+") as fh:
                    fh.truncate(0)
                return []
            raise EngineError(
                f"checkpoint journal {self.path} has an unreadable header; "
                "delete it to start over"
            ) from None
        if header.get("kind") != "header" or header.get("schema") != JOURNAL_SCHEMA:
            raise EngineError(
                f"checkpoint journal {self.path} has an incompatible header "
                f"(schema {header.get('schema')!r}, want {JOURNAL_SCHEMA})"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise EngineError(
                f"checkpoint journal {self.path} was written for a different "
                f"campaign grid (fingerprint {header.get('fingerprint')!r}, "
                f"this grid is {self.fingerprint!r}); delete it or pass a "
                "different --journal path"
            )
        records: list[dict] = []
        offset = len(lines[0])  # bytes of journal verified so far
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                row = json.loads(line)
                if row.get("kind") != "record":
                    raise ValueError(f"unexpected kind {row.get('kind')!r}")
                records.append(row["data"])
                offset += len(line)
            except (ValueError, KeyError, TypeError):
                if lineno == len(lines):
                    # Torn final line: the crash landed mid-append.  Drop
                    # it *on disk* too, so later appends start on a clean
                    # line instead of concatenating onto the fragment.
                    obs.count("engine.journal_torn_lines")
                    with open(self.path, "r+") as fh:
                        fh.truncate(offset)
                    break
                raise EngineError(
                    f"checkpoint journal {self.path} is corrupt at line "
                    f"{lineno}; delete it to start over"
                ) from None
        return records

    # ------------------------------------------------------------------ #
    # append
    # ------------------------------------------------------------------ #
    def _open(self) -> None:
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "a")
        if fresh:
            header = {
                "kind": "header",
                "schema": JOURNAL_SCHEMA,
                "name": self.name,
                "fingerprint": self.fingerprint,
            }
            self._fh.write(json.dumps(header) + "\n")
            self._flush()

    def append(self, record: dict) -> None:
        """Durably append one completed record (flush + fsync)."""
        self._open()
        self._fh.write(json.dumps({"kind": "record", "data": record}) + "\n")
        self._flush()
        self.appended += 1
        obs.count("engine.journal_appends")

    def _flush(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
