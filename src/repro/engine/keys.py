"""Content-addressed cache keys for analytical-model evaluations.

A cache entry is addressed by the *content* of everything the analytical
model reads when timing one grid cell:

* the :class:`~repro.nn.layer.ConvSpec` (all constructor fields),
* the :class:`~repro.simulator.hwconfig.HardwareConfig` (all fields),
* the algorithm name (after Winograd* fallback resolution, so a fallback
  evaluation shares its entry with the direct ``im2col_gemm6`` call),
* a fingerprint of the :class:`~repro.simulator.analytical.calibration.
  Calibration` constants, so editing any calibration value invalidates
  every cached record automatically.

Keys are SHA-256 over a canonical (sorted-keys, fixed-separator) JSON
encoding — stable across processes, interpreter hash seeds, and the
insertion order of payload dicts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from enum import Enum
from functools import lru_cache

from repro.nn.layer import ConvSpec
from repro.simulator.analytical.calibration import DEFAULT_CALIBRATION, Calibration
from repro.simulator.analytical.model import LayerCycles, PhaseCycles
from repro.simulator.hwconfig import HardwareConfig

#: Bump when the record serialization schema changes (old entries ignored).
SCHEMA_VERSION = 1


def _jsonable(value):
    """Canonical JSON-compatible form of a dataclass field value."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        # distinguish 1 from 1.0 so int/float field edits change the key
        return float(value)
    return value


def dataclass_payload(obj) -> dict:
    """All constructor fields of a (frozen) dataclass as a plain dict."""
    return {f.name: _jsonable(getattr(obj, f.name)) for f in fields(obj)}


def calibration_fingerprint(calibration: Calibration | None = None) -> str:
    """Short stable digest of the calibration constants (key component)."""
    cal = calibration or DEFAULT_CALIBRATION
    blob = json.dumps(dataclass_payload(cal), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


#: Fingerprint of the shipped constants — the "calibration version".
CALIBRATION_VERSION = calibration_fingerprint(DEFAULT_CALIBRATION)


def key_from_payload(payload: dict) -> str:
    """SHA-256 hex key of an already-assembled payload dict.

    Canonicalization (``sort_keys``) makes the key independent of dict
    insertion order, so semantically equal payloads always collide — and
    nothing else does, up to SHA-256 collisions.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=65536)
def cache_key(
    algorithm: str,
    spec: ConvSpec,
    hw: HardwareConfig,
    calibration: Calibration | None = None,
) -> str:
    """The content-addressed key of one (algorithm, layer, config) cell.

    All four inputs are hashable (frozen dataclasses), so key derivation
    itself is memoized — repeat lookups of a hot cell skip the canonical
    JSON + SHA-256 work entirely without affecting the derived value.
    """
    return key_from_payload(
        {
            "schema": SCHEMA_VERSION,
            "algorithm": algorithm,
            "spec": dataclass_payload(spec),
            "hw": dataclass_payload(hw),
            "calibration": calibration_fingerprint(calibration),
        }
    )


# ---------------------------------------------------------------------- #
# record (de)serialization — bit-identical float round-trips
# ---------------------------------------------------------------------- #

def record_to_dict(record: LayerCycles) -> dict:
    """Serialize a :class:`LayerCycles` to a JSON-compatible dict.

    Python's ``json`` emits shortest-round-trip ``repr`` floats, so every
    float survives a dump/load cycle bit-identically.
    """
    return {
        "algorithm": record.algorithm,
        "phases": [
            {
                "name": p.name,
                "vector_cycles": p.vector_cycles,
                "scalar_cycles": p.scalar_cycles,
                "l2_cycles": p.l2_cycles,
                "dram_cycles": p.dram_cycles,
                "latency_cycles": p.latency_cycles,
                "startup_cycles": p.startup_cycles,
                "dram_bytes": p.dram_bytes,
                "l2_bytes": p.l2_bytes,
            }
            for p in record.phases
        ],
    }


def record_from_dict(payload: dict) -> LayerCycles:
    """Inverse of :func:`record_to_dict`."""
    return LayerCycles(
        algorithm=payload["algorithm"],
        phases=[PhaseCycles(**phase) for phase in payload["phases"]],
    )
