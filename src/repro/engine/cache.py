"""Multi-tier memo cache for analytical-model records.

Tier 1 is an in-memory LRU (an :class:`~collections.OrderedDict` bounded by
``capacity``); tier 2 is an optional **SQLite** store (``sqlite_path``) —
a single WAL-mode database safe to share between concurrent processes,
which is how ``repro-serve`` replicas and campaign workers on one host
share a warm cache; tier 3 is an optional on-disk JSON store, one file per
key sharded by the first two hex digits (``results/cache/ab/ab03...json``).
Lower-tier hits are promoted into the memory tier; memory evictions do
**not** drop persistent entries, so a long campaign's working set survives
process exits.

Writes are atomic (temp file + ``os.replace``) so a crashed or parallel
writer can never leave a truncated JSON behind; corrupt files (external
truncation, bit rot, injected via :mod:`repro.faults`) are treated as
misses, **deleted** so they are not re-parsed on every lookup, and counted
in :attr:`CacheStats.corrupt_entries` / the ``engine.cache.corrupt_entries``
observability counter.  Failed writes degrade the cache to memory-only but
are counted (``engine.cache.write_errors``) instead of vanishing silently.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, obs
from repro.engine.keys import SCHEMA_VERSION, record_from_dict, record_to_dict
from repro.errors import EngineError
from repro.simulator.analytical.model import LayerCycles

#: Default location of the disk tier (gitignored, next to the CSV artifacts).
DEFAULT_CACHE_DIR = Path("results") / "cache"


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`MemoCache`.

    SQLite-tier hits are counted in ``disk_hits`` (both are persistent
    tiers, and downstream accounting — the engine's obs counters — keys
    on memory/persistent/miss) and additionally broken out in
    ``sqlite_hits``.
    """

    hits: int = 0  # memory-tier hits
    disk_hits: int = 0  # persistent-tier hits (promoted to memory)
    sqlite_hits: int = 0  # subset of disk_hits served by the SQLite tier
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0  # unparseable disk files (deleted, recomputed)
    write_errors: int = 0  # disk writes that failed (memory-only degrade)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return (self.hits + self.disk_hits) / self.lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "sqlite_hits": self.sqlite_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_entries": self.corrupt_entries,
            "write_errors": self.write_errors,
            "hit_rate": self.hit_rate,
        }


class SQLiteTier:
    """Cross-process memo tier: one WAL-mode SQLite database.

    Connections are opened lazily **per process** (a connection must not
    cross a fork) and shared across threads behind a lock; WAL mode plus
    a busy timeout lets many serving replicas / campaign workers read and
    write the same database concurrently.  ``get`` returns the parsed
    record or None; a corrupt payload is deleted and reported via the
    return sentinel :data:`SQLiteTier.CORRUPT` so the owning cache can
    account for it exactly like a corrupt JSON file.
    """

    #: sentinel distinguishing "corrupt row (deleted)" from a plain miss.
    CORRUPT = object()

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        self._owner_pid: int | None = None
        self._lock = threading.Lock()

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None or self._owner_pid != os.getpid():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path), timeout=5.0, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS memo ("
                " key TEXT PRIMARY KEY,"
                " schema INTEGER NOT NULL,"
                " payload TEXT NOT NULL)"
            )
            conn.commit()
            self._conn = conn
            self._owner_pid = os.getpid()
        return self._conn

    # ------------------------------------------------------------------ #
    def get(self, key: str):
        """A :class:`LayerCycles`, None (miss), or :data:`CORRUPT`."""
        with self._lock:
            row = self._connection().execute(
                "SELECT schema, payload FROM memo WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        schema, payload = row
        if schema != SCHEMA_VERSION:
            return None  # stale schema: miss; put() overwrites it
        try:
            return record_from_dict(json.loads(payload))
        except (ValueError, KeyError, TypeError):
            self.delete(key)
            return self.CORRUPT

    def put(self, key: str, payload: str) -> None:
        """Upsert one serialized record (caller handles faults/errors)."""
        with self._lock:
            conn = self._connection()
            conn.execute(
                "INSERT OR REPLACE INTO memo (key, schema, payload) "
                "VALUES (?, ?, ?)",
                (key, SCHEMA_VERSION, payload),
            )
            conn.commit()

    def delete(self, key: str) -> None:
        try:
            with self._lock:
                conn = self._connection()
                conn.execute("DELETE FROM memo WHERE key = ?", (key,))
                conn.commit()
        except sqlite3.Error:
            pass

    def __len__(self) -> int:
        with self._lock:
            row = self._connection().execute("SELECT COUNT(*) FROM memo").fetchone()
            (n,) = row
        return int(n)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._connection().execute(
                "SELECT 1 FROM memo WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def clear(self) -> None:
        with self._lock:
            conn = self._connection()
            conn.execute("DELETE FROM memo")
            conn.commit()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._owner_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._owner_pid = None


@dataclass
class MemoCache:
    """LRU memory tier + optional SQLite and JSON disk tiers."""

    capacity: int = 8192
    disk_dir: Path | None = None
    sqlite_path: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise EngineError(f"cache capacity must be >= 1, got {self.capacity}")
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
        self._memory: OrderedDict[str, LayerCycles] = OrderedDict()
        self._sqlite = (
            SQLiteTier(self.sqlite_path) if self.sqlite_path is not None
            else None
        )

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        if self._sqlite is not None and key in self._sqlite:
            return True
        return self._disk_path_if_exists(key) is not None

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> LayerCycles | None:
        """Cached record for ``key``, or None (accounted as a miss)."""
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return record
        record = self._sqlite_get(key)
        if record is not None:
            self.stats.disk_hits += 1
            self.stats.sqlite_hits += 1
            self._memory_put(key, record)  # promote
            return record
        record = self._disk_get(key)
        if record is not None:
            self.stats.disk_hits += 1
            self._memory_put(key, record)  # promote
            return record
        self.stats.misses += 1
        return None

    def put(self, key: str, record: LayerCycles) -> None:
        """Store a record in every configured tier."""
        self.stats.stores += 1
        self._memory_put(key, record)
        self._sqlite_put(key, record)
        self._disk_put(key, record)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and, with ``disk=True``, persistent tiers)."""
        self._memory.clear()
        if disk and self._sqlite is not None:
            try:
                self._sqlite.clear()
            except sqlite3.Error:
                pass
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for path in self.disk_dir.glob("*/*.json"):
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # memory tier
    # ------------------------------------------------------------------ #
    def _memory_put(self, key: str, record: LayerCycles) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------ #
    # SQLite tier
    # ------------------------------------------------------------------ #
    def _sqlite_get(self, key: str) -> LayerCycles | None:
        if self._sqlite is None:
            return None
        try:
            record = self._sqlite.get(key)
        except sqlite3.Error:
            return None  # transient database trouble: plain miss
        if record is SQLiteTier.CORRUPT:
            self.stats.corrupt_entries += 1
            obs.count("engine.cache.corrupt_entries")
            return None
        return record

    def _sqlite_put(self, key: str, record: LayerCycles) -> None:
        if self._sqlite is None:
            return
        plan = faults.active_plan()
        try:
            if plan is not None and plan.write_fails(key):
                faults.mark_injected("cache.write_error")
                raise OSError(f"injected cache write error for {key[:12]}")
            text = json.dumps(record_to_dict(record))
            if plan is not None and plan.corrupts_write(key):
                faults.mark_injected("cache.corrupt")
                text = text[: max(1, len(text) // 2)]
            self._sqlite.put(key, text)
        except (OSError, sqlite3.Error):
            # locked/read-only database etc.: degrade, visibly.
            self.stats.write_errors += 1
            obs.count("engine.cache.write_errors")

    # ------------------------------------------------------------------ #
    # disk tier
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / key[:2] / f"{key}.json"

    def _disk_path_if_exists(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        path = self._disk_path(key)
        return path if path.exists() else None

    def _disk_get(self, key: str) -> LayerCycles | None:
        path = self._disk_path_if_exists(key)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != SCHEMA_VERSION:
                return None  # stale schema: miss; put() overwrites it
            return record_from_dict(payload["record"])
        except OSError:
            return None  # transient read failure: plain miss
        except (ValueError, KeyError, TypeError):
            # Corrupt entry: delete it (so it is not re-parsed on every
            # lookup), count the forced recompute, and report a miss.
            self.stats.corrupt_entries += 1
            obs.count("engine.cache.corrupt_entries")
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, record: LayerCycles) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        plan = faults.active_plan()
        try:
            if plan is not None and plan.write_fails(key):
                faults.mark_injected("cache.write_error")
                raise OSError(f"injected cache write error for {key[:12]}")
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": SCHEMA_VERSION,
                "key": key,
                "record": record_to_dict(record),
            }
            text = json.dumps(payload)
            if plan is not None and plan.corrupts_write(key):
                # Injected corruption: persist a truncated payload, which a
                # later _disk_get must detect, delete and recompute around.
                faults.mark_injected("cache.corrupt")
                text = text[: max(1, len(text) // 2)]
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(text)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # Read-only filesystem etc.: degrade to memory-only, visibly.
            self.stats.write_errors += 1
            obs.count("engine.cache.write_errors")
