"""Two-tier memo cache for analytical-model records.

Tier 1 is an in-memory LRU (an :class:`~collections.OrderedDict` bounded by
``capacity``); tier 2 is an optional on-disk JSON store, one file per key
sharded by the first two hex digits (``results/cache/ab/ab03...json``).
Disk hits are promoted into the memory tier; memory evictions do **not**
drop disk entries, so a long campaign's working set survives process exits.

Writes are atomic (temp file + ``os.replace``) so a crashed or parallel
writer can never leave a truncated JSON behind; corrupt files (external
truncation, bit rot, injected via :mod:`repro.faults`) are treated as
misses, **deleted** so they are not re-parsed on every lookup, and counted
in :attr:`CacheStats.corrupt_entries` / the ``engine.cache.corrupt_entries``
observability counter.  Failed writes degrade the cache to memory-only but
are counted (``engine.cache.write_errors``) instead of vanishing silently.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, obs
from repro.engine.keys import SCHEMA_VERSION, record_from_dict, record_to_dict
from repro.errors import EngineError
from repro.simulator.analytical.model import LayerCycles

#: Default location of the disk tier (gitignored, next to the CSV artifacts).
DEFAULT_CACHE_DIR = Path("results") / "cache"


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`MemoCache`."""

    hits: int = 0  # memory-tier hits
    disk_hits: int = 0  # disk-tier hits (promoted to memory)
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0  # unparseable disk files (deleted, recomputed)
    write_errors: int = 0  # disk writes that failed (memory-only degrade)

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return (self.hits + self.disk_hits) / self.lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_entries": self.corrupt_entries,
            "write_errors": self.write_errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class MemoCache:
    """LRU memory tier + optional JSON disk tier, keyed by content hash."""

    capacity: int = 8192
    disk_dir: Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise EngineError(f"cache capacity must be >= 1, got {self.capacity}")
        if self.disk_dir is not None:
            self.disk_dir = Path(self.disk_dir)
        self._memory: OrderedDict[str, LayerCycles] = OrderedDict()

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._disk_path_if_exists(key) is not None

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> LayerCycles | None:
        """Cached record for ``key``, or None (accounted as a miss)."""
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return record
        record = self._disk_get(key)
        if record is not None:
            self.stats.disk_hits += 1
            self._memory_put(key, record)  # promote
            return record
        self.stats.misses += 1
        return None

    def put(self, key: str, record: LayerCycles) -> None:
        """Store a record in both tiers."""
        self.stats.stores += 1
        self._memory_put(key, record)
        self._disk_put(key, record)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and, with ``disk=True``, the disk tier)."""
        self._memory.clear()
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for path in self.disk_dir.glob("*/*.json"):
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # memory tier
    # ------------------------------------------------------------------ #
    def _memory_put(self, key: str, record: LayerCycles) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------ #
    # disk tier
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / key[:2] / f"{key}.json"

    def _disk_path_if_exists(self, key: str) -> Path | None:
        if self.disk_dir is None:
            return None
        path = self._disk_path(key)
        return path if path.exists() else None

    def _disk_get(self, key: str) -> LayerCycles | None:
        path = self._disk_path_if_exists(key)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != SCHEMA_VERSION:
                return None  # stale schema: miss; put() overwrites it
            return record_from_dict(payload["record"])
        except OSError:
            return None  # transient read failure: plain miss
        except (ValueError, KeyError, TypeError):
            # Corrupt entry: delete it (so it is not re-parsed on every
            # lookup), count the forced recompute, and report a miss.
            self.stats.corrupt_entries += 1
            obs.count("engine.cache.corrupt_entries")
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, record: LayerCycles) -> None:
        if self.disk_dir is None:
            return
        path = self._disk_path(key)
        plan = faults.active_plan()
        try:
            if plan is not None and plan.write_fails(key):
                faults.mark_injected("cache.write_error")
                raise OSError(f"injected cache write error for {key[:12]}")
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": SCHEMA_VERSION,
                "key": key,
                "record": record_to_dict(record),
            }
            text = json.dumps(payload)
            if plan is not None and plan.corrupts_write(key):
                # Injected corruption: persist a truncated payload, which a
                # later _disk_get must detect, delete and recompute around.
                faults.mark_injected("cache.corrupt")
                text = text[: max(1, len(text) // 2)]
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(text)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # Read-only filesystem etc.: degrade to memory-only, visibly.
            self.stats.write_errors += 1
            obs.count("engine.cache.write_errors")
