"""Memoized + parallel evaluation engine for the analytical model.

The figure harnesses, the campaign runner and the selection dataset all
evaluate cells of the same (layer, algorithm, hardware) grid; this package
gives them a shared substrate:

* :mod:`repro.engine.keys` — content-addressed cache keys (SHA-256 over a
  canonical encoding of spec + config + algorithm + calibration version);
* :mod:`repro.engine.cache` — an in-memory LRU tier plus an optional
  on-disk JSON tier under ``results/cache/``;
* :mod:`repro.engine.executor` — the :class:`EvaluationEngine` facade and
  a deterministic process-parallel batch executor.

A process-wide default engine (memory tier only, serial) backs the adapters
in :mod:`repro.experiments.common`; ``repro-experiments --workers/--no-cache``
reconfigures it.
"""

from __future__ import annotations

from pathlib import Path

from repro.engine.cache import DEFAULT_CACHE_DIR, CacheStats, MemoCache
from repro.engine.checkpoint import CheckpointJournal, grid_fingerprint
from repro.engine.executor import CellError, EvalTask, EvaluationEngine
from repro.engine.keys import (
    CALIBRATION_VERSION,
    cache_key,
    calibration_fingerprint,
    record_from_dict,
    record_to_dict,
)

__all__ = [
    "CALIBRATION_VERSION",
    "CacheStats",
    "CellError",
    "CheckpointJournal",
    "DEFAULT_CACHE_DIR",
    "EvalTask",
    "EvaluationEngine",
    "MemoCache",
    "cache_key",
    "calibration_fingerprint",
    "configure_default",
    "default_engine",
    "grid_fingerprint",
    "record_from_dict",
    "record_to_dict",
]

_default: EvaluationEngine | None = None


def default_engine() -> EvaluationEngine:
    """The process-wide shared engine (created lazily, memory tier only)."""
    global _default
    if _default is None:
        _default = EvaluationEngine()
    return _default


def configure_default(
    max_workers: int | None = None,
    use_cache: bool | None = None,
    disk_dir=None,
    chunk_timeout_s: float | None = None,
    max_retries: int | None = None,
    retry_backoff_s: float | None = None,
) -> EvaluationEngine:
    """Reconfigure the shared engine (CLI ``--workers`` / ``--no-cache``).

    Passing ``disk_dir`` attaches the on-disk tier (e.g.
    :data:`DEFAULT_CACHE_DIR`); ``None`` leaves the current tier unchanged.
    The resilience knobs (``chunk_timeout_s``, ``max_retries``,
    ``retry_backoff_s``) mirror the :class:`EvaluationEngine` constructor
    and back the CLI ``--chunk-timeout`` / ``--max-retries`` flags.
    """
    engine = default_engine()
    if max_workers is not None:
        engine.max_workers = max_workers
    if use_cache is not None:
        engine.use_cache = use_cache
    if disk_dir is not None:
        engine.cache.disk_dir = Path(disk_dir)
    if chunk_timeout_s is not None:
        engine.chunk_timeout_s = chunk_timeout_s
    if max_retries is not None:
        engine.max_retries = max_retries
    if retry_backoff_s is not None:
        engine.retry_backoff_s = retry_backoff_s
    return engine
