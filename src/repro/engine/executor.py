"""Memoized + parallel evaluation of analytical-model grid cells.

:class:`EvaluationEngine` is the single entry point the experiment
harnesses, the campaign runner and the selection dataset route through.
It guarantees:

* **bit-identical records** — a cached (memory or disk) or parallel
  evaluation returns exactly the floats a direct
  :func:`repro.algorithms.registry.layer_cycles` call produces;
* **deterministic ordering** — :meth:`evaluate_many` returns records in
  task-submission order regardless of worker completion order;
* **dedup** — a batch containing the same cell twice computes it once.

``max_workers=1`` (the default) never touches ``multiprocessing``; larger
values fan misses out over a :class:`~concurrent.futures.
ProcessPoolExecutor`, falling back to serial execution when process
spawning is unavailable (sandboxes, restricted CI runners).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro import obs
from repro.algorithms.registry import effective_algorithm, layer_cycles
from repro.engine.cache import MemoCache
from repro.engine.keys import cache_key
from repro.errors import EngineError
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.calibration import Calibration
from repro.simulator.analytical.model import LayerCycles
from repro.simulator.hwconfig import HardwareConfig

#: Cells handed to one worker task (amortizes pickling/dispatch overhead).
_CHUNK = 32


@dataclass(frozen=True)
class EvalTask:
    """One grid cell: an algorithm applied to a layer on a configuration."""

    algorithm: str
    spec: ConvSpec
    hw: HardwareConfig
    fallback: bool = True


def _compute_chunk(
    items: list[tuple[int, str, ConvSpec, HardwareConfig]],
    calibration: Calibration | None,
) -> list[tuple[int, LayerCycles]]:
    """Worker-side evaluation of resolved cells (module-level: picklable)."""
    out: list[tuple[int, LayerCycles]] = []
    for idx, name, spec, hw in items:
        with obs.span("engine.point", cat="engine", algorithm=name, layer=spec.index):
            out.append(
                (idx, layer_cycles(name, spec, hw, fallback=False,
                                   calibration=calibration))
            )
    return out


def _compute_chunk_profiled(
    items: list[tuple[int, str, ConvSpec, HardwareConfig]],
    calibration: Calibration | None,
) -> tuple[list[tuple[int, LayerCycles]], dict]:
    """Worker-side chunk evaluation with a private recorder.

    Used instead of :func:`_compute_chunk` when the parent process is
    profiling: the worker records its per-point spans into a fresh
    recorder (replacing whatever the fork inherited) and ships the
    snapshot back for the parent to merge, so pool workers appear as
    separate pid lanes in the Chrome trace.
    """
    recorder = obs.enable()
    try:
        return _compute_chunk(items, calibration), recorder.snapshot()
    finally:
        obs.disable()


class EvaluationEngine:
    """Content-addressed memo cache in front of the analytical model."""

    def __init__(
        self,
        cache: MemoCache | None = None,
        max_workers: int = 1,
        calibration: Calibration | None = None,
        use_cache: bool = True,
    ) -> None:
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        self.cache = cache if cache is not None else MemoCache()
        self.max_workers = max_workers
        self.calibration = calibration
        self.use_cache = use_cache

    # ------------------------------------------------------------------ #
    # single cell
    # ------------------------------------------------------------------ #
    def resolve(self, task: EvalTask) -> EvalTask:
        """Apply Winograd* fallback so the cell is content-addressable.

        After resolution the task's algorithm is applicable to its layer,
        and equal resolved tasks share one cache entry (a ``winograd``
        fallback cell aliases the direct ``im2col_gemm6`` cell).
        """
        if task.fallback:
            name = effective_algorithm(task.algorithm, task.spec).name
            if name != task.algorithm:
                return replace(task, algorithm=name, fallback=False)
        return task

    def key(self, task: EvalTask) -> str:
        """The content-addressed cache key of a task."""
        task = self.resolve(task)
        return cache_key(task.algorithm, task.spec, task.hw, self.calibration)

    def evaluate(
        self,
        algorithm: str,
        spec: ConvSpec,
        hw: HardwareConfig,
        fallback: bool = True,
    ) -> LayerCycles:
        """Memoized equivalent of :func:`repro.algorithms.registry.layer_cycles`."""
        return self.evaluate_many(
            [EvalTask(algorithm, spec, hw, fallback=fallback)]
        )[0]

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def evaluate_many(
        self,
        tasks: Sequence[EvalTask] | Iterable[EvalTask],
        max_workers: int | None = None,
    ) -> list[LayerCycles]:
        """Evaluate a batch of cells, returning records in task order.

        Cache hits are served immediately; distinct missing keys are
        computed once (serially, or across a process pool when
        ``max_workers > 1``) and stored.
        """
        tasks = [self.resolve(t) for t in tasks]
        workers = self.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {workers}")

        with obs.span("engine.evaluate_many", cat="engine", tasks=len(tasks)):
            disk_hits_before = self.cache.stats.disk_hits
            results: list[LayerCycles | None] = [None] * len(tasks)
            missing: dict[str, list[int]] = {}  # key -> task indices needing it
            for i, task in enumerate(tasks):
                if not self.use_cache:
                    missing.setdefault(self.key(task), []).append(i)
                    continue
                key = self.key(task)
                record = self.cache.get(key)
                if record is not None:
                    results[i] = record
                else:
                    missing.setdefault(key, []).append(i)

            if obs.enabled():
                served = len(tasks) - sum(len(ix) for ix in missing.values())
                disk_hits = self.cache.stats.disk_hits - disk_hits_before
                obs.count("engine.cache.memory_hits", served - disk_hits)
                obs.count("engine.cache.disk_hits", disk_hits)
                obs.count("engine.cache.misses", len(missing))

            if missing:
                # one representative cell per distinct key, in first-seen order
                cells = [
                    (indices[0], tasks[indices[0]].algorithm,
                     tasks[indices[0]].spec, tasks[indices[0]].hw)
                    for indices in missing.values()
                ]
                computed = self._compute(cells, workers)
                for (key, indices), (_, record) in zip(missing.items(), computed):
                    if self.use_cache:
                        self.cache.put(key, record)
                    for i in indices:
                        results[i] = record
        return results  # type: ignore[return-value]

    def sweep(
        self,
        specs: Sequence[ConvSpec],
        configs: Sequence[HardwareConfig],
        algorithms: Sequence[str],
        fallback: bool = True,
        max_workers: int | None = None,
    ) -> dict[tuple[int, int, str], LayerCycles]:
        """Evaluate a full (layer, config, algorithm) grid in one batch.

        Returns ``(spec_index, config_index, algorithm) -> record`` where the
        indices are positions in the input sequences, so callers reassemble
        any nesting order without re-evaluating.
        """
        order = [
            (si, ci, name)
            for si in range(len(specs))
            for ci in range(len(configs))
            for name in algorithms
        ]
        records = self.evaluate_many(
            [EvalTask(name, specs[si], configs[ci], fallback=fallback)
             for si, ci, name in order],
            max_workers=max_workers,
        )
        return dict(zip(order, records))

    # ------------------------------------------------------------------ #
    # execution backends
    # ------------------------------------------------------------------ #
    def _compute(
        self,
        cells: list[tuple[int, str, ConvSpec, HardwareConfig]],
        workers: int,
    ) -> list[tuple[int, LayerCycles]]:
        """Compute cells (serially or in parallel), preserving input order."""
        if workers > 1 and len(cells) > 1:
            try:
                return self._compute_parallel(cells, workers)
            except (OSError, ImportError, RuntimeError):
                pass  # no process spawning here: degrade to serial
        return _compute_chunk(cells, self.calibration)

    def _compute_parallel(
        self,
        cells: list[tuple[int, str, ConvSpec, HardwareConfig]],
        workers: int,
    ) -> list[tuple[int, LayerCycles]]:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        chunks = [cells[i:i + _CHUNK] for i in range(0, len(cells), _CHUNK)]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context()
        profiling = obs.enabled()
        chunk_fn = _compute_chunk_profiled if profiling else _compute_chunk
        pool_size = min(workers, len(chunks))
        out: list[tuple[int, LayerCycles]] = []
        with obs.span(
            "engine.parallel", cat="engine",
            chunks=len(chunks), workers=pool_size,
        ) as dispatch:
            with ProcessPoolExecutor(
                max_workers=pool_size, mp_context=ctx
            ) as pool:
                futures = [
                    pool.submit(chunk_fn, chunk, self.calibration)
                    for chunk in chunks
                ]
                # collect in submission order — completion order is irrelevant
                for future in futures:
                    result = future.result()
                    if profiling:
                        records, snapshot = result
                        out.extend(records)
                        recorder = obs.get_recorder()
                        if isinstance(recorder, obs.Recorder):
                            recorder.merge(
                                snapshot,
                                parent_id=getattr(dispatch, "span_id", -1),
                            )
                        # worker utilization: evaluated points per pool pid
                        for row in snapshot["spans"]:
                            if row[2] == "engine.point":
                                obs.count(f"engine.worker.{row[6]}.points")
                    else:
                        out.extend(result)
        if profiling:
            obs.gauge("engine.pool_workers", pool_size)
            obs.count("engine.parallel_chunks", len(chunks))
        return out
