"""Memoized + parallel evaluation of analytical-model grid cells.

:class:`EvaluationEngine` is the single entry point the experiment
harnesses, the campaign runner and the selection dataset route through.
It guarantees:

* **bit-identical records** — a cached (memory or disk) or parallel
  evaluation returns exactly the floats a direct
  :func:`repro.algorithms.registry.layer_cycles` call produces;
* **deterministic ordering** — :meth:`evaluate_many` returns records in
  task-submission order regardless of worker completion order;
* **dedup** — a batch containing the same cell twice computes it once;
* **crash resilience** — a crashed or hung pool worker costs one bounded
  retry of the affected chunks on a fresh pool; chunks that already
  completed are preserved, never recomputed (see ``docs/ROBUSTNESS.md``).

``max_workers=1`` (the default) never touches ``multiprocessing``; larger
values fan misses out over a :class:`~concurrent.futures.
ProcessPoolExecutor`, falling back to serial execution when process
spawning is unavailable (sandboxes, restricted CI runners) — audibly, via
a one-time :class:`RuntimeWarning` and the ``engine.serial_fallbacks``
counter.

Failures are isolated per cell: a cell whose evaluation raises yields a
structured :class:`CellError` naming the cell instead of poisoning its
whole batch (``evaluate_many(..., on_error="record")`` returns the error
records in place; the default ``on_error="raise"`` re-raises the first
failure with the cell identity attached).
"""

from __future__ import annotations

import importlib
import os
import time
import warnings
from dataclasses import dataclass, replace
from typing import Iterable, NoReturn, Sequence, cast

from repro import faults, obs
from repro.algorithms.registry import (
    effective_algorithm,
    get_algorithm,
    layer_cycles,
)
from repro.engine import pool as pool_plumbing
from repro.engine.cache import MemoCache
from repro.engine.keys import cache_key
from repro.errors import EngineError, InjectedFaultError
from repro.nn.layer import ConvSpec
from repro.simulator.analytical.calibration import Calibration
from repro.simulator.analytical.grid import (
    GRID_BACKEND_CHOICES,
    PhaseTable,
    evaluate_phase_table,
    resolve_grid_backend,
)
from repro.simulator.analytical.model import LayerCycles
from repro.simulator.hwconfig import HardwareConfig

#: Cells handed to one worker task (amortizes pickling/dispatch overhead).
_CHUNK = 32

#: Cold batches at or below this size never pay pool startup, regardless
#: of ``pool_min_batch`` (counted via ``engine.small_batch_serial``).
_SMALL_BATCH = 10

#: Default ``pool_min_batch``: cold batches must exceed this many cells
#: before ``workers > 1`` actually spins up the process pool — below it
#: the tensorized grid path beats pool startup by orders of magnitude.
_POOL_MIN_BATCH = 256

#: Exit code of an injected worker crash (recognizable in core-dump triage).
_CRASH_EXIT = 17

#: One-time flag for the serial-degradation warning (reset by tests).
_warned_serial_fallback = False

#: A cell is one (index, algorithm, spec, hardware) tuple in a chunk.
_Cell = tuple[int, str, ConvSpec, HardwareConfig]
#: A chunk evaluation yields records or per-cell structured errors.
_CellResult = tuple[int, "LayerCycles | CellError"]


@dataclass(frozen=True)
class EvalTask:
    """One grid cell: an algorithm applied to a layer on a configuration."""

    algorithm: str
    spec: ConvSpec
    hw: HardwareConfig
    fallback: bool = True


@dataclass(frozen=True)
class CellError:
    """Structured record of one grid cell whose evaluation raised.

    Picklable (it crosses the pool boundary) and reconstructable: in
    ``on_error="raise"`` mode the original exception type is re-raised
    with the cell identity prepended to the message.
    """

    algorithm: str
    layer: int
    vlen_bits: int
    l2_mib: float
    error_type: str
    error_module: str
    message: str

    def describe(self) -> str:
        return (
            f"{self.algorithm} on layer {self.layer} "
            f"(VL={self.vlen_bits}b, L2={self.l2_mib:g}MB) failed: "
            f"{self.error_type}: {self.message}"
        )

    def reraise(self) -> NoReturn:
        """Raise the original exception type (or :class:`EngineError`)."""
        try:
            module = importlib.import_module(self.error_module)
            cls = getattr(module, self.error_type)
            if isinstance(cls, type) and issubclass(cls, Exception):
                raise cls(self.describe())
        except (ImportError, AttributeError, TypeError):
            pass
        raise EngineError(self.describe())


def _cell_token(name: str, spec: ConvSpec, hw: HardwareConfig) -> str:
    """Stable identity of a cell for fault-injection decisions."""
    return f"{name}:{spec.index}:{hw.vlen_bits}:{hw.l2_mib:g}"


def _compute_chunk(
    items: list[_Cell],
    calibration: Calibration | None,
    chunk_index: int = 0,
    attempt: int = 0,
    in_worker: bool = False,
) -> list[_CellResult]:
    """Worker-side evaluation of resolved cells (module-level: picklable).

    Worker-level faults (crash/hang) fire only when ``in_worker`` is set —
    the serial path must never ``os._exit`` the caller's process.  Cell
    evaluation errors are captured per cell as :class:`CellError` records
    so one bad cell cannot poison its chunk.
    """
    plan = faults.active_plan()
    if in_worker and plan is not None:
        kind = plan.worker_fault(chunk_index, attempt)
        if kind == "crash":
            os._exit(_CRASH_EXIT)
        elif kind == "hang":
            time.sleep(plan.hang_seconds)
    out: list[_CellResult] = []
    for idx, name, spec, hw in items:
        with obs.span("engine.point", cat="engine", algorithm=name, layer=spec.index):
            try:
                if plan is not None and plan.cell_fails(_cell_token(name, spec, hw)):
                    faults.mark_injected("engine.cell")
                    raise InjectedFaultError(
                        f"injected cell error for {_cell_token(name, spec, hw)}"
                    )
                record: LayerCycles | CellError = layer_cycles(
                    name, spec, hw, fallback=False, calibration=calibration
                )
            except Exception as exc:  # per-cell isolation (not BaseException)
                record = CellError(
                    algorithm=name,
                    layer=spec.index,
                    vlen_bits=hw.vlen_bits,
                    l2_mib=hw.l2_mib,
                    error_type=type(exc).__name__,
                    error_module=type(exc).__module__,
                    message=str(exc),
                )
            out.append((idx, record))
    return out


def _compute_grid(
    items: list[_Cell],
    calibration: Calibration | None,
    backend: str | None = None,
) -> list[_CellResult]:
    """Serial evaluation of resolved cells through one tensorized grid call.

    Per-cell fault injection and error isolation match
    :func:`_compute_chunk` exactly — a cell whose schedule construction
    (or injected fault) raises yields its :class:`CellError` in place —
    but the analytical model itself runs once over a columnar
    :class:`~repro.simulator.analytical.grid.PhaseTable` covering every
    surviving cell, instead of per-phase Python per cell.  Records are
    bit-identical to :func:`repro.algorithms.registry.layer_cycles` by
    the grid module's parity contract.
    """
    plan = faults.active_plan()
    out: list[_CellResult] = []
    grid_cells = []  # (algorithm, phases, hw) for cells whose schedule built
    grid_slots: list[int] = []  # position in `out` to fill with the record
    for idx, name, spec, hw in items:
        with obs.span("engine.point", cat="engine", algorithm=name, layer=spec.index):
            try:
                if plan is not None and plan.cell_fails(_cell_token(name, spec, hw)):
                    faults.mark_injected("engine.cell")
                    raise InjectedFaultError(
                        f"injected cell error for {_cell_token(name, spec, hw)}"
                    )
                algo = get_algorithm(name)
                algo.check_applicable(spec)
                phases = algo.schedule(spec, hw)
            except Exception as exc:  # per-cell isolation (not BaseException)
                err = CellError(
                    algorithm=name,
                    layer=spec.index,
                    vlen_bits=hw.vlen_bits,
                    l2_mib=hw.l2_mib,
                    error_type=type(exc).__name__,
                    error_module=type(exc).__module__,
                    message=str(exc),
                )
                out.append((idx, err))
            else:
                grid_slots.append(len(out))
                out.append((idx, None))  # type: ignore[arg-type]
                grid_cells.append((algo.name, phases, hw))
    if grid_cells:
        with obs.span("engine.grid", cat="engine", cells=len(grid_cells)):
            records = evaluate_phase_table(
                PhaseTable.from_cells(grid_cells, calibration=calibration),
                backend=backend,
            )
        if obs.enabled():
            obs.count("engine.grid_cells", len(grid_cells))
        for slot, record in zip(grid_slots, records):
            out[slot] = (out[slot][0], record)
    return out


def _compute_chunk_profiled(
    items: list[_Cell],
    calibration: Calibration | None,
    chunk_index: int = 0,
    attempt: int = 0,
    in_worker: bool = False,
) -> tuple[list[_CellResult], dict]:
    """Worker-side chunk evaluation with a private recorder.

    Used instead of :func:`_compute_chunk` when the parent process is
    profiling: the worker records its per-point spans into a fresh
    recorder (replacing whatever the fork inherited) and ships the
    snapshot back for the parent to merge, so pool workers appear as
    separate pid lanes in the Chrome trace.
    """
    recorder = obs.enable()
    try:
        records = _compute_chunk(
            items, calibration,
            chunk_index=chunk_index, attempt=attempt, in_worker=in_worker,
        )
        return records, recorder.snapshot()
    finally:
        obs.disable()


class EvaluationEngine:
    """Content-addressed memo cache in front of the analytical model.

    The resilience knobs (``chunk_timeout_s``, ``max_retries``,
    ``retry_backoff_s``) govern the parallel path only: a chunk whose
    worker crashes (``BrokenProcessPool``) or exceeds the collection
    timeout is retried on a fresh pool with exponential backoff, while
    chunks that already completed are kept; a chunk that exhausts its
    retries is rescued serially in-process, so ``evaluate_many`` makes
    progress under any fault the pool can throw at it.
    """

    def __init__(
        self,
        cache: MemoCache | None = None,
        max_workers: int = 1,
        calibration: Calibration | None = None,
        use_cache: bool = True,
        chunk_timeout_s: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        pool_min_batch: int = _POOL_MIN_BATCH,
        grid_backend: str | None = None,
    ) -> None:
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_timeout_s is not None and chunk_timeout_s <= 0:
            raise EngineError(
                f"chunk_timeout_s must be positive or None, got {chunk_timeout_s}"
            )
        if max_retries < 0:
            raise EngineError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise EngineError(f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        if pool_min_batch < 0:
            raise EngineError(f"pool_min_batch must be >= 0, got {pool_min_batch}")
        if grid_backend is not None and grid_backend != "percell":
            if grid_backend not in GRID_BACKEND_CHOICES:
                raise EngineError(
                    f"grid_backend must be one of {GRID_BACKEND_CHOICES} or "
                    f"'percell', got {grid_backend!r}"
                )
            resolve_grid_backend(grid_backend)  # fail fast, not mid-batch
        self.cache = cache if cache is not None else MemoCache()
        self.max_workers = max_workers
        self.calibration = calibration
        self.use_cache = use_cache
        self.chunk_timeout_s = chunk_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.pool_min_batch = pool_min_batch
        self.grid_backend = grid_backend

    # ------------------------------------------------------------------ #
    # single cell
    # ------------------------------------------------------------------ #
    def resolve(self, task: EvalTask) -> EvalTask:
        """Apply Winograd* fallback so the cell is content-addressable.

        After resolution the task's algorithm is applicable to its layer,
        and equal resolved tasks share one cache entry (a ``winograd``
        fallback cell aliases the direct ``im2col_gemm6`` cell).
        """
        if task.fallback:
            name = effective_algorithm(task.algorithm, task.spec).name
            if name != task.algorithm:
                return replace(task, algorithm=name, fallback=False)
        return task

    def key(self, task: EvalTask) -> str:
        """The content-addressed cache key of a task."""
        task = self.resolve(task)
        return cache_key(task.algorithm, task.spec, task.hw, self.calibration)

    def evaluate(
        self,
        algorithm: str,
        spec: ConvSpec,
        hw: HardwareConfig,
        fallback: bool = True,
    ) -> LayerCycles:
        """Memoized equivalent of :func:`repro.algorithms.registry.layer_cycles`."""
        task = EvalTask(algorithm, spec, hw, fallback=fallback)
        return cast(LayerCycles, self.evaluate_many([task])[0])

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def evaluate_many(
        self,
        tasks: Sequence[EvalTask] | Iterable[EvalTask],
        max_workers: int | None = None,
        on_error: str = "raise",
    ) -> list[LayerCycles | CellError]:
        """Evaluate a batch of cells, returning records in task order.

        Cache hits are served immediately; distinct missing keys are
        computed once (serially, or across a process pool when
        ``max_workers > 1``) and stored.

        ``on_error`` controls what a failing cell does: ``"raise"`` (the
        default) re-raises the first failure with the cell named in the
        message; ``"record"`` leaves a :class:`CellError` in that cell's
        result slots (duplicates of a failing cell share one error record)
        and never caches it.
        """
        if on_error not in ("raise", "record"):
            raise EngineError(f"on_error must be 'raise' or 'record', got {on_error!r}")
        tasks = [self.resolve(t) for t in tasks]
        workers = self.max_workers if max_workers is None else max_workers
        if workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {workers}")

        with obs.span("engine.evaluate_many", cat="engine", tasks=len(tasks)):
            disk_hits_before = self.cache.stats.disk_hits
            results: list[LayerCycles | CellError | None] = [None] * len(tasks)
            missing: dict[str, list[int]] = {}  # key -> task indices needing it
            for i, task in enumerate(tasks):
                if not self.use_cache:
                    missing.setdefault(self.key(task), []).append(i)
                    continue
                key = self.key(task)
                record = self.cache.get(key)
                if record is not None:
                    results[i] = record
                else:
                    missing.setdefault(key, []).append(i)

            if obs.enabled():
                served = len(tasks) - sum(len(ix) for ix in missing.values())
                disk_hits = self.cache.stats.disk_hits - disk_hits_before
                obs.count("engine.cache.memory_hits", served - disk_hits)
                obs.count("engine.cache.disk_hits", disk_hits)
                obs.count("engine.cache.misses", len(missing))

            if missing:
                # one representative cell per distinct key, in first-seen order
                cells = [
                    (
                        indices[0],
                        tasks[indices[0]].algorithm,
                        tasks[indices[0]].spec,
                        tasks[indices[0]].hw,
                    )
                    for indices in missing.values()
                ]
                computed = self._compute(cells, workers)
                for (key, indices), (_, record) in zip(missing.items(), computed):
                    if isinstance(record, CellError):
                        obs.count("engine.cell_errors")
                        if on_error == "raise":
                            record.reraise()
                        # failed cells are never cached: a later retry of
                        # the same key recomputes instead of replaying the
                        # failure from the cache
                    elif self.use_cache:
                        self.cache.put(key, record)
                    for i in indices:
                        results[i] = record
        return cast("list[LayerCycles | CellError]", results)

    def sweep(
        self,
        specs: Sequence[ConvSpec],
        configs: Sequence[HardwareConfig],
        algorithms: Sequence[str],
        fallback: bool = True,
        max_workers: int | None = None,
    ) -> dict[tuple[int, int, str], LayerCycles]:
        """Evaluate a full (layer, config, algorithm) grid in one batch.

        Returns ``(spec_index, config_index, algorithm) -> record`` where the
        indices are positions in the input sequences, so callers reassemble
        any nesting order without re-evaluating.
        """
        order = [
            (si, ci, name)
            for si in range(len(specs))
            for ci in range(len(configs))
            for name in algorithms
        ]
        records = self.evaluate_many(
            [
                EvalTask(name, specs[si], configs[ci], fallback=fallback)
                for si, ci, name in order
            ],
            max_workers=max_workers,
        )
        return dict(zip(order, cast("list[LayerCycles]", records)))

    # ------------------------------------------------------------------ #
    # execution backends
    # ------------------------------------------------------------------ #
    def _compute(
        self,
        cells: list[_Cell],
        workers: int,
    ) -> list[_CellResult]:
        """Compute cells (serially or in parallel), preserving input order.

        Serial batches (and parallel batches at or below
        ``pool_min_batch`` cells) go through the tensorized grid path —
        one columnar model call over every cold cell — which beats pool
        startup by orders of magnitude on analytical workloads.  The
        process pool engages only for ``workers > 1`` batches larger
        than ``pool_min_batch``, where its crash/hang resilience
        machinery earns its dispatch overhead.
        """
        if workers > 1 and len(cells) > 1:
            if len(cells) <= self.pool_min_batch:
                if len(cells) <= _SMALL_BATCH:
                    obs.count("engine.small_batch_serial")
                return self._compute_serial(cells)
            # The except is scoped to *pool acquisition* only — failures
            # mid-run go through the retry machinery in _compute_parallel
            # (or propagate) instead of being silently absorbed here.
            try:
                ctx = self._pool_context()
            except (OSError, ImportError, RuntimeError) as exc:
                self._serial_degrade(exc)
            else:
                return self._compute_parallel(cells, workers, ctx)
        return self._compute_serial(cells)

    def _compute_serial(self, cells: list[_Cell]) -> list[_CellResult]:
        """In-process evaluation: tensorized grid, per-cell on request.

        ``grid_backend="percell"`` pins the pre-grid per-cell path (for
        A/B parity checks and benchmarks); any grid-machinery failure —
        never a per-cell evaluation error, which the grid path isolates
        itself — falls back to the per-cell path, audibly via the
        ``engine.grid_fallbacks`` counter.
        """
        if self.grid_backend == "percell":
            return _compute_chunk(cells, self.calibration)
        try:
            return _compute_grid(cells, self.calibration, self.grid_backend)
        except Exception:
            obs.count("engine.grid_fallbacks")
            return _compute_chunk(cells, self.calibration)

    # Thin delegates to the shared plumbing in :mod:`repro.engine.pool`
    # (kept as staticmethods so tests can monkeypatch pool acquisition).
    @staticmethod
    def _pool_context():
        return pool_plumbing.pool_context()

    @staticmethod
    def _new_pool(ctx, size: int):
        return pool_plumbing.new_pool(ctx, size)

    @staticmethod
    def _stop_pool(pool) -> None:
        pool_plumbing.stop_pool(pool)

    @staticmethod
    def _serial_degrade(exc: BaseException) -> None:
        """Account (and warn once) for degrading to in-process execution."""
        global _warned_serial_fallback
        obs.count("engine.serial_fallbacks")
        if not _warned_serial_fallback:
            _warned_serial_fallback = True
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "evaluating serially in-process",
                RuntimeWarning,
                stacklevel=4,
            )

    def _absorb(self, result, profiling: bool, dispatch) -> list[_CellResult]:
        """Unpack one chunk result, merging the worker recorder snapshot."""
        if not profiling:
            return result
        records, snapshot = result
        recorder = obs.get_recorder()
        if isinstance(recorder, obs.Recorder):
            recorder.merge(snapshot, parent_id=getattr(dispatch, "span_id", -1))
        # worker utilization: evaluated points per pool pid
        for row in snapshot["spans"]:
            if row[2] == "engine.point":
                obs.count(f"engine.worker.{row[6]}.points")
        return records

    def _compute_parallel(
        self,
        cells: list[_Cell],
        workers: int,
        ctx,
    ) -> list[_CellResult]:
        """Fan chunks over a process pool with bounded retry + salvage.

        One dispatch round submits every pending chunk; a crash
        (``BrokenProcessPool``) or a chunk exceeding ``chunk_timeout_s``
        kills the pool, *salvages every chunk that already finished*, and
        retries only the rest on a fresh pool with exponential backoff.
        Chunks that exhaust ``max_retries`` are rescued serially
        in-process, so this method always terminates with a full result.
        """
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        plan = faults.active_plan()
        profiling = obs.enabled()
        chunk_fn = _compute_chunk_profiled if profiling else _compute_chunk
        chunks = [cells[i:i + _CHUNK] for i in range(0, len(cells), _CHUNK)]
        pool_size = min(workers, len(chunks))
        pending: dict[int, list[_Cell]] = dict(enumerate(chunks))
        attempts: dict[int, int] = {i: 0 for i in pending}
        done: dict[int, list[_CellResult]] = {}

        with obs.span(
            "engine.parallel", cat="engine",
            chunks=len(chunks), workers=pool_size,
        ) as dispatch:
            while pending:
                try:
                    pool = self._new_pool(ctx, min(pool_size, len(pending)))
                except (OSError, ImportError, RuntimeError) as exc:
                    self._serial_degrade(exc)
                    break
                broken = False
                try:
                    futures = {}
                    for i in sorted(pending):
                        if plan is not None:
                            kind = plan.worker_fault(i, attempts[i])
                            if kind is not None:
                                faults.mark_injected(f"engine.worker.{kind}")
                        fut = pool.submit(
                            chunk_fn,
                            pending[i],
                            self.calibration,
                            chunk_index=i,
                            attempt=attempts[i],
                            in_worker=True,
                        )
                        futures[fut] = i
                    # collect in submission order — completion order is
                    # irrelevant for the (deterministic) output order
                    for future, i in futures.items():
                        try:
                            result = future.result(timeout=self.chunk_timeout_s)
                        except FuturesTimeout:
                            obs.count("engine.chunk_timeouts")
                            broken = True
                            break
                        except BrokenProcessPool:
                            broken = True
                            break
                        done[i] = self._absorb(result, profiling, dispatch)
                    if broken:
                        obs.count("engine.pool_restarts")
                        # keep every chunk that finished before the failure
                        for future, i in futures.items():
                            if i in done:
                                continue
                            if (
                                future.done()
                                and not future.cancelled()
                                and future.exception() is None
                            ):
                                done[i] = self._absorb(
                                    future.result(), profiling, dispatch
                                )
                                obs.count("engine.chunks_salvaged")
                finally:
                    self._stop_pool(pool)
                for i in list(done):
                    pending.pop(i, None)
                if not pending:
                    break
                # every still-pending chunk failed this round
                for i in pending:
                    attempts[i] += 1
                exhausted = sorted(i for i in pending if attempts[i] > self.max_retries)
                for i in exhausted:
                    # retry budget spent: rescue the chunk in-process
                    obs.count("engine.chunk_serial_rescues")
                    done[i] = _compute_chunk(pending.pop(i), self.calibration)
                if pending:
                    obs.count("engine.retries", len(pending))
                    round_no = min(attempts[i] for i in pending)
                    delay = self.retry_backoff_s * (2 ** (round_no - 1))
                    if delay > 0:
                        time.sleep(delay)
        # pool acquisition degraded mid-campaign: finish serially
        for i in sorted(pending):
            done[i] = _compute_chunk(pending[i], self.calibration)

        out = [pair for i in sorted(done) for pair in done[i]]
        if profiling:
            obs.gauge("engine.pool_workers", pool_size)
            obs.count("engine.parallel_chunks", len(chunks))
        return out
