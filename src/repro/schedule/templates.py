"""Kernel templates: the menu algorithms' loop nests as schedule-IR instances.

Each :class:`KernelTemplate` re-expresses one contender's hand-written
schedule through :mod:`repro.schedule.ir`:

* :meth:`~KernelTemplate.nest` — the algorithm's base iteration space for a
  layer;
* :meth:`~KernelTemplate.transforms` — the tile/reorder/unroll/vectorize
  sequence that turns the base nest into the kernel's actual loop
  structure, parameterized by the template's knobs;
* :meth:`~KernelTemplate.lower` — a :class:`~repro.algorithms.base.ConvAlgorithm`
  instance carrying those knobs.  Default knobs lower to instances whose
  three faces are bit-identical to the registry's menu entries (the
  kernels read the same parameters the templates emit).

The knob grids absorb :mod:`repro.algorithms.blocktuner`'s block-size
candidates (the 6-loop template) and extend them with the 3-loop unroll
and Direct's output-row unroll.  Candidate enumeration is deterministic:
grids are sorted tuples and the default always enumerates first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms import gemm_kernels as gk
from repro.algorithms.base import ConvAlgorithm
from repro.algorithms.direct import _ACC_REGS, DirectConv, _unroll_ow
from repro.algorithms.im2col_gemm import Im2colGemm3, Im2colGemm6
from repro.algorithms.winograd import TILE_M, TUPLE_ELEMS, WinogradConv
from repro.errors import ScheduleError
from repro.nn.layer import ConvSpec
from repro.schedule.ir import (
    LoopNest,
    Reorder,
    ScheduledNest,
    Tile,
    Transform,
    Unroll,
    Vectorize,
    apply_transforms,
)
from repro.simulator.hwconfig import HardwareConfig

Params = dict[str, int]

#: Direct output-row unroll candidates (the paper's choice is the full
#: 24-register accumulator budget).
DIRECT_UW_GRID: tuple[int, ...] = (4, 8, 12, 16, 20, 24)

#: 3-loop i-block unroll candidates (paper: 16; 28 is the register cap).
GEMM3_UNROLL_GRID: tuple[int, ...] = (4, 8, 12, 16, 20, 24, 28)

#: 6-loop block-size candidates — exactly the old ``blocktuner`` grid.
GEMM6_BM_GRID: tuple[int, ...] = (16, 32)
GEMM6_BN_GRID: tuple[int, ...] = (256, 512, 1024, 2048)
GEMM6_BK_GRID: tuple[int, ...] = (64, 128, 256, 512)

#: Micro-kernel register-tile cap (32 vector regs minus B/scratch).
_REG_TILE_CAP = 28


def gemm6_block_candidates(
    hw: HardwareConfig,
) -> list[tuple[int, int, int]]:
    """6-loop (bm, bn, bk) candidates for one config, default first.

    The grid and the L2-residency filter (``bk * bn * 4 <= l2_bytes``:
    an over-L2 packed-B block always thrashes) are exactly the old
    ``blocktuner`` search space; its shim iterates this same list, so
    tuning results are unchanged.
    """
    default = (gk.BLOCK_M, gk.BLOCK_N, gk.BLOCK_K)
    out = [default]
    for bm in GEMM6_BM_GRID:
        for bn in GEMM6_BN_GRID:
            for bk in GEMM6_BK_GRID:
                if bk * bn * 4 > hw.l2_bytes:
                    continue
                if (bm, bn, bk) != default:
                    out.append((bm, bn, bk))
    return out


class KernelTemplate:
    """One menu algorithm's schedule, as data.

    Subclasses define the knob grid and the IR mapping; the base class
    provides candidate enumeration and validation glue.
    """

    #: Registry name of the algorithm this template parameterizes.
    algorithm: str = ""
    #: Canonical knob order (used by variant names and tokens).
    param_keys: tuple[str, ...] = ()

    def default_params(self, spec: ConvSpec, hw: HardwareConfig) -> Params:
        """Knob values reproducing the hand-written schedule bit-identically."""
        raise NotImplementedError

    def candidate_params(self, spec: ConvSpec, hw: HardwareConfig) -> list[Params]:
        """All legal knob settings for this layer/hardware, default first.

        Deterministic: candidates follow the sorted grids, with the
        default hoisted to position 0 so ties resolve toward the menu.
        """
        raise NotImplementedError

    def nest(self, spec: ConvSpec, hw: HardwareConfig) -> LoopNest:
        """The algorithm's base iteration space for ``spec``."""
        raise NotImplementedError

    def transforms(
        self, spec: ConvSpec, hw: HardwareConfig, params: Params
    ) -> tuple[Transform, ...]:
        """The transform sequence realizing ``params`` on the base nest."""
        raise NotImplementedError

    def lower(self, params: Params) -> ConvAlgorithm:
        """A ConvAlgorithm instance carrying ``params``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def scheduled(
        self, spec: ConvSpec, hw: HardwareConfig, params: Params
    ) -> ScheduledNest:
        """Apply the params' transforms to the base nest (legality-checked)."""
        self.validate(params)
        return apply_transforms(self.nest(spec, hw), self.transforms(spec, hw, params))

    def validate(self, params: Params) -> None:
        if set(params) != set(self.param_keys):
            raise ScheduleError(
                f"{self.algorithm}: params must be exactly "
                f"{self.param_keys}, got {sorted(params)}"
            )


# --------------------------------------------------------------------- #
# Direct
# --------------------------------------------------------------------- #
class DirectTemplate(KernelTemplate):
    """NHWC direct convolution: OC-group x OH x OW-block, taps inner.

    Knob ``uw``: the output-row unroll cap (accumulator registers per
    OC-group).  The kernel clamps it to ``min(ow, uw, 24)``.
    """

    algorithm = "direct"
    param_keys = ("uw",)

    def default_params(self, spec: ConvSpec, hw: HardwareConfig) -> Params:
        return {"uw": _ACC_REGS}

    def candidate_params(self, spec: ConvSpec, hw: HardwareConfig) -> list[Params]:
        default = self.default_params(spec, hw)
        out = [default]
        for uw in DIRECT_UW_GRID:
            # settings that clamp to the same effective unroll are duplicates
            if uw != default["uw"] and _unroll_ow(spec.ow, uw) != _unroll_ow(
                spec.ow, default["uw"]
            ):
                out.append({"uw": uw})
        return out

    def nest(self, spec: ConvSpec, hw: HardwareConfig) -> LoopNest:
        return LoopNest(
            name="direct",
            axes=("oc", "oh", "ow", "ic", "kh", "kw"),
            extents=(spec.oc, spec.oh, spec.ow, spec.ic, spec.kh, spec.kw),
        )

    def transforms(
        self, spec: ConvSpec, hw: HardwareConfig, params: Params
    ) -> tuple[Transform, ...]:
        uw = _unroll_ow(spec.ow, params["uw"])
        return (
            Tile("oc", hw.vlmax_f32),
            Tile("ow", uw),
            Reorder(("oc.o", "oh", "ow.o", "ic", "kh", "kw", "ow.i", "oc.i")),
            Unroll("ow.i"),
            Vectorize("oc.i"),
        )

    def lower(self, params: Params) -> ConvAlgorithm:
        self.validate(params)
        return DirectConv(unroll_ow=params["uw"])


# --------------------------------------------------------------------- #
# im2col + 3-loop GEMM
# --------------------------------------------------------------------- #
class Gemm3Template(KernelTemplate):
    """im2col + jik GEMM: N-strips x unrolled M-blocks x K inner.

    Knob ``u``: the i-block unroll factor (accumulator registers).  The
    analytical face additionally clamps it to the LMUL register budget.
    """

    algorithm = "im2col_gemm3"
    param_keys = ("u",)

    def default_params(self, spec: ConvSpec, hw: HardwareConfig) -> Params:
        return {"u": gk.UNROLL}

    def candidate_params(self, spec: ConvSpec, hw: HardwareConfig) -> list[Params]:
        default = self.default_params(spec, hw)
        cap = max(1, min(gk.MAX_UNROLL, 32 // hw.lmul - 4))

        def effective(u: int) -> int:
            return min(u, cap, spec.gemm_m)

        out = [default]
        seen = {effective(default["u"])}
        for u in GEMM3_UNROLL_GRID:
            if effective(u) not in seen:
                seen.add(effective(u))
                out.append({"u": u})
        return out

    def nest(self, spec: ConvSpec, hw: HardwareConfig) -> LoopNest:
        return LoopNest(
            name="gemm3",
            axes=("j", "i", "k"),
            extents=(spec.gemm_n, spec.gemm_m, spec.gemm_k),
        )

    def transforms(
        self, spec: ConvSpec, hw: HardwareConfig, params: Params
    ) -> tuple[Transform, ...]:
        u = min(params["u"], spec.gemm_m)
        return (
            Tile("j", hw.vlmax_f32),
            Tile("i", u),
            Reorder(("j.o", "i.o", "k", "i.i", "j.i")),
            Unroll("i.i"),
            Vectorize("j.i"),
        )

    def lower(self, params: Params) -> ConvAlgorithm:
        self.validate(params)
        return Im2colGemm3(unroll=params["u"])


# --------------------------------------------------------------------- #
# im2col + 6-loop GEMM
# --------------------------------------------------------------------- #
class Gemm6Template(KernelTemplate):
    """im2col + BLIS-like GEMM: (bn, bk, bm) blocking over (j, k, i).

    Knobs ``bm``/``bn``/``bk``: the block sizes, over the old
    ``blocktuner`` grid, filtered by the L2-residency constraint on the
    packed-B block (``bk * bn * 4 <= l2_bytes``).  Blocks larger than the
    register file strip-mine the micro-kernel (``i.i`` is register-tiled
    before unrolling), so ``bm = 32`` stays legal in the IR.
    """

    algorithm = "im2col_gemm6"
    param_keys = ("bm", "bn", "bk")

    def default_params(self, spec: ConvSpec, hw: HardwareConfig) -> Params:
        return {"bm": gk.BLOCK_M, "bn": gk.BLOCK_N, "bk": gk.BLOCK_K}

    def candidate_params(self, spec: ConvSpec, hw: HardwareConfig) -> list[Params]:
        return [
            {"bm": bm, "bn": bn, "bk": bk}
            for bm, bn, bk in gemm6_block_candidates(hw)
        ]

    def nest(self, spec: ConvSpec, hw: HardwareConfig) -> LoopNest:
        return LoopNest(
            name="gemm6",
            axes=("j", "k", "i"),
            extents=(spec.gemm_n, spec.gemm_k, spec.gemm_m),
        )

    def transforms(
        self, spec: ConvSpec, hw: HardwareConfig, params: Params
    ) -> tuple[Transform, ...]:
        bm = min(params["bm"], spec.gemm_m)
        ru = min(bm, _REG_TILE_CAP)
        return (
            Tile("j", params["bn"]),
            Tile("k", params["bk"]),
            Tile("i", bm),
            Tile("j.i", hw.vlmax_f32),
            Tile("i.i", ru),
            Reorder(
                ("j.o", "k.o", "i.o", "j.i.o", "k.i", "i.i.o", "i.i.i", "j.i.i")
            ),
            Unroll("i.i.i"),
            Vectorize("j.i.i"),
        )

    def lower(self, params: Params) -> ConvAlgorithm:
        self.validate(params)
        return Im2colGemm6(blocks=(params["bm"], params["bn"], params["bk"]))


# --------------------------------------------------------------------- #
# Winograd
# --------------------------------------------------------------------- #
class WinogradTemplate(KernelTemplate):
    """Winograd F(6x6, 3x3): fixed tiles, inter-tile channel parallelism.

    No knobs: the 8x8 tile is pinned by fp32 accuracy (Paper I), so the
    template contributes only the menu default.  Its nest still documents
    the tuple-multiplication loop structure for the IR consumers.
    """

    algorithm = "winograd"
    param_keys = ()

    def default_params(self, spec: ConvSpec, hw: HardwareConfig) -> Params:
        return {}

    def candidate_params(self, spec: ConvSpec, hw: HardwareConfig) -> list[Params]:
        return [{}]

    def nest(self, spec: ConvSpec, hw: HardwareConfig) -> LoopNest:
        tiles_h = -(-spec.oh // TILE_M)
        tiles_w = -(-spec.ow // TILE_M)
        return LoopNest(
            name="winograd",
            axes=("oc", "tile", "ic", "elem"),
            extents=(spec.oc, max(1, tiles_h * tiles_w), spec.ic, TUPLE_ELEMS),
        )

    def transforms(
        self, spec: ConvSpec, hw: HardwareConfig, params: Params
    ) -> tuple[Transform, ...]:
        return (Vectorize("elem"),)

    def lower(self, params: Params) -> ConvAlgorithm:
        self.validate(params)
        return WinogradConv()


#: Templates in menu order (matching ``ALGORITHM_NAMES``).
TEMPLATES: dict[str, KernelTemplate] = {
    t.algorithm: t
    for t in (DirectTemplate(), Gemm3Template(), Gemm6Template(), WinogradTemplate())
}


def get_template(algorithm: str) -> KernelTemplate:
    """The template for a menu algorithm (ScheduleError if there is none)."""
    try:
        return TEMPLATES[algorithm]
    except KeyError:
        raise ScheduleError(
            f"no schedule template for {algorithm!r}; "
            f"templates exist for {sorted(TEMPLATES)}"
        )


__all__ = [
    "DIRECT_UW_GRID",
    "GEMM3_UNROLL_GRID",
    "GEMM6_BK_GRID",
    "GEMM6_BM_GRID",
    "GEMM6_BN_GRID",
    "DirectTemplate",
    "Gemm3Template",
    "Gemm6Template",
    "KernelTemplate",
    "Params",
    "TEMPLATES",
    "WinogradTemplate",
    "gemm6_block_candidates",
    "get_template",
]
