"""Schedule variants: named, materializable parameterizations of the menu.

A variant name is ``base@key=value,key=value`` with keys in the template's
canonical order — e.g. ``im2col_gemm3@u=24`` or
``im2col_gemm6@bm=32,bn=1024,bk=256``.  The grammar is:

* parseable (:func:`parse_variant`) and canonical
  (:func:`variant_name` always emits keys in template order);
* cross-process: engine workers receive only name strings, so
  :func:`repro.algorithms.registry.get_algorithm` calls
  :func:`materialize` for any name containing ``@`` — a variant name
  works anywhere a base name does, including memo-cache keys.

A materialized variant is the template's lowered algorithm instance with
its ``name`` set to the variant name (``label`` gains the knob suffix),
so the engine's content-addressed cache distinguishes variants while the
three faces (functional, traced, analytical) come straight from the
parameterized kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import ConvAlgorithm
from repro.errors import ScheduleError
from repro.schedule.templates import KernelTemplate, Params, get_template


@dataclass(frozen=True)
class ScheduleVariant:
    """A (base algorithm, knob values) point in the schedule space."""

    base: str
    params: tuple[tuple[str, int], ...]

    @property
    def name(self) -> str:
        return variant_name(self.base, dict(self.params))

    @property
    def is_default_named(self) -> bool:
        """True when this is the bare menu entry (no knob suffix)."""
        return not self.params

    def as_params(self) -> Params:
        return dict(self.params)


def variant_name(base: str, params: Params) -> str:
    """Canonical variant name: knobs in template order, ``base`` if empty."""
    if not params:
        return base
    template = get_template(base)
    template.validate(params)
    suffix = ",".join(f"{k}={int(params[k])}" for k in template.param_keys)
    return f"{base}@{suffix}"


def parse_variant(name: str) -> ScheduleVariant:
    """Parse ``base@k=v,...`` (or a bare base name) into a variant."""
    base, sep, suffix = name.partition("@")
    template = get_template(base)  # raises ScheduleError for unknown bases
    if not sep:
        return ScheduleVariant(base=base, params=())
    if not suffix:
        raise ScheduleError(f"variant name {name!r} has an empty knob suffix")
    params: Params = {}
    for item in suffix.split(","):
        key, eq, value = item.partition("=")
        if not eq or not key or not value:
            raise ScheduleError(
                f"variant name {name!r}: knob {item!r} is not 'key=value'"
            )
        if key in params:
            raise ScheduleError(f"variant name {name!r}: duplicate knob {key!r}")
        try:
            params[key] = int(value)
        except ValueError:
            raise ScheduleError(
                f"variant name {name!r}: knob {key!r} value {value!r} "
                f"is not an integer"
            )
    template.validate(params)
    return ScheduleVariant(
        base=base, params=tuple((k, params[k]) for k in template.param_keys)
    )


def materialize(name: str) -> ConvAlgorithm:
    """Build the ConvAlgorithm for a variant name.

    The instance is the template's lowering with ``name``/``label``
    rewritten to the canonical variant identity; knob validation happens
    in the kernel constructors (``ConfigError``) and the template
    (``ScheduleError``).
    """
    variant = parse_variant(name)
    template = get_template(variant.base)
    if variant.is_default_named:
        algo = template.lower(
            # bare base names materialize the grid-independent defaults
            _default_params(template)
        )
    else:
        algo = template.lower(variant.as_params())
    canonical = variant.name
    algo.name = canonical
    if variant.params:
        knobs = ",".join(f"{k}={v}" for k, v in variant.params)
        algo.label = f"{algo.label} [{knobs}]"
    return algo


def _default_params(template: KernelTemplate) -> Params:
    """Template defaults that do not depend on a layer/hardware point."""
    # every template's default_params ignores (spec, hw); pass None-safe
    # sentinels is unnecessary — call with concrete paper defaults instead.
    from repro.simulator.hwconfig import HardwareConfig

    return template.default_params(None, HardwareConfig())  # type: ignore[arg-type]


__all__ = [
    "ScheduleVariant",
    "materialize",
    "parse_variant",
    "variant_name",
]
