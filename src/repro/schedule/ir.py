"""A compact loop-nest IR with legality-checked schedule transforms.

The kernels of :mod:`repro.algorithms` hard-code the papers' hand-chosen
schedules (jik loop order, unroll 16, 16x512x128 BLIS blocks, fixed
Winograd tiles).  Following Exo/SYS_ATL's thesis that loop schedules are
*searchable objects*, this module lifts them into data:

* :class:`LoopNest` — a named iteration space (axes outer-to-inner, with
  per-axis extents);
* transforms — :class:`Tile`, :class:`Reorder`, :class:`Unroll`,
  :class:`Vectorize` — each a frozen dataclass with a legality check;
* :func:`apply_transforms` — folds a transform sequence over a nest into
  a :class:`ScheduledNest`, raising :class:`~repro.errors.ScheduleError`
  on any illegal step.

The IR is deliberately *descriptive*: a :class:`ScheduledNest` does not
generate code, it parameterizes the existing kernels (which accept the
tile/unroll factors as arguments) and their analytical schedules.  The
templates in :mod:`repro.schedule.templates` map nests to kernel
parameters and back; the search in :mod:`repro.schedule.search`
enumerates transform sequences within bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError

#: Architectural vector registers (RVV): the budget unroll factors must
#: respect (accumulators + operands + scratch).
VECTOR_REGS = 32


def _split_names(axis: str) -> tuple[str, str]:
    """Outer/inner axis names produced by tiling ``axis``."""
    return f"{axis}.o", f"{axis}.i"


def base_axis_of(axis: str) -> str:
    """The base-nest axis a (possibly tiled) axis derives from."""
    return axis.split(".", 1)[0]


@dataclass(frozen=True)
class LoopNest:
    """A named loop nest: axes outer-to-inner with positive extents."""

    name: str
    axes: tuple[str, ...]
    extents: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.axes) != len(self.extents):
            raise ScheduleError(
                f"nest {self.name!r}: {len(self.axes)} axes but "
                f"{len(self.extents)} extents"
            )
        if len(set(self.axes)) != len(self.axes):
            raise ScheduleError(f"nest {self.name!r}: duplicate axes {self.axes}")
        for axis, extent in zip(self.axes, self.extents):
            if "." in axis:
                raise ScheduleError(
                    f"nest {self.name!r}: base axis {axis!r} may not contain '.'"
                )
            if extent < 1:
                raise ScheduleError(
                    f"nest {self.name!r}: axis {axis!r} extent must be >= 1, "
                    f"got {extent}"
                )

    def extent(self, axis: str) -> int:
        return self.extents[self.axes.index(axis)]


# --------------------------------------------------------------------- #
# transforms
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Tile:
    """Split ``axis`` into an outer loop and an inner loop of ``factor``."""

    axis: str
    factor: int

    def token(self) -> str:
        return f"tile({self.axis},{self.factor})"


@dataclass(frozen=True)
class Reorder:
    """Permute the current axes into ``order`` (outer-to-inner)."""

    order: tuple[str, ...]

    def token(self) -> str:
        return f"reorder({','.join(self.order)})"


@dataclass(frozen=True)
class Unroll:
    """Fully unroll ``axis`` (its extent becomes the unroll factor)."""

    axis: str

    def token(self) -> str:
        return f"unroll({self.axis})"


@dataclass(frozen=True)
class Vectorize:
    """Map ``axis`` onto the vector lanes (one axis, innermost)."""

    axis: str

    def token(self) -> str:
        return f"vectorize({self.axis})"


Transform = Tile | Reorder | Unroll | Vectorize


# --------------------------------------------------------------------- #
# scheduled nests
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScheduledNest:
    """A loop nest after a legal transform sequence.

    ``axes``/``extents`` describe the current (possibly tiled) loop
    structure outer-to-inner; ``unrolled`` axes are fully unrolled and
    ``vector_axis`` (if any) is mapped to the vector unit.  Tail
    iterations are implicit: a tiled axis of extent ``e`` and factor
    ``f`` has outer extent ``ceil(e / f)`` with the last inner trip
    ragged, exactly like the kernels' strip-mined loops.
    """

    base: LoopNest
    axes: tuple[str, ...]
    extents: tuple[int, ...]
    unrolled: tuple[str, ...] = ()
    vector_axis: str | None = None
    transforms: tuple[Transform, ...] = field(default=(), compare=False)

    def extent(self, axis: str) -> int:
        try:
            return self.extents[self.axes.index(axis)]
        except ValueError:
            raise ScheduleError(
                f"nest {self.base.name!r} has no axis {axis!r} "
                f"(axes: {self.axes})"
            )

    def unroll_factor(self, base_axis: str) -> int:
        """Product of unrolled-axis extents deriving from ``base_axis``."""
        factor = 1
        for axis in self.unrolled:
            if base_axis_of(axis) == base_axis:
                factor *= self.extent(axis)
        return factor

    def tile_factor(self, base_axis: str) -> int | None:
        """Inner extent of the innermost tile of ``base_axis`` (or None)."""
        candidates = [
            (axis, extent)
            for axis, extent in zip(self.axes, self.extents)
            if base_axis_of(axis) == base_axis and axis.endswith(".i")
        ]
        if not candidates:
            return None
        # innermost split = the axis with the most ".i" suffixes
        axis, extent = max(candidates, key=lambda c: c[0].count("."))
        return extent

    def total_unroll(self) -> int:
        """Product of all unroll factors (register-pressure proxy)."""
        factor = 1
        for axis in self.unrolled:
            factor *= self.extent(axis)
        return factor

    def describe(self) -> str:
        parts = []
        for axis, extent in zip(self.axes, self.extents):
            marks = ""
            if axis in self.unrolled:
                marks += "*"
            if axis == self.vector_axis:
                marks += "v"
            parts.append(f"{axis}{('[' + marks + ']') if marks else ''}:{extent}")
        return f"{self.base.name}({', '.join(parts)})"


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _apply_one(nest: ScheduledNest, transform: Transform) -> ScheduledNest:
    name = nest.base.name
    axes, extents = list(nest.axes), list(nest.extents)
    unrolled = nest.unrolled
    vector_axis = nest.vector_axis

    if isinstance(transform, Tile):
        axis, factor = transform.axis, transform.factor
        if axis not in axes:
            raise ScheduleError(f"{name}: cannot tile unknown axis {axis!r}")
        if factor < 1:
            raise ScheduleError(
                f"{name}: tile factor for {axis!r} must be >= 1, got {factor}"
            )
        if axis in unrolled:
            raise ScheduleError(f"{name}: cannot tile unrolled axis {axis!r}")
        if axis == vector_axis:
            raise ScheduleError(f"{name}: cannot tile vectorized axis {axis!r}")
        outer, inner = _split_names(axis)
        if outer in axes or inner in axes:
            raise ScheduleError(f"{name}: axis {axis!r} is already tiled")
        pos = axes.index(axis)
        extent = extents[pos]
        axes[pos] = outer
        extents[pos] = _ceil_div(extent, factor)
        axes.insert(pos + 1, inner)
        extents.insert(pos + 1, min(factor, extent))
    elif isinstance(transform, Reorder):
        order = tuple(transform.order)
        if sorted(order) != sorted(axes):
            raise ScheduleError(
                f"{name}: reorder {order} is not a permutation of {tuple(axes)}"
            )
        extents = [extents[axes.index(a)] for a in order]
        axes = list(order)
    elif isinstance(transform, Unroll):
        axis = transform.axis
        if axis not in axes:
            raise ScheduleError(f"{name}: cannot unroll unknown axis {axis!r}")
        if axis in unrolled:
            raise ScheduleError(f"{name}: axis {axis!r} is already unrolled")
        if axis == vector_axis:
            raise ScheduleError(f"{name}: cannot unroll vectorized axis {axis!r}")
        unrolled = unrolled + (axis,)
    elif isinstance(transform, Vectorize):
        axis = transform.axis
        if axis not in axes:
            raise ScheduleError(f"{name}: cannot vectorize unknown axis {axis!r}")
        if vector_axis is not None:
            raise ScheduleError(f"{name}: axis {vector_axis!r} is already vectorized")
        if axis in unrolled:
            raise ScheduleError(f"{name}: cannot vectorize unrolled axis {axis!r}")
        vector_axis = axis
    else:  # pragma: no cover - the Transform union is closed
        raise ScheduleError(f"{name}: unknown transform {transform!r}")

    return ScheduledNest(
        base=nest.base,
        axes=tuple(axes),
        extents=tuple(extents),
        unrolled=unrolled,
        vector_axis=vector_axis,
        transforms=nest.transforms + (transform,),
    )


def apply_transforms(
    nest: LoopNest, transforms: tuple[Transform, ...] | list[Transform]
) -> ScheduledNest:
    """Fold ``transforms`` over ``nest``, validating every step.

    Final legality invariants (beyond the per-step checks):

    * the vectorized axis, if any, must be innermost — the kernels
      strip-mine their vector axis in the innermost position;
    * the total unroll factor must leave room in the 32-entry vector
      register file (unrolled accumulators + operand/scratch registers).
    """
    sched = ScheduledNest(
        base=nest, axes=nest.axes, extents=nest.extents, transforms=()
    )
    for transform in transforms:
        sched = _apply_one(sched, transform)
    if sched.vector_axis is not None and sched.axes[-1] != sched.vector_axis:
        raise ScheduleError(
            f"{nest.name}: vectorized axis {sched.vector_axis!r} must be "
            f"innermost (axes: {sched.axes})"
        )
    if sched.total_unroll() > VECTOR_REGS - 4:
        raise ScheduleError(
            f"{nest.name}: total unroll {sched.total_unroll()} exceeds the "
            f"register budget ({VECTOR_REGS - 4} accumulators)"
        )
    return sched


def transforms_token(transforms: tuple[Transform, ...] | list[Transform]) -> str:
    """Canonical one-line rendering of a transform sequence."""
    return ";".join(t.token() for t in transforms)
