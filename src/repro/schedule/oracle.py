"""Counts-mode instruction oracle for schedule candidates.

The search scores candidates with the analytical/PhaseTable model (fast,
whole-grid).  This module is the *second opinion*: it executes a
candidate's traced kernel under ``trace="counts"`` — no event storage,
full-size layers are fine — and returns the aggregate
:class:`~repro.isa.trace.TraceStats`.  Two uses:

* the identity check — a default-parameter variant must reproduce the
  menu kernel's counts bit-identically (CI property test);
* ranking sanity — instruction counts give a model-independent ordering
  signal for small candidate sets.
"""

from __future__ import annotations

from repro.algorithms.registry import get_algorithm
from repro.isa.machine import VectorMachine
from repro.isa.trace import TraceStats
from repro.nn.layer import ConvSpec
from repro.utils.prng import synthetic_tensor


def counts_stats(
    algorithm: str, spec: ConvSpec, vlen_bits: int, seed: int = 0
) -> TraceStats:
    """Run one schedule's traced kernel in counts mode and return its stats.

    ``algorithm`` may be a menu name or a variant name (materialized via
    the registry).  Inputs are deterministic synthetic tensors, so equal
    schedules produce equal stats *and* equal outputs.
    """
    algo = get_algorithm(algorithm)
    algo.check_applicable(spec)
    machine = VectorMachine(vlen_bits, trace="counts")
    x = synthetic_tensor((spec.ic, spec.ih, spec.iw), seed=seed)
    w = synthetic_tensor((spec.oc, spec.ic, spec.kh, spec.kw), seed=seed + 1)
    algo.run_vectorized(spec, x, w, machine)
    return machine.trace.stats


def counts_equal(a: str, b: str, spec: ConvSpec, vlen_bits: int) -> bool:
    """True when two schedules' counts-mode stats are bit-identical."""
    return counts_stats(a, spec, vlen_bits) == counts_stats(b, spec, vlen_bits)


__all__ = ["counts_equal", "counts_stats"]
