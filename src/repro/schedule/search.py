"""Deterministic, seeded search over the schedule space.

For every (layer, VL, L2) cell the driver enumerates each applicable
template's candidate schedules (exhaustive within the knob grids, with a
seeded subsample only when a cell exceeds the candidate cap), scores
them through the memoized :class:`~repro.engine.EvaluationEngine`
(analytical/PhaseTable oracle — one batch across all cells, so the
engine's cache, grid fast path and worker pool all apply), and reports
the best schedule per cell against the fixed four-algorithm menu.

Guarantees, relied on by the CI smoke gate:

* **match-or-beat** — the menu defaults are always candidates and lower
  to bit-identical phases, so ``best_cycles <= menu_cycles`` on every
  cell (the ratio is >= 1.0 by construction);
* **menu-sticky ties** — a variant must be *strictly* faster to displace
  the menu winner;
* **bit-determinism** — candidate enumeration is sorted, subsampling is
  seeded per cell (independent of cell iteration order), and scoring is
  pure, so two runs with one seed produce identical reports.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro import obs
from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.engine import EvalTask, EvaluationEngine, default_engine
from repro.errors import ScheduleError
from repro.nn.layer import ConvSpec
from repro.schedule.templates import get_template
from repro.schedule.variants import variant_name
from repro.simulator.hwconfig import HardwareConfig
from repro.utils.prng import DEFAULT_SEED, make_rng


@dataclass(frozen=True)
class SearchBounds:
    """Bounds of the exhaustive-within-grids search.

    ``max_candidates_per_cell`` caps the per-cell candidate count; cells
    over the cap keep every menu default and a seeded subsample of the
    variants (deterministic per cell).  ``seed`` drives only that
    subsampling — under the default bounds the grids fit the cap and the
    search is exhaustive, so the seed never changes the result.
    """

    algorithms: tuple[str, ...] = ALGORITHM_NAMES
    max_candidates_per_cell: int = 64
    seed: int = DEFAULT_SEED


@dataclass(frozen=True)
class CellSearchResult:
    """Best searched schedule vs the menu for one (layer, VL, L2) cell."""

    layer: int
    vlen_bits: int
    l2_mib: float
    menu_best: str
    menu_cycles: float
    best: str
    best_cycles: float
    candidates: int

    @property
    def ratio(self) -> float:
        """Menu-best over searched-best predicted cycles (>= 1.0)."""
        return self.menu_cycles / self.best_cycles

    @property
    def improved(self) -> bool:
        return self.best_cycles < self.menu_cycles


@dataclass(frozen=True)
class SearchReport:
    """All cells of one search run, with the aggregate CI-gated metrics."""

    cells: tuple[CellSearchResult, ...]
    bounds: SearchBounds = field(default_factory=SearchBounds)

    @property
    def beat_fraction(self) -> float:
        """Fraction of cells where a variant strictly beats the menu."""
        if not self.cells:
            return 0.0
        return sum(c.improved for c in self.cells) / len(self.cells)

    @property
    def geomean_ratio(self) -> float:
        """Geometric-mean menu/searched cycle ratio across cells."""
        if not self.cells:
            return 1.0
        return math.exp(sum(math.log(c.ratio) for c in self.cells) / len(self.cells))

    @property
    def min_ratio(self) -> float:
        """Worst-cell ratio — must be >= 1.0 (match-or-beat)."""
        return min((c.ratio for c in self.cells), default=1.0)

    def winner_names(self) -> tuple[str, ...]:
        """Distinct winning schedule names, sorted (menu + variants)."""
        return tuple(sorted({c.best for c in self.cells}))

    def rows(self) -> list[dict[str, object]]:
        """Flat per-cell rows for tables/CSV artifacts."""
        return [
            {
                "layer": c.layer,
                "vlen_bits": c.vlen_bits,
                "l2_mib": c.l2_mib,
                "menu_best": c.menu_best,
                "menu_cycles": round(c.menu_cycles, 3),
                "best": c.best,
                "best_cycles": round(c.best_cycles, 3),
                "ratio": round(c.ratio, 6),
                "candidates": c.candidates,
            }
            for c in self.cells
        ]


def _cell_seed(seed: int, spec: ConvSpec, hw: HardwareConfig) -> int:
    """Per-cell subsampling seed, independent of cell iteration order."""
    token = f"{seed}:{spec.index}:{hw.vlen_bits}:{hw.l2_mib:g}"
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


def cell_candidates(
    spec: ConvSpec, hw: HardwareConfig, bounds: SearchBounds
) -> tuple[list[str], list[str]]:
    """(menu defaults, all candidates) for one cell, deterministic order.

    Menu defaults keep their bare registry names — they score through the
    same cache entries the rest of the repo uses and anchor the
    match-or-beat guarantee.  Variants that fail a legality check are
    skipped (the grids are constructed legal; this guards template
    evolution).  Over-cap cells keep all defaults and a seeded subsample
    of the variants.
    """
    menu: list[str] = []
    variants: list[str] = []
    for algo_name in bounds.algorithms:
        if not get_algorithm(algo_name).applicable(spec):
            continue
        template = get_template(algo_name)
        params_list = template.candidate_params(spec, hw)
        menu.append(algo_name)  # candidate_params()[0] is the default
        for params in params_list[1:]:
            try:
                template.scheduled(spec, hw, params)
            except ScheduleError:
                continue
            variants.append(variant_name(algo_name, params))
    budget = max(0, bounds.max_candidates_per_cell - len(menu))
    if len(variants) > budget:
        rng = make_rng(_cell_seed(bounds.seed, spec, hw))
        keep = sorted(rng.choice(len(variants), size=budget, replace=False))
        variants = [variants[i] for i in keep]
    return menu, menu + variants


def search_schedules(
    specs: list[ConvSpec],
    configs: list[HardwareConfig],
    engine: EvaluationEngine | None = None,
    bounds: SearchBounds | None = None,
    max_workers: int | None = None,
) -> SearchReport:
    """Search every (spec, config) cell and report best-vs-menu schedules.

    All candidate scores are requested as one ``evaluate_many`` batch with
    ``fallback=False`` (inapplicable algorithms are filtered during
    enumeration), so memoization and parallelism are the engine's
    concern; a repeated run with a warm cache re-reads the same records.
    """
    bounds = bounds if bounds is not None else SearchBounds()
    engine = engine if engine is not None else default_engine()
    points = [(spec, hw) for spec in specs for hw in configs]
    with obs.span(
        "schedule.search",
        cat="schedule",
        cells=len(points),
        algorithms=len(bounds.algorithms),
    ):
        per_cell: list[tuple[list[str], list[str]]] = []
        tasks: list[EvalTask] = []
        for spec, hw in points:
            menu, names = cell_candidates(spec, hw, bounds)
            per_cell.append((menu, names))
            tasks.extend(EvalTask(n, spec, hw, fallback=False) for n in names)
        obs.count("schedule.search.cells", len(points))
        obs.count("schedule.search.candidates", len(tasks))

        records = engine.evaluate_many(tasks, max_workers=max_workers)

        cells: list[CellSearchResult] = []
        improved = 0
        cursor = 0
        for (spec, hw), (menu, names) in zip(points, per_cell):
            scores = {}
            for name in names:
                scores[name] = records[cursor].cycles  # type: ignore[union-attr]
                cursor += 1
            if not menu:
                continue  # no applicable algorithm: nothing to compare
            menu_best = min(menu, key=lambda n: scores[n])
            menu_cycles = scores[menu_best]
            best, best_cycles = menu_best, menu_cycles
            for name in names:
                if scores[name] < best_cycles:
                    best, best_cycles = name, scores[name]
            improved += best_cycles < menu_cycles
            obs.observe("schedule.search.ratio", menu_cycles / best_cycles)
            cells.append(
                CellSearchResult(
                    layer=spec.index,
                    vlen_bits=hw.vlen_bits,
                    l2_mib=hw.l2_mib,
                    menu_best=menu_best,
                    menu_cycles=menu_cycles,
                    best=best,
                    best_cycles=best_cycles,
                    candidates=len(names),
                )
            )
        obs.count("schedule.search.improved", improved)
    return SearchReport(cells=tuple(cells), bounds=bounds)


__all__ = [
    "CellSearchResult",
    "SearchBounds",
    "SearchReport",
    "cell_candidates",
    "search_schedules",
]
