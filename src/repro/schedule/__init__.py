"""Loop-nest schedule IR, kernel templates, and deterministic search.

The package turns the repo's hand-written kernel schedules into
searchable objects:

* :mod:`repro.schedule.ir` — tile/reorder/unroll/vectorize transforms
  over named loop nests, with legality checks;
* :mod:`repro.schedule.templates` — the four menu algorithms' schedules
  as IR instances with knob grids (absorbing the old ``blocktuner``);
* :mod:`repro.schedule.variants` — the ``base@knob=value`` naming
  grammar that makes searched schedules first-class registry citizens;
* :mod:`repro.schedule.search` — the seeded per-(layer, VL, L2) search
  driver scoring candidates through the memoized evaluation engine;
* :mod:`repro.schedule.oracle` — the counts-mode instruction-trace
  second opinion.
"""

from repro.schedule.ir import (
    LoopNest,
    Reorder,
    ScheduledNest,
    Tile,
    Transform,
    Unroll,
    Vectorize,
    apply_transforms,
    transforms_token,
)
from repro.schedule.search import (
    CellSearchResult,
    SearchBounds,
    SearchReport,
    cell_candidates,
    search_schedules,
)
from repro.schedule.templates import TEMPLATES, KernelTemplate, get_template
from repro.schedule.variants import (
    ScheduleVariant,
    materialize,
    parse_variant,
    variant_name,
)

__all__ = [
    "CellSearchResult",
    "KernelTemplate",
    "LoopNest",
    "Reorder",
    "ScheduleVariant",
    "ScheduledNest",
    "SearchBounds",
    "SearchReport",
    "TEMPLATES",
    "Tile",
    "Transform",
    "Unroll",
    "Vectorize",
    "apply_transforms",
    "cell_candidates",
    "get_template",
    "materialize",
    "parse_variant",
    "search_schedules",
    "transforms_token",
    "variant_name",
]
