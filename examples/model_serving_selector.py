"""Model serving with per-layer algorithm selection (the paper's headline).

Trains the random-forest selector on the 448-point dataset, then serves
VGG-16 on a chosen configuration three ways — best single algorithm,
cycle-optimal per layer, and RF-predicted per layer — and finishes with the
co-location throughput analysis of Fig. 12.

Run:  python examples/model_serving_selector.py
"""

from repro import HardwareConfig
from repro.algorithms.registry import ALGORITHM_NAMES, get_algorithm
from repro.experiments.configs import workload
from repro.selection import AlgorithmSelector, build_dataset
from repro.serving import ColocationScenario, evaluate_colocation, network_cycles
from repro.utils.tables import Table


def main() -> None:
    print("Building the 28-layer x 16-config dataset and training the RF...")
    dataset = build_dataset()
    selector = AlgorithmSelector(n_estimators=60)
    report = selector.train(dataset)
    print(" ", report.summary(), "\n")

    hw = HardwareConfig.paper2_rvv(2048, 1.0)  # the paper's Pareto knee
    specs = workload("vgg16")

    table = Table(["policy", "network time (s @2GHz)", "vs optimal"],
                  title=f"VGG-16 on {hw.label()}")
    optimal = network_cycles(specs, hw, "optimal")
    for policy in ALGORITHM_NAMES + ("optimal", "predicted"):
        t = network_cycles(specs, hw, policy, selector=selector)
        label = get_algorithm(policy).label if policy in ALGORITHM_NAMES else policy
        table.add_row(
            [label, t.seconds(), f"{t.total_cycles / optimal.total_cycles:.2f}x"]
        )
    print(table.render())

    predicted = network_cycles(specs, hw, "predicted", selector=selector)
    choices = ", ".join(
        f"L{i}:{predicted.chosen[i].replace('im2col_', '')}"
        for i in sorted(predicted.chosen)
    )
    print(f"Predicted per-layer algorithms: {choices}\n")

    print("Co-located serving (Fig. 12 methodology):")
    serving = Table(
        ["instances", "shared L2", "area mm^2", "images/s @2GHz",
         "throughput/mm^2 (img/s)"],
    )
    for cores, l2 in ((1, 4.0), (4, 16.0), (16, 64.0), (64, 256.0)):
        result = evaluate_colocation(
            ColocationScenario(cores=cores, vlen_bits=2048, shared_l2_mib=l2,
                               instances=cores),
            specs,
        )
        serving.add_row(
            [cores, f"{l2:g}MB", result.area_mm2,
             result.images_per_second(),
             result.images_per_second() / result.area_mm2]
        )
    print(serving.render())
    print("Throughput per area stays ~flat as instances scale: co-location +")
    print("per-layer selection uses the silicon efficiently (Paper II §4.4).")


if __name__ == "__main__":
    main()
