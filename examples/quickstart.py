"""Quickstart: run one convolutional layer through all four algorithms.

Shows the three faces of every algorithm:
  1. functional execution (numerically checked against the reference);
  2. the intrinsics-level kernel on the functional RVV machine (instruction
     mix, average vector length);
  3. the analytical timing model (cycles on a chosen hardware config).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ConvSpec, HardwareConfig, all_algorithms, layer_cycles
from repro.isa import VectorMachine
from repro.nn.reference import conv2d_reference
from repro.utils.tables import Table


def main() -> None:
    # a small 3x3/stride-1 layer every algorithm supports
    spec = ConvSpec(ic=8, oc=16, ih=24, iw=24, kh=3, kw=3, index=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((spec.ic, spec.ih, spec.iw)).astype(np.float32)
    w = (0.3 * rng.standard_normal((spec.oc, spec.ic, 3, 3))).astype(np.float32)
    reference = conv2d_reference(spec, x, w)

    hw = HardwareConfig.paper2_rvv(vlen_bits=512, l2_mib=1.0)
    print(f"Layer: {spec.describe()}")
    print(f"Hardware: {hw.label()} (integrated RVV, Paper II platform)\n")

    table = Table(
        ["algorithm", "max |err|", "vector instrs", "avg VL",
         "est. cycles (x1e6)", "bound"],
    )
    for algo in all_algorithms():
        if not algo.applicable(spec):
            continue
        # 1. functional correctness
        out = algo.run(spec, x, w)
        err = float(np.abs(out - reference).max())
        # 2. the real vectorized kernel on the functional RVV machine
        machine = VectorMachine(hw.vlen_bits, trace=False)
        algo.run_vectorized(spec, x, w, machine)
        stats = machine.trace.stats
        # 3. analytical timing of the full-size layer
        cycles = layer_cycles(algo.name, spec, hw, fallback=False)
        table.add_row(
            [algo.label, f"{err:.2e}", stats.vector_instrs,
             f"{stats.average_vl():.1f}", cycles.cycles / 1e6,
             cycles.dominant_bound()]
        )
    print(table.render())
    print("All outputs match the reference convolution; the timing column is")
    print("what the co-design experiments compare across configurations.")


if __name__ == "__main__":
    main()
