"""Co-design sweep: vector length x L2 cache for chosen layers.

Reproduces the methodology of the paper's Figs. 3-8 interactively: pick a
network and sweep each algorithm across the hardware grid, printing per-layer
winners so the layer-dimension/hardware interactions are visible.

Run:  python examples/codesign_sweep.py [vgg16|yolov3]
"""

import sys

from repro import HardwareConfig, best_algorithm
from repro.experiments.configs import L2_SIZES_MIB, VECTOR_LENGTHS, workload
from repro.utils.tables import Table


def main(model: str = "vgg16") -> None:
    specs = workload(model)
    print(f"Per-layer winning algorithm for {model} across the VLxL2 grid\n")

    table = Table(
        ["config"] + [f"L{s.index}" for s in specs],
        title=f"{model}: cycle-optimal algorithm per layer",
    )
    short = {
        "direct": "dir",
        "im2col_gemm3": "g3",
        "im2col_gemm6": "g6",
        "winograd": "wg",
    }
    for vl in VECTOR_LENGTHS:
        for l2 in L2_SIZES_MIB:
            hw = HardwareConfig.paper2_rvv(vl, l2)
            winners = [short[best_algorithm(s, hw)[0]] for s in specs]
            table.add_row([hw.label()] + winners)
    print(table.render())

    print("Reading guide (matches Paper II §4.1-4.2):")
    print(" * dir wins the high-resolution, low-channel first layers, and")
    print("   takes over more layers as the vector length grows;")
    print(" * wg owns early 3x3 layers at short vectors, fades at 4096b;")
    print(" * g6 rules the deep skinny layers; g3 the 1x1 reductions.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg16")
