"""Close the co-design loop: recommend a chip for a serving workload.

Given a network and an area budget, search vector length x cache x core
count jointly with the algorithm policy, then stress the recommended design
with the discrete-event serving simulator to see its latency under load —
the end-to-end version of the papers' "co-design for model serving" message.

Run:  python examples/design_recommender.py [area_budget_mm2]
"""

import sys

from repro.nn.models import vgg16_conv_specs
from repro.serving import ServingSimulator, recommend_design
from repro.serving.colocation import ColocationScenario, evaluate_colocation
from repro.utils.tables import Table


def main(budget_mm2: float = 40.0) -> None:
    specs = vgg16_conv_specs()
    print(f"Searching designs for VGG-16 serving within {budget_mm2:.0f} mm^2...\n")

    table = Table(["policy", "recommended design"])
    recs = {}
    for policy in ("im2col_gemm6", "optimal"):
        rec = recommend_design(specs, budget_mm2, policy=policy)
        recs[policy] = rec
        table.add_row([policy, rec.describe()])
    print(table.render())
    gain = (
        recs["optimal"].images_per_second / recs["im2col_gemm6"].images_per_second
    )
    print(f"Per-layer algorithm selection buys {gain:.2f}x throughput in the "
          f"same area budget.\n")

    rec = recs["optimal"]
    scenario = ColocationScenario(
        cores=rec.cores, vlen_bits=rec.vlen_bits,
        shared_l2_mib=rec.shared_l2_mib, instances=rec.cores,
        policy="optimal",
    )
    sim = ServingSimulator.from_colocation(
        evaluate_colocation(scenario, specs), seed=11
    )
    print(f"Stress-testing the recommended design "
          f"(capacity {sim.capacity_rps:.1f} req/s):")
    load_table = Table(["offered load", "p50 latency (ms)", "p99 latency (ms)",
                        "utilization"])
    for frac, stats in sim.load_sweep((0.3, 0.6, 0.9), n_requests=3000).items():
        load_table.add_row(
            [f"{frac:.0%}", stats.p50 * 1e3, stats.p99 * 1e3,
             f"{stats.utilization:.0%}"]
        )
    print(load_table.render())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 40.0)
