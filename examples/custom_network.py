"""Define a custom CNN with a Darknet-style cfg and run it end to end.

Demonstrates the mini-Darknet substrate: the cfg parser builds the layer
graph with shape tracking, inference runs functionally with a *different
convolution algorithm per layer* (picked by the analytical model for a
target hardware configuration), and the result is numerically identical to
the reference execution.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro import HardwareConfig, best_algorithm, get_algorithm
from repro.nn import parse_cfg
from repro.utils.tables import Table

CFG = """
# A small detector-style backbone
[net]
channels=3
height=64
width=64

[convolutional]
filters=16
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[convolutional]
filters=32
size=3
stride=1
pad=1
activation=leaky

[convolutional]
filters=16
size=1
stride=1
activation=leaky

[convolutional]
filters=32
size=3
stride=1
pad=1
activation=leaky

[shortcut]
from=-3

[convolutional]
filters=64
size=3
stride=2
pad=1
activation=leaky

[avgpool]

[connected]
output=10
activation=linear

[softmax]
"""


def main() -> None:
    net = parse_cfg(CFG, name="mini-detector")
    print(net.describe(), "\n")

    hw = HardwareConfig.paper2_rvv(1024, 4.0)
    table = Table(["layer", "chosen algorithm", "est. cycles (x1e6)"],
                  title=f"Per-layer algorithm choice for {hw.label()}")
    conv_fns = {}
    for spec in net.conv_specs():
        name, cycles = best_algorithm(spec, hw)
        conv_fns[spec.index] = get_algorithm(name).conv_fn()
        table.add_row([spec.describe(), name, cycles[name] / 1e6])
    print(table.render())

    rng = np.random.default_rng(42)
    image = rng.standard_normal((3, 64, 64)).astype(np.float32)
    mixed = net.forward(image, conv_fns=conv_fns)
    reference = net.forward(image)
    err = float(np.abs(mixed - reference).max())
    print(f"class probabilities (top-3): "
          f"{np.sort(mixed)[::-1][:3].round(4).tolist()}")
    print(f"max |mixed - reference| = {err:.2e}  "
          f"(per-layer algorithm mixing is numerically safe)")


if __name__ == "__main__":
    main()
