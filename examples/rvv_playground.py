"""Program the functional RVV machine directly (vector-length agnostic).

Writes SAXPY and a tiled GEMM against the EPI-style intrinsics, runs them at
several vector lengths without changing a line (the VLA property the paper's
kernels rely on), and replays the traces on two timing models — the
integrated Paper II unit and the decoupled Paper I unit — to show why the
same code performs differently on the two microarchitectures.

Run:  python examples/rvv_playground.py
"""

import numpy as np

from repro.isa import EpiIntrinsics, VectorMachine
from repro.simulator.hwconfig import HardwareConfig
from repro.simulator.timing import TraceTimingModel
from repro.utils.tables import Table


def saxpy(machine: VectorMachine, n: int) -> np.ndarray:
    """y = a*x + y, strip-mined with vsetvl (VLA)."""
    epi = EpiIntrinsics(machine)
    x = machine.alloc_from("x", np.arange(n, dtype=np.float32))
    y = machine.alloc_from("y", np.ones(n, dtype=np.float32))
    i = 0
    while i < n:
        gvl = epi.vsetvl_e32(n - i)
        epi.vload(0, y, i)
        epi.vload(1, x, i)
        epi.vfmacc_vf(0, 2.0, 1)
        epi.vstore(0, y, i)
        i += gvl
    return y.array


def tiny_gemm(machine: VectorMachine, m: int, k: int, n: int) -> np.ndarray:
    """C = A @ B with the paper's jik strip-mined structure."""
    epi = EpiIntrinsics(machine)
    rng = np.random.default_rng(1)
    a = rng.standard_normal((m, k)).astype(np.float32)
    a_buf = machine.alloc_from("A", a)
    b_buf = machine.alloc_from("B", rng.standard_normal((k, n)).astype(np.float32))
    c_buf = machine.alloc("C", m * n)
    j = 0
    while j < n:
        gvl = epi.vsetvl_e32(n - j)
        for i in range(m):
            epi.vbroadcast(1, 0.0)
            for kk in range(k):
                epi.vload(0, b_buf, kk * n + j)
                epi.vfmacc_vf(1, float(a[i, kk]), 0)
            epi.vstore(1, c_buf, i * n + j)
        j += gvl
    return c_buf.array.reshape(m, n)


def main() -> None:
    print("SAXPY at three vector lengths (same code, VLA strip-mining):\n")
    table = Table(["VLEN", "instructions", "avg VL",
                   "integrated cycles", "decoupled cycles"])
    for vlen in (256, 1024, 4096):
        machine = VectorMachine(vlen)
        result = saxpy(machine, 10_000)
        assert np.allclose(result, 1.0 + 2.0 * np.arange(10_000))
        integrated = TraceTimingModel(
            HardwareConfig.paper2_rvv(vlen, 1.0)
        ).run(machine.trace)
        decoupled = TraceTimingModel(
            HardwareConfig.paper1_riscvv(vlen, 1.0)
        ).run(machine.trace)
        stats = machine.trace.stats
        table.add_row(
            [vlen, stats.total_instrs, f"{stats.average_vl():.0f}",
             f"{integrated.cycles:.0f}", f"{decoupled.cycles:.0f}"]
        )
    print(table.render())
    print("Longer vectors shrink the instruction stream; the decoupled unit")
    print("pays L2-latency on every access, the integrated one hits its L1.\n")

    machine = VectorMachine(512)
    c = tiny_gemm(machine, 8, 16, 120)
    print(f"tiny GEMM on 512-bit vectors: C shape {c.shape}, "
          f"{machine.trace.stats.total_instrs} instructions, "
          f"avg VL {machine.trace.stats.average_vl():.1f} elements")


if __name__ == "__main__":
    main()
