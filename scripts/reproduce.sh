#!/usr/bin/env bash
# Full reproduction driver: tests, every paper artifact, benchmarks.
# Usage: scripts/reproduce.sh [output-dir]   (default: results/)
set -euo pipefail
cd "$(dirname "$0")/.."

# Run against the in-tree sources even when the package isn't installed.
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

STEP="startup"
trap 'echo "reproduce.sh: FAILED during step: $STEP (exit $?)" >&2' ERR

OUT="${1:-results}"
mkdir -p "$OUT"

STEP="1/4 test suite"
echo "== $STEP =="
python -m pytest tests/ | tee "$OUT/test_output.txt"

STEP="2/4 Paper II artifacts"
echo "== $STEP (tables + figures as text/CSV) =="
python -m repro.experiments.cli --out "$OUT" | tee "$OUT/paper2_artifacts.txt"

STEP="3/4 Paper I extensions, ablations, serving studies"
echo "== $STEP =="
python -m repro.experiments.cli \
  paper1-table2 paper1-table3 paper1-vl paper1-cache paper1-lanes \
  paper1-winograd paper1-winograd-a64fx paper1-archcompare \
  paper1-roofline paper1-speedups paper1-pareto \
  ablation-fft ablation-model ablation-contention \
  ablation-winograd-tiles ablation-fusion ablation-blocks \
  serving-latency serving-mixed profile-breakdown \
  extension-vit extension-depthwise extension-energy \
  extension-l1 extension-lmul extension-tile-tradeoff \
  selection-features layer-report verdict \
  --out "$OUT" | tee "$OUT/extensions.txt"

STEP="4/4 benchmarks"
echo "== $STEP =="
python -m pytest benchmarks/ --benchmark-only | tee "$OUT/bench_output.txt"

echo "All artifacts written to $OUT/"
