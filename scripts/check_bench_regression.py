#!/usr/bin/env python3
"""CI perf-regression gate over machine-normalized benchmark ratios.

The bench-smoke job runs the benchmark suites with ``BENCH_METRICS_PATH``
set, which makes them record same-machine speedup ratios (batched vs
per-op ISA simulation, batched vs sequential trace replay, warm vs cold
engine cache) via :mod:`benchmarks._metrics`.  This script compares those
measured ratios against the committed floor in
``benchmarks/baselines.json`` and exits non-zero when any metric regresses
by more than the tolerance (default 20%) — i.e. when a fast path got
meaningfully slower relative to its reference implementation.

Ratios are used instead of wall-clock times because both sides of each
ratio run on the same machine in the same process: machine speed cancels,
so one committed baseline works across laptops and CI runners.

Usage::

    python scripts/check_bench_regression.py METRICS.json [BASELINES.json]

``check()`` is importable so the test suite can verify the gate actually
fails on an injected slowdown (``tests/test_bench_regression_gate.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: A metric regresses when ``measured < baseline * (1 - TOLERANCE)``.
TOLERANCE = 0.20

#: Per-metric tolerance overrides, keyed ``_tolerances`` in the baseline
#: JSON.  Wall-clock ratios need the loose default to absorb runner noise;
#: pure model outputs (the schedule-search quality ratio) are bit-stable
#: and get a tight band so a real quality regression cannot hide inside
#: the noise allowance.

DEFAULT_BASELINES = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines.json"
)


def check(
    measured: dict[str, float],
    baselines: dict[str, float],
    tolerance: float = TOLERANCE,
    tolerances: dict[str, float] | None = None,
) -> list[str]:
    """Return one failure message per regressed or missing metric.

    Every baseline metric must be present in ``measured`` (a missing
    metric means the benchmark silently stopped recording it — that must
    fail loudly, not pass vacuously) and must reach at least
    ``baseline * (1 - tolerance)``.  ``tolerances`` overrides the
    tolerance per metric (the ``_tolerances`` block of the baseline
    JSON).  Extra measured metrics without a baseline are ignored: they
    are new metrics awaiting a committed floor.  Keys starting with
    ``_`` (e.g. ``_comment``) are not metrics.
    """
    failures: list[str] = []
    tolerances = tolerances or {}
    baselines = {
        k: v for k, v in baselines.items() if not k.startswith("_")
    }
    for name, floor in sorted(baselines.items()):
        if name not in measured:
            failures.append(
                f"{name}: baseline {floor:g} but no measured value "
                f"(benchmark no longer records this metric?)"
            )
            continue
        value = float(measured[name])
        tol = float(tolerances.get(name, tolerance))
        allowed = floor * (1.0 - tol)
        if value < allowed:
            failures.append(
                f"{name}: measured {value:.4f} < allowed {allowed:.4f} "
                f"(baseline {floor:g}, tolerance {tol:.1%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark speedup ratios regress >20% "
        "against benchmarks/baselines.json."
    )
    parser.add_argument("metrics", help="JSON file written by the benchmark "
                        "runs (BENCH_METRICS_PATH)")
    parser.add_argument(
        "baselines", nargs="?", default=str(DEFAULT_BASELINES),
        help="baseline JSON (default: benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE, metavar="FRAC",
        help=f"allowed fractional regression (default {TOLERANCE})",
    )
    args = parser.parse_args(argv)

    metrics_path = Path(args.metrics)
    if not metrics_path.exists():
        print(f"error: metrics file {metrics_path} does not exist — did the "
              f"benchmarks run with BENCH_METRICS_PATH set?", file=sys.stderr)
        return 2
    measured = json.loads(metrics_path.read_text())
    raw = json.loads(Path(args.baselines).read_text())
    tolerances = dict(raw.get("_tolerances", {}))
    baselines = {k: v for k, v in raw.items() if not k.startswith("_")}

    failures = check(
        measured, baselines, tolerance=args.tolerance, tolerances=tolerances
    )
    for name in sorted(baselines):
        status = "MISSING"
        if name in measured:
            status = f"{float(measured[name]):8.2f} (floor {baselines[name]:g})"
        print(f"  {name:<48} {status}")
    if failures:
        print(f"\nperf-regression gate FAILED ({len(failures)} metric(s)):",
              file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print(f"\nperf-regression gate passed "
          f"({len(baselines)} metric(s) within tolerance).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
